#include "xmap/target_spec.h"

#include <charconv>

#include "netbase/ipv4.h"

namespace xmap::scan {

std::optional<TargetSpec> TargetSpec::parse(std::string_view text,
                                            SuffixPolicy policy) {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;

  const std::string_view addr_text = text.substr(0, slash);
  std::optional<net::Ipv6Address> addr;
  int v4_shift = 0;
  if (addr_text.find(':') == std::string_view::npos) {
    // ZMap compatibility: a dotted-quad base ("192.168.0.0/20-25") scans
    // the IPv4 space through its IPv4-mapped embedding (::ffff:a.b.c.d),
    // with window positions shifted by the 96-bit mapping prefix. XMap "can
    // permute all the address space with any length and at any position,
    // such as ... 192.168.0.0/20-25" — this is that path.
    const auto v4 = net::Ipv4Address::parse(addr_text);
    if (!v4) return std::nullopt;
    addr = net::Ipv6Address::from_value(
        (net::Uint128{0xffff} << 32) | net::Uint128{v4->value()});
    v4_shift = 96;
  } else {
    addr = net::Ipv6Address::parse(addr_text);
  }
  if (!addr) return std::nullopt;

  std::string_view range = text.substr(slash + 1);
  int lo = 0, hi = 0;
  const std::size_t dash = range.find('-');
  auto parse_int = [](std::string_view s, int& out) {
    auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
    return ec == std::errc{} && ptr == s.data() + s.size();
  };
  if (dash == std::string_view::npos) {
    if (!parse_int(range, lo)) return std::nullopt;
    hi = lo;
  } else {
    if (!parse_int(range.substr(0, dash), lo)) return std::nullopt;
    if (!parse_int(range.substr(dash + 1), hi)) return std::nullopt;
  }
  lo += v4_shift;
  hi += v4_shift;
  if (lo < v4_shift || hi < lo || hi > 128) return std::nullopt;
  if (hi - lo >= 128) return std::nullopt;  // count would overflow
  return TargetSpec{net::Ipv6Prefix{*addr, lo}, lo, hi, policy};
}

net::Ipv6Address TargetSpec::nth_address(net::Uint128 i,
                                         std::uint64_t seed) const {
  const net::Ipv6Prefix prefix = nth_prefix(i);
  switch (policy_) {
    case SuffixPolicy::kZero:
      return prefix.address();
    case SuffixPolicy::kFixed:
      return prefix.address_with_suffix(fixed_suffix_);
    case SuffixPolicy::kRandom: {
      // Stateless: the suffix is a keyed hash of (seed, offset), so any
      // component of the pipeline can re-derive the probed address.
      const std::uint64_t h1 =
          net::hash_combine64(seed, i.lo() ^ 0x517cc1b727220a95ULL);
      const std::uint64_t h2 = net::hash_combine64(h1, i.hi());
      return prefix.address_with_suffix(net::Uint128{h2, h1});
    }
  }
  return prefix.address();
}

}  // namespace xmap::scan
