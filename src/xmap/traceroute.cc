#include "xmap/traceroute.h"

namespace xmap::scan {

pkt::Bytes TracerouteProbe::make_hop_probe(const net::Ipv6Address& src,
                                           const net::Ipv6Address& target,
                                           std::uint8_t hop_limit,
                                           std::uint64_t seed) const {
  // Payload: [originating hop limit][check byte], the Yarrp trick adapted
  // to ICMPv6 echo — both bytes come back inside the quoted packet.
  const std::uint8_t check = static_cast<std::uint8_t>(
      probe_tag16(target, seed, 6) ^ hop_limit);
  const std::uint8_t payload[2] = {hop_limit, check};
  return pkt::build_echo_request(src, target, hop_limit,
                                 probe_tag16(target, seed, 1),
                                 probe_tag16(target, seed, 2), payload);
}

std::optional<ProbeResponse> TracerouteProbe::classify(
    const pkt::Bytes& packet, const net::Ipv6Address& src,
    std::uint64_t seed) const {
  // Reuse the echo module's validation, then recover the originating hop
  // limit from the quoted payload.
  IcmpEchoProbe echo{64};
  auto base = echo.classify(packet, src, seed);
  if (!base) return std::nullopt;

  pkt::Ipv6View ip{packet};
  pkt::Icmpv6View icmp{ip.payload()};

  std::span<const std::uint8_t> probe_payload;
  if (icmp.type() == pkt::Icmpv6Type::kEchoReply) {
    probe_payload = icmp.echo_payload();
  } else {
    pkt::Ipv6View quoted{icmp.invoking_packet()};
    pkt::Icmpv6View quoted_icmp{quoted.payload()};
    if (!quoted_icmp.valid()) return std::nullopt;
    probe_payload = quoted_icmp.echo_payload();
  }
  if (probe_payload.size() < 2) return std::nullopt;
  const std::uint8_t sent_hl = probe_payload[0];
  const std::uint8_t check = static_cast<std::uint8_t>(
      probe_tag16(base->probe_dst, seed, 6) ^ sent_hl);
  if (probe_payload[1] != check) return std::nullopt;  // stale/forged

  base->hop_limit = sent_hl;  // reinterpreted: originating hop limit
  return base;
}

void TracerouteRunner::trace(const net::Ipv6Address& target) {
  targets_.push_back(target);
  for (int hl = 1; hl <= config_.max_hops; ++hl) {
    send(iface_, module_.make_hop_probe(config_.source, target,
                                        static_cast<std::uint8_t>(hl),
                                        config_.seed));
  }
}

void TracerouteRunner::receive(pkt::Bytes packet, int /*iface*/) {
  auto response = module_.classify(packet, config_.source, config_.seed);
  if (!response) return;
  TraceHop hop;
  hop.distance = response->hop_limit;
  hop.router = response->responder;
  hop.kind = response->kind;
  observed_[response->probe_dst].emplace(hop.distance, hop);
}

std::vector<TraceResult> TracerouteRunner::results() const {
  std::vector<TraceResult> out;
  for (const auto& target : targets_) {
    TraceResult result;
    result.target = target;
    auto it = observed_.find(target);
    if (it != observed_.end()) {
      for (const auto& [distance, hop] : it->second) {
        result.hops.push_back(hop);
        if (hop.kind == ResponseKind::kEchoReply ||
            hop.kind == ResponseKind::kDestUnreachable) {
          result.reached = true;
        }
      }
    }
    out.push_back(std::move(result));
  }
  return out;
}

}  // namespace xmap::scan
