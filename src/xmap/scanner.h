// The XMap scanner engine.
//
// Drives a probe module over one or more target specs: targets are drawn
// from the cyclic-group permutation (optionally sharded), filtered through
// the blocklist, paced by the configured probe rate, and sent through a
// PacketChannel. Responses are validated/classified by the probe module and
// streamed to the caller.
//
// The engine is transport-agnostic: `SimChannelScanner` below attaches it to
// the discrete-event simulator (the reproduction substrate); a raw-socket
// channel would drop in the same way on a real deployment.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/network.h"
#include "xmap/blocklist.h"
#include "xmap/cyclic_group.h"
#include "xmap/probe_module.h"
#include "xmap/stats.h"
#include "xmap/target_spec.h"

namespace xmap::scan {

struct ScanConfig {
  std::vector<TargetSpec> targets;
  net::Ipv6Address source;
  std::uint64_t seed = 1;
  double probes_per_sec = 25000;  // the paper's ~25 kpps good-citizen rate
  int shard = 0;
  int shards = 1;
  const Blocklist* blocklist = nullptr;  // optional, not owned
  std::uint64_t max_probes = 0;          // 0 = unlimited (testing aid)
  // Send each probe 1+retries times (XMap's --retries; copes with loss on
  // the path). Stateless validation makes duplicate responses harmless —
  // dedup happens in the ResultCollector.
  int retries = 0;
};

// A scanner attached to the simulated network as a node. start() schedules
// the paced send loop on the network's event loop; responses arriving on the
// node's interface are classified and handed to the callback.
class SimChannelScanner : public sim::Node {
 public:
  using ResponseCallback =
      std::function<void(const ProbeResponse&, sim::SimTime)>;

  SimChannelScanner(ScanConfig config, const ProbeModule& module)
      : config_(std::move(config)), module_(module) {}

  // The interface (from Network::connect / attach_vantage) to send on.
  void set_iface(int iface) { iface_ = iface; }
  void on_response(ResponseCallback cb) { callback_ = std::move(cb); }

  // Optional live-telemetry sink (not owned; may be shared by several
  // scanners running on different threads — counters are atomic). The
  // authoritative totals remain `stats()`.
  void set_progress(ScanProgress* progress) { progress_ = progress; }

  // Begins the scan at the current sim time. Call Network::run() after.
  void start();

  [[nodiscard]] bool sending_done() const { return sending_done_; }
  [[nodiscard]] const ScanStats& stats() const { return stats_; }

  void receive(const pkt::Bytes& packet, int iface) override;

 private:
  void send_tick();
  // Draws the next permitted target; false when all specs are exhausted.
  bool next_target(net::Ipv6Address& out);

  ScanConfig config_;
  const ProbeModule& module_;
  ResponseCallback callback_;
  int iface_ = 0;

  // Permutation state: one group+iterator per target spec, created lazily.
  struct SpecState {
    std::unique_ptr<CyclicGroup> group;
    std::unique_ptr<CyclicGroup::Iterator> iter;
  };
  std::vector<SpecState> spec_state_;
  std::size_t current_spec_ = 0;

  ScanStats stats_;
  ScanProgress* progress_ = nullptr;
  bool started_ = false;
  bool sending_done_ = false;
};

}  // namespace xmap::scan
