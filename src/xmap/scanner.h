// The XMap scanner engine.
//
// Drives a probe module over one or more target specs: targets are drawn
// from the cyclic-group permutation (optionally sharded), filtered through
// the blocklist, paced by the configured probe rate, and sent through a
// PacketChannel. Responses are validated/classified by the probe module and
// streamed to the caller.
//
// The engine is transport-agnostic: `SimChannelScanner` below attaches it to
// the discrete-event simulator (the reproduction substrate); a raw-socket
// channel would drop in the same way on a real deployment.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/config.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "sim/network.h"
#include "xmap/blocklist.h"
#include "xmap/cyclic_group.h"
#include "xmap/probe_module.h"
#include "xmap/stats.h"
#include "xmap/target_spec.h"

namespace xmap::scan {

struct ScanConfig {
  std::vector<TargetSpec> targets;
  net::Ipv6Address source;
  std::uint64_t seed = 1;
  double probes_per_sec = 25000;  // the paper's ~25 kpps good-citizen rate
  int shard = 0;
  int shards = 1;
  const Blocklist* blocklist = nullptr;  // optional, not owned
  std::uint64_t max_probes = 0;          // 0 = unlimited (testing aid)
  // Send each probe 1+retries times (XMap's --retries; copes with loss on
  // the path). Stateless validation makes duplicate responses harmless —
  // dedup happens in the ResultCollector. Every copy is charged against
  // the probes_per_sec budget and retransmits are spaced
  // `retry_spacing_ms` apart, so bursty loss shorter than the spacing
  // cannot eat all copies of a probe.
  int retries = 0;
  double retry_spacing_ms = 100.0;
  // ZMap's --cooldown-secs: how long after the last send the receive
  // window stays open. Replies arriving later are counted `late` and
  // dropped instead of validated.
  double cooldown_secs = 8.0;
  // Opt-in AIMD rate controller: when the validated-response rate
  // collapses (suspected ICMPv6 rate limiting or an outage), halve the
  // send rate; recover multiplicatively while the hit rate is healthy.
  // Send times become load-dependent, so this intentionally trades the
  // cross-thread-count byte-identical guarantee for resilience.
  bool adaptive_rate = false;
};

// A scanner attached to the simulated network as a node. start() schedules
// the paced send loop on the network's event loop; responses arriving on the
// node's interface are classified and handed to the callback.
class SimChannelScanner : public sim::Node {
 public:
  using ResponseCallback =
      std::function<void(const ProbeResponse&, sim::SimTime)>;

  SimChannelScanner(ScanConfig config, const ProbeModule& module)
      : config_(std::move(config)), module_(module) {}

  // The interface (from Network::connect / attach_vantage) to send on.
  void set_iface(int iface) { iface_ = iface; }
  void on_response(ResponseCallback cb) { callback_ = std::move(cb); }

  // Optional live-telemetry sink (not owned; may be shared by several
  // scanners running on different threads — counters are atomic). The
  // authoritative totals remain `stats()`.
  void set_progress(ScanProgress* progress) { progress_ = progress; }

  // Attaches observability sinks (all caller-owned, thread-confined with
  // the scanner; any pointer may be null). Metric cells are resolved here
  // once, so the per-probe cost is a null check plus an increment. Call
  // before start(). Scan-level trace events are stamped with the target's
  // deterministic packet-slot time, keeping the trace byte-identical
  // across thread counts (adaptive_rate waives that guarantee, as it
  // already does for send times).
  void set_obs(const obs::ObsConfig& config, obs::TraceBuffer* trace,
               obs::MetricsShard* metrics, obs::StageProfile* profile);

  // Begins the scan at the current sim time. Call Network::run() after.
  void start();

  [[nodiscard]] bool sending_done() const { return sending_done_; }
  [[nodiscard]] const ScanStats& stats() const { return stats_; }

  void receive(const pkt::Bytes& packet, int iface) override;

 private:
  // Draws the next permitted target and its global raw-cycle position;
  // false when all specs are exhausted.
  bool next_target(net::Ipv6Address& out, std::uint64_t& raw_slot);
  // Draws one fresh target and schedules all of its copies; re-arms itself.
  void schedule_fresh();
  void send_copy(const net::Ipv6Address& target, int copy);
  void maybe_finish_sending();
  void adapt_rate();
  [[nodiscard]] bool budget_exhausted() const {
    return config_.max_probes != 0 && stats_.sent >= config_.max_probes;
  }

  ScanConfig config_;
  const ProbeModule& module_;
  ResponseCallback callback_;
  int iface_ = 0;

  // Permutation state: one group+iterator per target spec. `raw_base` is
  // the spec's first global raw-cycle slot: the sum of (p-1) over all
  // earlier specs — identical for every shard of the same scan, which is
  // what makes slot-indexed send times thread-count invariant.
  struct SpecState {
    std::unique_ptr<CyclicGroup> group;
    std::unique_ptr<CyclicGroup::Iterator> iter;
    std::uint64_t raw_base = 0;
  };
  std::vector<SpecState> spec_state_;
  std::size_t current_spec_ = 0;

  // Pacing: one packet slot per gap at the configured rate; fresh probe at
  // raw slot q occupies packet slot q*(1+retries), retransmit copy c sits
  // at q*(1+retries) + c*(spacing_periods*(1+retries) + 1) — collision-free
  // (slot mod (1+retries) identifies the copy) so the aggregate rate never
  // exceeds probes_per_sec.
  sim::SimTime gap_ns_ = 0;
  int copies_ = 1;
  std::uint64_t spacing_periods_ = 1;

  // Adaptive-rate controller state (only touched when adaptive_rate).
  double current_pps_ = 0;
  double best_hit_rate_ = 0;
  std::uint64_t window_sent_ = 0;
  std::uint64_t window_validated_ = 0;
  sim::SimTime window_end_ = 0;
  sim::SimTime next_fresh_at_ = 0;

  // Duplicate detection: keyed hashes of every validated response.
  std::unordered_set<std::uint64_t> seen_responses_;

  // Observability (all optional; null = off, hooks cost one branch).
  obs::TraceBuffer* trace_ = nullptr;
  obs::StageProfile* profile_ = nullptr;
  obs::Histogram* rtt_hist_ = nullptr;
  struct MetricCells {
    std::uint64_t* targets_generated = nullptr;
    std::uint64_t* blocked = nullptr;
    std::uint64_t* sent = nullptr;
    std::uint64_t* retransmits = nullptr;
    std::uint64_t* received = nullptr;
    std::uint64_t* validated = nullptr;
    std::uint64_t* duplicates = nullptr;
    std::uint64_t* discarded = nullptr;
    std::uint64_t* corrupted = nullptr;
    std::uint64_t* late = nullptr;
    std::uint64_t* rate_adjustments = nullptr;
  } cells_;
  // First-copy send time per probed address, for the RTT histogram and
  // response_validated spans; populated only when either consumer is on.
  bool track_rtt_ = false;
  std::unordered_map<std::uint64_t, sim::SimTime> first_send_;

  std::uint64_t pending_sends_ = 0;  // copies scheduled but not yet fired
  sim::SimTime recv_deadline_ = ~sim::SimTime{0};

  ScanStats stats_;
  ScanProgress* progress_ = nullptr;
  bool started_ = false;
  bool fresh_done_ = false;
  bool sending_done_ = false;
};

}  // namespace xmap::scan
