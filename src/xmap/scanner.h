// The XMap scanner engine.
//
// Drives a probe module over one or more target specs: targets are drawn
// from the cyclic-group permutation (optionally sharded), filtered through
// the blocklist, paced by the configured probe rate, and sent through a
// PacketChannel. Responses are validated/classified by the probe module and
// streamed to the caller.
//
// The engine is transport-agnostic: `SimChannelScanner` below attaches it to
// the discrete-event simulator (the reproduction substrate); a raw-socket
// channel would drop in the same way on a real deployment.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netbase/flat_hash64.h"
#include "netbase/pool.h"
#include "obs/config.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "sim/network.h"
#include "xmap/blocklist.h"
#include "xmap/cyclic_group.h"
#include "xmap/probe_module.h"
#include "xmap/stats.h"
#include "xmap/target_spec.h"

namespace xmap::scan {

// Sentinel for "no budget cut": no raw-cycle slot is excluded.
inline constexpr std::uint64_t kNoBudgetCut = ~std::uint64_t{0};

struct ScanConfig {
  std::vector<TargetSpec> targets;
  net::Ipv6Address source;
  std::uint64_t seed = 1;
  double probes_per_sec = 25000;  // the paper's ~25 kpps good-citizen rate
  int shard = 0;
  int shards = 1;
  const Blocklist* blocklist = nullptr;  // optional, not owned
  // Global target budget: stop drawing after this many *permitted* targets
  // (each still sent 1+retries times). 0 = unlimited. Enforced as a cut at
  // a fixed permutation slot (see budget_cut_raw_slot), so a capped scan
  // is byte-identical at every --threads value.
  std::uint64_t max_probes = 0;
  // The slot-deterministic form of max_probes: fresh targets at global
  // raw-cycle slots >= this value are never drawn. kNoBudgetCut = no cut.
  // Left unset with max_probes != 0, start() computes it via
  // compute_budget_cut(); the parallel engine precomputes it once and
  // shares it across workers.
  std::uint64_t budget_cut_raw_slot = kNoBudgetCut;
  // Graceful shutdown: when non-null and non-zero (the signal number), the
  // scanner stops drawing fresh targets at the next opportunity, lets
  // in-flight copies fire, and reports interrupted(). Polled, never waited
  // on — safe to share with a signal handler.
  const std::atomic<int>* shutdown_flag = nullptr;
  // Deterministic interruption test hook: behave as if a shutdown signal
  // arrived when the next fresh target's raw slot would be >= this value.
  // kNoBudgetCut = off.
  std::uint64_t shutdown_at_raw_slot = kNoBudgetCut;
  // Resume: shard-local raw-cycle steps to fast-forward each target spec's
  // iterator by before the first draw (from a checkpoint cursor). Empty =
  // fresh scan.
  std::vector<std::uint64_t> resume_spec_steps;
  // Send each probe 1+retries times (XMap's --retries; copes with loss on
  // the path). Stateless validation makes duplicate responses harmless —
  // dedup happens in the ResultCollector. Every copy is charged against
  // the probes_per_sec budget and retransmits are spaced
  // `retry_spacing_ms` apart, so bursty loss shorter than the spacing
  // cannot eat all copies of a probe.
  int retries = 0;
  double retry_spacing_ms = 100.0;
  // ZMap's --cooldown-secs: how long after the last send the receive
  // window stays open. Replies arriving later are counted `late` and
  // dropped instead of validated.
  double cooldown_secs = 8.0;
  // Opt-in AIMD rate controller: when the validated-response rate
  // collapses (suspected ICMPv6 rate limiting or an outage), halve the
  // send rate; recover multiplicatively while the hit rate is healthy.
  // Send times become load-dependent, so this intentionally trades the
  // cross-thread-count byte-identical guarantee for resilience.
  bool adaptive_rate = false;
  // Escape hatch (and benchmark baseline): rebuild every probe from
  // scratch with make_probe() and draw fresh targets one at a time,
  // instead of the template-patching, block-batched hot path. Output is
  // byte-identical either way.
  bool legacy_hot_path = false;
};

// A worker's resumable permutation position. spec_steps[i] is the number
// of shard-local raw-cycle steps consumed from target spec i's iterator;
// frontier_slot is the global raw slot of the next target this worker
// would draw (every slot below it that belongs to this worker has been
// fully handled or is covered by the checkpoint's record set).
struct ScanCursor {
  std::vector<std::uint64_t> spec_steps;
  std::uint64_t frontier_slot = 0;
};

// Computes the slot-deterministic budget cut for `max_targets`: walks the
// (shard of shards) permutation in draw order counting blocklist-permitted
// targets and returns the global raw slot just after the max_targets-th
// one — the first excluded slot. Returns kNoBudgetCut when the permitted
// population is within budget. Thread subdivision of the same shard walks
// the same slots, so a cut computed here truncates identically at every
// --threads value.
[[nodiscard]] std::uint64_t compute_budget_cut(
    const std::vector<TargetSpec>& targets, std::uint64_t seed,
    const Blocklist* blocklist, std::uint64_t max_targets, int shard = 0,
    int shards = 1);

// A scanner attached to the simulated network as a node. start() schedules
// the paced send loop on the network's event loop; responses arriving on the
// node's interface are classified and handed to the callback.
class SimChannelScanner : public sim::Node {
 public:
  using ResponseCallback =
      std::function<void(const ProbeResponse&, sim::SimTime)>;
  // Slot-aware variant: the third argument is the global raw-cycle slot of
  // the probe the response answers (kNoBudgetCut when unknown — a response
  // to an address this scanner never drew). Checkpointing consumers need
  // the slot to filter records by probe provenance.
  using SlottedResponseCallback =
      std::function<void(const ProbeResponse&, sim::SimTime, std::uint64_t)>;
  // Invoked with a stable resume cursor every `checkpoint_interval`
  // targets (see set_checkpoint_hook).
  using CheckpointHook = std::function<void(const ScanCursor&)>;

  SimChannelScanner(ScanConfig config, const ProbeModule& module)
      : config_(std::move(config)), module_(module) {}

  // The interface (from Network::connect / attach_vantage) to send on.
  void set_iface(int iface) { iface_ = iface; }
  void on_response(ResponseCallback cb) {
    auto inner = std::move(cb);
    callback_ = [inner = std::move(inner)](const ProbeResponse& r,
                                           sim::SimTime when, std::uint64_t) {
      inner(r, when);
    };
  }
  void on_response_slotted(SlottedResponseCallback cb) {
    callback_ = std::move(cb);
    track_slots_ = true;
  }

  // Arms periodic checkpointing: every `every_targets` drawn targets the
  // hook receives stable_cursor(). Never invoked under adaptive_rate (no
  // analytic send schedule to derive a stable cursor from).
  void set_checkpoint_hook(std::uint64_t every_targets, CheckpointHook hook) {
    checkpoint_every_ = every_targets;
    checkpoint_hook_ = std::move(hook);
    // The hook's "every record below the cursor is in hand" claim
    // observes processing order, not just stamps: pin the network's bulk
    // trains to exact per-event interleaving.
    if (network() != nullptr && checkpoint_hook_ && checkpoint_every_ != 0) {
      network()->set_order_observed(true);
    }
  }

  // Optional live-telemetry sink (not owned; may be shared by several
  // scanners running on different threads — counters are atomic). The
  // authoritative totals remain `stats()`.
  void set_progress(ScanProgress* progress) { progress_ = progress; }

  // Attaches observability sinks (all caller-owned, thread-confined with
  // the scanner; any pointer may be null). Metric cells are resolved here
  // once, so the per-probe cost is a null check plus an increment. Call
  // before start(). Scan-level trace events are stamped with the target's
  // deterministic packet-slot time, keeping the trace byte-identical
  // across thread counts (adaptive_rate waives that guarantee, as it
  // already does for send times).
  void set_obs(const obs::ObsConfig& config, obs::TraceBuffer* trace,
               obs::MetricsShard* metrics, obs::StageProfile* profile);

  // Begins the scan at the current sim time. Call Network::run() after.
  void start();

  [[nodiscard]] bool sending_done() const { return sending_done_; }
  [[nodiscard]] const ScanStats& stats() const { return stats_; }
  // True when the scan stopped early because of a shutdown request (flag
  // or shutdown_at_raw_slot), after draining in-flight copies.
  [[nodiscard]] bool interrupted() const { return interrupted_; }

  // The exact current permutation position (meaningful once the scanner is
  // quiescent — after Network::run() returns — when every drawn target's
  // lifecycle has completed).
  [[nodiscard]] ScanCursor cursor() const;
  // A conservative mid-flight cursor: the largest frontier R such that
  // every fresh slot below R had its last retransmit copy sent at least a
  // response-horizon ago — records from probes below R are complete, and a
  // resume that re-scans from R regenerates everything above it. Only
  // meaningful without adaptive_rate.
  [[nodiscard]] ScanCursor stable_cursor() const;

  void receive(pkt::Bytes packet, int iface) override;

  // The scanner never generates load-dependent behavior on its own: send
  // times are analytic slot functions and response handling is stateless in
  // time, so it does not veto the network's bulk-delivery mode.
  [[nodiscard]] bool time_sensitive() const override { return false; }

 private:
  // Fresh targets drawn per schedule_fresh() dispatch on the deterministic
  // path. Send times are pure slot functions, so pulling permutation draws
  // in blocks changes only how often the generate stage runs — not one wire
  // byte. Budget/shutdown checks stay per-draw inside next_target().
  static constexpr std::uint64_t kFreshBatch = 256;

  // Draws the next permitted target and its global raw-cycle position;
  // false when all specs are exhausted, the budget cut is reached, or a
  // shutdown was requested (the un-drawn frontier stays intact for
  // cursor()).
  bool next_target(net::Ipv6Address& out, std::uint64_t& raw_slot);
  // Draws the next permitted (non-blocklisted) target, emitting the
  // generate/blocked bookkeeping; false when the scan is out of fresh
  // targets.
  bool draw_fresh(net::Ipv6Address& out, std::uint64_t& raw_slot);
  // Draws fresh targets and schedules all of their copies; re-arms itself.
  // The deterministic-pacing path pulls a block of kFreshBatch permutation
  // draws per invocation (send times are pure slot functions, so batching
  // is invisible on the wire); adaptive_rate draws one at a time.
  void schedule_fresh();
  void send_copy(const net::Ipv6Address& target, int copy);
  void maybe_finish_sending();
  // Bulk block path: one kEventScanBlock event walks a whole block's worth
  // of copy-`copy` sends starting at target index `idx`, stamping each send
  // with its analytic slot time via EventLoop::set_time. The run re-arms
  // itself (same event kind, updated index) when it crosses the loop's bulk
  // horizon.
  void run_block_copy(std::uint32_t bidx, std::uint32_t copy,
                      std::uint32_t idx);
  static void on_block_event(void* ctx, sim::SimTime when, std::uint64_t a,
                             std::uint64_t b);
  [[nodiscard]] sim::SimTime copy_time(std::uint64_t raw_slot,
                                       std::uint32_t copy) const {
    const std::uint64_t slot =
        raw_slot * static_cast<std::uint64_t>(copies_) +
        static_cast<std::uint64_t>(copy) *
            (spacing_periods_ * static_cast<std::uint64_t>(copies_) + 1);
    return static_cast<sim::SimTime>(slot) * gap_ns_;
  }
  void adapt_rate();
  [[nodiscard]] std::uint64_t frontier_slot() const;
  [[nodiscard]] ScanCursor cursor_at_slot(std::uint64_t slot) const;

  ScanConfig config_;
  const ProbeModule& module_;
  SlottedResponseCallback callback_;
  int iface_ = 0;

  // Cached probe frame, re-aimed per target by ProbeModule::patch_probe
  // (built in start() unless legacy_hot_path).
  ProbeTemplate template_;

  // Permutation state: one group+iterator per target spec. `raw_base` is
  // the spec's first global raw-cycle slot: the sum of (p-1) over all
  // earlier specs — identical for every shard of the same scan, which is
  // what makes slot-indexed send times thread-count invariant.
  struct SpecState {
    std::unique_ptr<CyclicGroup> group;
    std::unique_ptr<CyclicGroup::Iterator> iter;
    std::uint64_t raw_base = 0;
    std::uint64_t order = 0;  // p-1, the spec's raw-cycle length
  };
  std::vector<SpecState> spec_state_;
  std::size_t current_spec_ = 0;

  // Pacing: one packet slot per gap at the configured rate; fresh probe at
  // raw slot q occupies packet slot q*(1+retries), retransmit copy c sits
  // at q*(1+retries) + c*(spacing_periods*(1+retries) + 1) — collision-free
  // (slot mod (1+retries) identifies the copy) so the aggregate rate never
  // exceeds probes_per_sec.
  sim::SimTime gap_ns_ = 0;
  int copies_ = 1;
  std::uint64_t spacing_periods_ = 1;

  // Adaptive-rate controller state (only touched when adaptive_rate).
  double current_pps_ = 0;
  double best_hit_rate_ = 0;
  std::uint64_t window_sent_ = 0;
  std::uint64_t window_validated_ = 0;
  sim::SimTime window_end_ = 0;
  sim::SimTime next_fresh_at_ = 0;

  // Duplicate detection: keyed hashes of every validated response.
  // Open-addressed (like the maps below): these structures only insert and
  // look up on the packet hot path, so the flat table's contiguous probe
  // sequence replaces a node allocation and pointer chase per operation —
  // this is what keeps the metrics-on overhead under the bench's 2% bar.
  net::FlatSet64 seen_responses_;

  // Observability (all optional; null = off, hooks cost one branch).
  obs::TraceBuffer* trace_ = nullptr;
  obs::StageProfile* profile_ = nullptr;
  obs::Histogram* rtt_hist_ = nullptr;
  struct MetricCells {
    std::uint64_t* targets_generated = nullptr;
    std::uint64_t* blocked = nullptr;
    std::uint64_t* sent = nullptr;
    std::uint64_t* retransmits = nullptr;
    std::uint64_t* received = nullptr;
    std::uint64_t* validated = nullptr;
    std::uint64_t* duplicates = nullptr;
    std::uint64_t* discarded = nullptr;
    std::uint64_t* corrupted = nullptr;
    std::uint64_t* late = nullptr;
    std::uint64_t* rate_adjustments = nullptr;
  } cells_;
  // RTT measurement for the histogram and response_validated spans. Under
  // deterministic slot pacing the first-copy send time is a pure function
  // of the target's raw slot (raw_slot * copies * gap), so it is derived
  // from the slot_by_addr_ lookup the slotted callback already pays for —
  // no extra per-probe bookkeeping. Only adaptive_rate, where send times
  // are load-dependent, records them in first_send_.
  bool track_rtt_ = false;
  bool rtt_from_slots_ = false;
  net::FlatHash64<sim::SimTime> first_send_;

  std::uint64_t pending_sends_ = 0;  // copies scheduled but not yet fired
  sim::SimTime recv_deadline_ = ~sim::SimTime{0};

  // Block-batched sending (bulk mode). A SendBlock holds one
  // schedule_fresh() draw batch; each of its 1+retries copy sweeps is a
  // single typed event instead of count*copies closures. Blocks live in a
  // pool-backed slab recycled through a free list, so steady-state
  // scanning allocates nothing. Decided lazily on the first
  // schedule_fresh() (i.e. inside Network::run(), after all world setup):
  // requires deterministic pacing, the template hot path, no scan-level
  // tracing (trace insertion order would differ), and the network's bulk
  // mode. Exactly one scanner may be actively sending per event loop —
  // the block handler registration is latest-wins.
  struct SendBlock {
    net::Ipv6Address targets[kFreshBatch];
    std::uint64_t raw_slots[kFreshBatch];
    std::uint32_t count = 0;
    std::uint32_t live_copies = 0;
    bool rearm = false;  // copy-0 completion draws the next block
  };
  int use_blocks_ = -1;  // -1 undecided, else 0/1
  net::PoolVector<SendBlock> blocks_;
  net::PoolVector<std::uint32_t> block_free_;

  // Probe provenance for slotted callbacks: addr-key -> raw slot of the
  // drawn target (populated only when a slotted callback is installed).
  bool track_slots_ = false;
  net::FlatHash64<std::uint64_t> slot_by_addr_;

  // Periodic checkpointing.
  std::uint64_t checkpoint_every_ = 0;
  std::uint64_t targets_since_checkpoint_ = 0;
  CheckpointHook checkpoint_hook_;

  ScanStats stats_;
  ScanProgress* progress_ = nullptr;
  bool started_ = false;
  bool fresh_done_ = false;
  bool sending_done_ = false;
  bool interrupted_ = false;
};

}  // namespace xmap::scan
