#include "xmap/probe_module.h"

#include "netbase/random.h"

namespace xmap::scan {
namespace {

std::uint64_t addr_hash(const net::Ipv6Address& dst, std::uint64_t seed,
                        int salt) {
  const net::Uint128 v = dst.value();
  std::uint64_t h = net::hash_combine64(seed, v.hi());
  h = net::hash_combine64(h, v.lo());
  return net::hash_combine64(h, static_cast<std::uint64_t>(salt));
}

// Recovers the original probe header from an ICMPv6 error's quoted packet.
// Returns the quoted Ipv6View when present and structurally valid.
std::optional<pkt::Ipv6View> quoted_packet(const pkt::Icmpv6View& icmp) {
  if (!icmp.is_error()) return std::nullopt;
  auto quoted = icmp.invoking_packet();
  if (quoted.size() < pkt::kIpv6HeaderSize) return std::nullopt;
  pkt::Ipv6View view{quoted};
  if (view.version() != 6) return std::nullopt;
  return view;
}

}  // namespace

std::uint16_t probe_tag16(const net::Ipv6Address& dst, std::uint64_t seed,
                          int salt) {
  return static_cast<std::uint16_t>(addr_hash(dst, seed, salt));
}

std::uint32_t probe_tag32(const net::Ipv6Address& dst, std::uint64_t seed,
                          int salt) {
  return static_cast<std::uint32_t>(addr_hash(dst, seed, salt));
}

// ---------------------------------------------------------------------------
// IcmpEchoProbe
// ---------------------------------------------------------------------------

pkt::Bytes IcmpEchoProbe::make_probe(const net::Ipv6Address& src,
                                     const net::Ipv6Address& target,
                                     std::uint64_t seed) const {
  return pkt::build_echo_request(src, target, hop_limit_,
                                 probe_tag16(target, seed, 1),
                                 probe_tag16(target, seed, 2));
}

std::optional<ProbeResponse> IcmpEchoProbe::classify(
    const pkt::Bytes& packet, const net::Ipv6Address& src,
    std::uint64_t seed) const {
  pkt::Ipv6View ip{packet};
  if (!ip.valid() || ip.dst() != src ||
      ip.next_header() != pkt::kProtoIcmpv6) {
    return std::nullopt;
  }
  pkt::Icmpv6View icmp{ip.payload()};
  if (!icmp.valid() || !icmp.checksum_ok(ip.src(), ip.dst())) {
    return std::nullopt;
  }

  ProbeResponse out;
  out.responder = ip.src();
  out.hop_limit = ip.hop_limit();

  if (icmp.type() == pkt::Icmpv6Type::kEchoReply) {
    // Echo replies carry our ident/seq; dst of the probe == responder.
    if (icmp.ident() != probe_tag16(ip.src(), seed, 1) ||
        icmp.seq() != probe_tag16(ip.src(), seed, 2)) {
      return std::nullopt;
    }
    out.kind = ResponseKind::kEchoReply;
    out.probe_dst = ip.src();
    return out;
  }

  if (icmp.type() == pkt::Icmpv6Type::kDestUnreachable ||
      icmp.type() == pkt::Icmpv6Type::kTimeExceeded ||
      icmp.type() == pkt::Icmpv6Type::kPacketTooBig) {
    auto orig = quoted_packet(icmp);
    if (!orig) return std::nullopt;
    if (orig->src() != src || orig->next_header() != pkt::kProtoIcmpv6) {
      return std::nullopt;
    }
    pkt::Icmpv6View orig_icmp{orig->payload()};
    if (!orig_icmp.valid() ||
        orig_icmp.type() != pkt::Icmpv6Type::kEchoRequest) {
      return std::nullopt;
    }
    const net::Ipv6Address probed = orig->dst();
    if (orig_icmp.ident() != probe_tag16(probed, seed, 1) ||
        orig_icmp.seq() != probe_tag16(probed, seed, 2)) {
      return std::nullopt;  // spoofed or stale
    }
    out.kind = icmp.type() == pkt::Icmpv6Type::kTimeExceeded
                   ? ResponseKind::kTimeExceeded
                   : ResponseKind::kDestUnreachable;
    out.probe_dst = probed;
    out.icmp_code = icmp.code();
    return out;
  }

  return std::nullopt;
}

// ---------------------------------------------------------------------------
// TcpSynProbe
// ---------------------------------------------------------------------------

pkt::Bytes TcpSynProbe::make_probe(const net::Ipv6Address& src,
                                   const net::Ipv6Address& target,
                                   std::uint64_t seed) const {
  const std::uint16_t sport =
      static_cast<std::uint16_t>(0xc000 | (probe_tag16(target, seed, 3) & 0x3fff));
  return pkt::build_tcp(src, target, sport, port_,
                        probe_tag32(target, seed, 4), 0, pkt::kTcpSyn, 65535);
}

std::optional<ProbeResponse> TcpSynProbe::classify(
    const pkt::Bytes& packet, const net::Ipv6Address& src,
    std::uint64_t seed) const {
  pkt::Ipv6View ip{packet};
  if (!ip.valid() || ip.dst() != src) return std::nullopt;
  if (ip.next_header() != pkt::kProtoTcp) return std::nullopt;
  pkt::TcpView tcp{ip.payload()};
  if (!tcp.valid() || !tcp.checksum_ok(ip.src(), ip.dst())) {
    return std::nullopt;
  }
  const net::Ipv6Address responder = ip.src();
  if (tcp.src_port() != port_) return std::nullopt;
  const std::uint16_t expect_sport = static_cast<std::uint16_t>(
      0xc000 | (probe_tag16(responder, seed, 3) & 0x3fff));
  if (tcp.dst_port() != expect_sport) return std::nullopt;
  if (tcp.ack() != probe_tag32(responder, seed, 4) + 1) return std::nullopt;

  ProbeResponse out;
  out.responder = responder;
  out.probe_dst = responder;
  out.hop_limit = ip.hop_limit();
  if ((tcp.flags() & (pkt::kTcpSyn | pkt::kTcpAck)) ==
      (pkt::kTcpSyn | pkt::kTcpAck)) {
    out.kind = ResponseKind::kTcpSynAck;
  } else if (tcp.flags() & pkt::kTcpRst) {
    out.kind = ResponseKind::kTcpRst;
  } else {
    out.kind = ResponseKind::kOther;
  }
  return out;
}

// ---------------------------------------------------------------------------
// UdpProbe
// ---------------------------------------------------------------------------

pkt::Bytes UdpProbe::make_probe(const net::Ipv6Address& src,
                                const net::Ipv6Address& target,
                                std::uint64_t seed) const {
  const std::uint16_t sport =
      static_cast<std::uint16_t>(0xc000 | (probe_tag16(target, seed, 5) & 0x3fff));
  return pkt::build_udp(src, target, sport, port_, payload_);
}

std::optional<ProbeResponse> UdpProbe::classify(const pkt::Bytes& packet,
                                                const net::Ipv6Address& src,
                                                std::uint64_t seed) const {
  pkt::Ipv6View ip{packet};
  if (!ip.valid() || ip.dst() != src) return std::nullopt;

  if (ip.next_header() == pkt::kProtoUdp) {
    pkt::UdpView udp{ip.payload()};
    if (!udp.valid() || !udp.checksum_ok(ip.src(), ip.dst()) ||
        udp.src_port() != port_) {
      return std::nullopt;
    }
    const std::uint16_t expect_sport = static_cast<std::uint16_t>(
        0xc000 | (probe_tag16(ip.src(), seed, 5) & 0x3fff));
    if (udp.dst_port() != expect_sport) return std::nullopt;
    ProbeResponse out;
    out.kind = ResponseKind::kUdpData;
    out.responder = ip.src();
    out.probe_dst = ip.src();
    out.hop_limit = ip.hop_limit();
    return out;
  }

  if (ip.next_header() == pkt::kProtoIcmpv6) {
    pkt::Icmpv6View icmp{ip.payload()};
    if (!icmp.valid() || !icmp.checksum_ok(ip.src(), ip.dst())) {
      return std::nullopt;
    }
    auto orig = quoted_packet(icmp);
    if (!orig || orig->src() != src ||
        orig->next_header() != pkt::kProtoUdp) {
      return std::nullopt;
    }
    pkt::UdpView orig_udp{orig->payload()};
    if (!orig_udp.valid() || orig_udp.dst_port() != port_) return std::nullopt;
    const net::Ipv6Address probed = orig->dst();
    const std::uint16_t expect_sport = static_cast<std::uint16_t>(
        0xc000 | (probe_tag16(probed, seed, 5) & 0x3fff));
    if (orig_udp.src_port() != expect_sport) return std::nullopt;
    ProbeResponse out;
    out.kind = icmp.type() == pkt::Icmpv6Type::kTimeExceeded
                   ? ResponseKind::kTimeExceeded
                   : ResponseKind::kDestUnreachable;
    out.responder = ip.src();
    out.probe_dst = probed;
    out.icmp_code = icmp.code();
    out.hop_limit = ip.hop_limit();
    return out;
  }

  return std::nullopt;
}

}  // namespace xmap::scan
