#include "xmap/probe_module.h"

#include <algorithm>
#include <cassert>

#include "netbase/checksum.h"
#include "netbase/random.h"

namespace xmap::scan {
namespace {

// Salt-independent prefix of the tag hash. patch_probe derives several
// keyed fields per target and only the final salted mix differs between
// them, so the hot path computes this once and salts it per field.
std::uint64_t addr_hash_base(const net::Ipv6Address& dst,
                             std::uint64_t seed) {
  const net::Uint128 v = dst.value();
  return net::hash_combine64(net::hash_combine64(seed, v.hi()), v.lo());
}

std::uint64_t addr_hash(const net::Ipv6Address& dst, std::uint64_t seed,
                        int salt) {
  return net::hash_combine64(addr_hash_base(dst, seed),
                             static_cast<std::uint64_t>(salt));
}

// Recovers the original probe header from an ICMPv6 error's quoted packet.
// Returns the quoted Ipv6View when present and structurally valid.
std::optional<pkt::Ipv6View> quoted_packet(const pkt::Icmpv6View& icmp) {
  if (!icmp.is_error()) return std::nullopt;
  auto quoted = icmp.invoking_packet();
  if (quoted.size() < pkt::kIpv6HeaderSize) return std::nullopt;
  pkt::Ipv6View view{quoted};
  if (view.version() != 6) return std::nullopt;
  return view;
}

void write_be16(pkt::Bytes& f, std::size_t off, std::uint16_t v) {
  f[off] = static_cast<std::uint8_t>(v >> 8);
  f[off + 1] = static_cast<std::uint8_t>(v);
}

void write_be32(pkt::Bytes& f, std::size_t off, std::uint32_t v) {
  f[off] = static_cast<std::uint8_t>(v >> 24);
  f[off + 1] = static_cast<std::uint8_t>(v >> 16);
  f[off + 2] = static_cast<std::uint8_t>(v >> 8);
  f[off + 3] = static_cast<std::uint8_t>(v);
}

// Writes the target address into the frame's destination field (bytes
// 24..40) and returns the ones-complement sum of its eight words, ready to
// add onto the template's precomputed base accumulator.
std::uint32_t patch_dst(pkt::Bytes& f, const net::Ipv6Address& target) {
  const auto& nb = target.bytes();
  std::copy(nb.begin(), nb.end(), f.begin() + 24);
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i < nb.size(); i += 2) {  // eight wire words
    sum += static_cast<std::uint32_t>(nb[i]) << 8 | nb[i + 1];
  }
  return sum;
}

// The template's checksum base: zeroes the given frame ranges (the keyed
// fields plus the checksum field; the destination is already the all-zero
// placeholder) and returns the folded ones-complement sum of the remaining
// pseudo-header + L4 coverage. Once per scan, so a full walk is fine.
std::uint16_t l4_base_acc(
    pkt::Bytes& f,
    std::initializer_list<std::pair<std::size_t, std::size_t>> zeroed) {
  for (const auto& [off, len] : zeroed) {
    std::fill(f.begin() + static_cast<std::ptrdiff_t>(off),
              f.begin() + static_cast<std::ptrdiff_t>(off + len), 0);
  }
  pkt::Ipv6View ip{f};
  assert(ip.dst() == net::Ipv6Address{});  // template frame targets ::
  const auto l4 = std::span<const std::uint8_t>(f).subspan(
      pkt::kIpv6HeaderSize);
  std::uint32_t acc = net::checksum_accumulate(std::span{ip.src().bytes()});
  acc = net::checksum_accumulate(l4, acc);
  const auto len32 = static_cast<std::uint32_t>(l4.size());
  return static_cast<std::uint16_t>(net::checksum_fold(
      static_cast<std::uint32_t>(net::checksum_fold(acc)) + (len32 >> 16) +
      (len32 & 0xffff) + ip.next_header()));
}

}  // namespace

ProbeTemplate ProbeModule::make_template(const net::Ipv6Address& /*src*/,
                                         std::uint64_t /*seed*/) const {
  // Default: no cached frame; patch_probe's fallback rebuilds from scratch,
  // so modules that don't opt in stay correct (just not fast).
  return ProbeTemplate{};
}

void ProbeModule::patch_probe(ProbeTemplate& tmpl, const net::Ipv6Address& src,
                              const net::Ipv6Address& target,
                              std::uint64_t seed) const {
  tmpl.frame_ = make_probe(src, target, seed);
}

std::uint16_t probe_tag16(const net::Ipv6Address& dst, std::uint64_t seed,
                          int salt) {
  return static_cast<std::uint16_t>(addr_hash(dst, seed, salt));
}

std::uint32_t probe_tag32(const net::Ipv6Address& dst, std::uint64_t seed,
                          int salt) {
  return static_cast<std::uint32_t>(addr_hash(dst, seed, salt));
}

// ---------------------------------------------------------------------------
// IcmpEchoProbe
// ---------------------------------------------------------------------------

pkt::Bytes IcmpEchoProbe::make_probe(const net::Ipv6Address& src,
                                     const net::Ipv6Address& target,
                                     std::uint64_t seed) const {
  return pkt::build_echo_request(src, target, hop_limit_,
                                 probe_tag16(target, seed, 1),
                                 probe_tag16(target, seed, 2));
}

ProbeTemplate IcmpEchoProbe::make_template(const net::Ipv6Address& src,
                                           std::uint64_t seed) const {
  ProbeTemplate t;
  t.frame_ = make_probe(src, net::Ipv6Address{}, seed);
  // Mutable words: checksum (42), ident (44), seq (46).
  t.l4_acc_ = l4_base_acc(t.frame_, {{42, 6}});
  return t;
}

void IcmpEchoProbe::patch_probe(ProbeTemplate& tmpl,
                                const net::Ipv6Address& src,
                                const net::Ipv6Address& target,
                                std::uint64_t seed) const {
  if (!tmpl.valid()) tmpl = make_template(src, seed);
  pkt::Bytes& f = tmpl.frame_;
  const std::uint64_t base = addr_hash_base(target, seed);
  const auto ident =
      static_cast<std::uint16_t>(net::hash_combine64(base, 1));
  const auto seq = static_cast<std::uint16_t>(net::hash_combine64(base, 2));
  write_be16(f, 44, ident);
  write_be16(f, 46, seq);
  // Base (fixed words) + destination + keyed words; every term sits at an
  // even offset of the checksum coverage, so plain word adds are exact.
  const std::uint32_t acc = net::checksum_fold(patch_dst(f, target) +
                                               tmpl.l4_acc_) +
                            ident + seq;
  write_be16(f, 42, net::checksum_finish(acc));  // ICMPv6: no zero-mapping
}

std::optional<ProbeResponse> IcmpEchoProbe::classify(
    const pkt::Bytes& packet, const net::Ipv6Address& src,
    std::uint64_t seed) const {
  pkt::Ipv6View ip{packet};
  if (!ip.valid() || ip.dst() != src ||
      ip.next_header() != pkt::kProtoIcmpv6) {
    return std::nullopt;
  }
  pkt::Icmpv6View icmp{ip.payload()};
  if (!icmp.valid() || !icmp.checksum_ok(ip.src(), ip.dst())) {
    return std::nullopt;
  }

  ProbeResponse out;
  out.responder = ip.src();
  out.hop_limit = ip.hop_limit();

  if (icmp.type() == pkt::Icmpv6Type::kEchoReply) {
    // Echo replies carry our ident/seq; dst of the probe == responder.
    if (icmp.ident() != probe_tag16(ip.src(), seed, 1) ||
        icmp.seq() != probe_tag16(ip.src(), seed, 2)) {
      return std::nullopt;
    }
    out.kind = ResponseKind::kEchoReply;
    out.probe_dst = ip.src();
    return out;
  }

  if (icmp.type() == pkt::Icmpv6Type::kDestUnreachable ||
      icmp.type() == pkt::Icmpv6Type::kTimeExceeded ||
      icmp.type() == pkt::Icmpv6Type::kPacketTooBig) {
    auto orig = quoted_packet(icmp);
    if (!orig) return std::nullopt;
    if (orig->src() != src || orig->next_header() != pkt::kProtoIcmpv6) {
      return std::nullopt;
    }
    pkt::Icmpv6View orig_icmp{orig->payload()};
    if (!orig_icmp.valid() ||
        orig_icmp.type() != pkt::Icmpv6Type::kEchoRequest) {
      return std::nullopt;
    }
    const net::Ipv6Address probed = orig->dst();
    if (orig_icmp.ident() != probe_tag16(probed, seed, 1) ||
        orig_icmp.seq() != probe_tag16(probed, seed, 2)) {
      return std::nullopt;  // spoofed or stale
    }
    out.kind = icmp.type() == pkt::Icmpv6Type::kTimeExceeded
                   ? ResponseKind::kTimeExceeded
                   : ResponseKind::kDestUnreachable;
    out.probe_dst = probed;
    out.icmp_code = icmp.code();
    return out;
  }

  return std::nullopt;
}

// ---------------------------------------------------------------------------
// TcpSynProbe
// ---------------------------------------------------------------------------

pkt::Bytes TcpSynProbe::make_probe(const net::Ipv6Address& src,
                                   const net::Ipv6Address& target,
                                   std::uint64_t seed) const {
  const std::uint16_t sport =
      static_cast<std::uint16_t>(0xc000 | (probe_tag16(target, seed, 3) & 0x3fff));
  return pkt::build_tcp(src, target, sport, port_,
                        probe_tag32(target, seed, 4), 0, pkt::kTcpSyn, 65535);
}

ProbeTemplate TcpSynProbe::make_template(const net::Ipv6Address& src,
                                         std::uint64_t seed) const {
  ProbeTemplate t;
  t.frame_ = make_probe(src, net::Ipv6Address{}, seed);
  // Mutable words: source port (40), sequence (44..48), checksum (56).
  t.l4_acc_ = l4_base_acc(t.frame_, {{40, 2}, {44, 4}, {56, 2}});
  return t;
}

void TcpSynProbe::patch_probe(ProbeTemplate& tmpl,
                              const net::Ipv6Address& src,
                              const net::Ipv6Address& target,
                              std::uint64_t seed) const {
  if (!tmpl.valid()) tmpl = make_template(src, seed);
  pkt::Bytes& f = tmpl.frame_;
  const std::uint64_t base = addr_hash_base(target, seed);
  const auto sport = static_cast<std::uint16_t>(
      0xc000 | (net::hash_combine64(base, 3) & 0x3fff));
  const auto seq = static_cast<std::uint32_t>(net::hash_combine64(base, 4));
  write_be16(f, 40, sport);
  write_be32(f, 44, seq);
  const std::uint32_t acc = net::checksum_fold(patch_dst(f, target) +
                                               tmpl.l4_acc_) +
                            sport + (seq >> 16) + (seq & 0xffff);
  write_be16(f, 56, net::checksum_finish(acc));
}

std::optional<ProbeResponse> TcpSynProbe::classify(
    const pkt::Bytes& packet, const net::Ipv6Address& src,
    std::uint64_t seed) const {
  pkt::Ipv6View ip{packet};
  if (!ip.valid() || ip.dst() != src) return std::nullopt;
  if (ip.next_header() != pkt::kProtoTcp) return std::nullopt;
  pkt::TcpView tcp{ip.payload()};
  if (!tcp.valid() || !tcp.checksum_ok(ip.src(), ip.dst())) {
    return std::nullopt;
  }
  const net::Ipv6Address responder = ip.src();
  if (tcp.src_port() != port_) return std::nullopt;
  const std::uint16_t expect_sport = static_cast<std::uint16_t>(
      0xc000 | (probe_tag16(responder, seed, 3) & 0x3fff));
  if (tcp.dst_port() != expect_sport) return std::nullopt;
  if (tcp.ack() != probe_tag32(responder, seed, 4) + 1) return std::nullopt;

  ProbeResponse out;
  out.responder = responder;
  out.probe_dst = responder;
  out.hop_limit = ip.hop_limit();
  if ((tcp.flags() & (pkt::kTcpSyn | pkt::kTcpAck)) ==
      (pkt::kTcpSyn | pkt::kTcpAck)) {
    out.kind = ResponseKind::kTcpSynAck;
  } else if (tcp.flags() & pkt::kTcpRst) {
    out.kind = ResponseKind::kTcpRst;
  } else {
    out.kind = ResponseKind::kOther;
  }
  return out;
}

// ---------------------------------------------------------------------------
// UdpProbe
// ---------------------------------------------------------------------------

pkt::Bytes UdpProbe::make_probe(const net::Ipv6Address& src,
                                const net::Ipv6Address& target,
                                std::uint64_t seed) const {
  const std::uint16_t sport =
      static_cast<std::uint16_t>(0xc000 | (probe_tag16(target, seed, 5) & 0x3fff));
  return pkt::build_udp(src, target, sport, port_, payload_);
}

ProbeTemplate UdpProbe::make_template(const net::Ipv6Address& src,
                                      std::uint64_t seed) const {
  ProbeTemplate t;
  t.frame_ = make_probe(src, net::Ipv6Address{}, seed);
  // Mutable words: source port (40), checksum (46).
  t.l4_acc_ = l4_base_acc(t.frame_, {{40, 2}, {46, 2}});
  return t;
}

void UdpProbe::patch_probe(ProbeTemplate& tmpl, const net::Ipv6Address& src,
                           const net::Ipv6Address& target,
                           std::uint64_t seed) const {
  if (!tmpl.valid()) tmpl = make_template(src, seed);
  pkt::Bytes& f = tmpl.frame_;
  const std::uint16_t sport = static_cast<std::uint16_t>(
      0xc000 | (probe_tag16(target, seed, 5) & 0x3fff));
  write_be16(f, 40, sport);
  const std::uint32_t acc = net::checksum_fold(patch_dst(f, target) +
                                               tmpl.l4_acc_) +
                            sport;
  const std::uint16_t csum = net::checksum_finish(acc);
  // RFC 8200 §8.1: a computed zero is transmitted as all-ones.
  write_be16(f, 46, csum == 0 ? 0xffff : csum);
}

std::optional<ProbeResponse> UdpProbe::classify(const pkt::Bytes& packet,
                                                const net::Ipv6Address& src,
                                                std::uint64_t seed) const {
  pkt::Ipv6View ip{packet};
  if (!ip.valid() || ip.dst() != src) return std::nullopt;

  if (ip.next_header() == pkt::kProtoUdp) {
    pkt::UdpView udp{ip.payload()};
    if (!udp.valid() || !udp.checksum_ok(ip.src(), ip.dst()) ||
        udp.src_port() != port_) {
      return std::nullopt;
    }
    const std::uint16_t expect_sport = static_cast<std::uint16_t>(
        0xc000 | (probe_tag16(ip.src(), seed, 5) & 0x3fff));
    if (udp.dst_port() != expect_sport) return std::nullopt;
    ProbeResponse out;
    out.kind = ResponseKind::kUdpData;
    out.responder = ip.src();
    out.probe_dst = ip.src();
    out.hop_limit = ip.hop_limit();
    return out;
  }

  if (ip.next_header() == pkt::kProtoIcmpv6) {
    pkt::Icmpv6View icmp{ip.payload()};
    if (!icmp.valid() || !icmp.checksum_ok(ip.src(), ip.dst())) {
      return std::nullopt;
    }
    auto orig = quoted_packet(icmp);
    if (!orig || orig->src() != src ||
        orig->next_header() != pkt::kProtoUdp) {
      return std::nullopt;
    }
    pkt::UdpView orig_udp{orig->payload()};
    if (!orig_udp.valid() || orig_udp.dst_port() != port_) return std::nullopt;
    const net::Ipv6Address probed = orig->dst();
    const std::uint16_t expect_sport = static_cast<std::uint16_t>(
        0xc000 | (probe_tag16(probed, seed, 5) & 0x3fff));
    if (orig_udp.src_port() != expect_sport) return std::nullopt;
    ProbeResponse out;
    out.kind = icmp.type() == pkt::Icmpv6Type::kTimeExceeded
                   ? ResponseKind::kTimeExceeded
                   : ResponseKind::kDestUnreachable;
    out.responder = ip.src();
    out.probe_dst = probed;
    out.icmp_code = icmp.code();
    out.hop_limit = ip.hop_limit();
    return out;
  }

  return std::nullopt;
}

}  // namespace xmap::scan
