// Stateless traceroute probing (Yarrp-style), plus a path-walking helper.
//
// The paper positions periphery discovery against active topology probing
// (CAIDA Ark, RIPE Atlas, Yarrp6, Rye & Beverly's PAM'20 traceroute-based
// periphery discovery); this module implements that baseline so the
// comparison experiments can run. Like Yarrp, probing is stateless: the
// originating hop limit is stowed in bytes the probe controls (the echo
// payload), and recovered from the quoted packet inside the Time Exceeded
// response — no per-probe state, probes can be fired in any order.
#pragma once

#include <map>
#include <vector>

#include "sim/network.h"
#include "xmap/probe_module.h"

namespace xmap::scan {

// Probe module: ICMPv6 echo whose payload carries the originating hop
// limit. classify() reports, for Time Exceeded responses, which hop of the
// path answered.
class TracerouteProbe final : public ProbeModule {
 public:
  [[nodiscard]] std::string name() const override { return "traceroute6"; }

  // hop limit is passed per probe via make_hop_probe; make_probe uses 64.
  [[nodiscard]] pkt::Bytes make_probe(const net::Ipv6Address& src,
                                      const net::Ipv6Address& target,
                                      std::uint64_t seed) const override {
    return make_hop_probe(src, target, 64, seed);
  }

  [[nodiscard]] pkt::Bytes make_hop_probe(const net::Ipv6Address& src,
                                          const net::Ipv6Address& target,
                                          std::uint8_t hop_limit,
                                          std::uint64_t seed) const;

  // For Time Exceeded / Destination Unreachable / Echo Reply responses the
  // returned ProbeResponse carries the *originating* hop limit of the
  // matched probe in `hop_limit` (recovered from the quoted payload), so
  // the caller can place the responder at its path distance.
  [[nodiscard]] std::optional<ProbeResponse> classify(
      const pkt::Bytes& packet, const net::Ipv6Address& src,
      std::uint64_t seed) const override;
};

// One traced hop.
struct TraceHop {
  int distance = 0;  // originating hop limit
  net::Ipv6Address router;
  ResponseKind kind = ResponseKind::kOther;  // TE = mid-path, others = end
};

struct TraceResult {
  net::Ipv6Address target;
  std::vector<TraceHop> hops;  // ordered by distance
  bool reached = false;        // got an echo reply or unreachable from path end
};

// Orchestrates one traceroute over the simulated network: fires probes at
// hop limits 1..max_hops (statelessly, all at once) from a measurement
// node, then assembles the path. The node must already be attached.
class TracerouteRunner : public sim::Node {
 public:
  struct Config {
    net::Ipv6Address source;
    std::uint64_t seed = 1;
    int max_hops = 16;
  };

  explicit TracerouteRunner(Config config) : config_(std::move(config)) {}

  void set_iface(int iface) { iface_ = iface; }

  // Queues a target; run() the network afterwards, then collect results().
  void trace(const net::Ipv6Address& target);

  [[nodiscard]] std::vector<TraceResult> results() const;

  void receive(pkt::Bytes packet, int iface) override;

 private:
  Config config_;
  int iface_ = 0;
  TracerouteProbe module_;
  std::vector<net::Ipv6Address> targets_;
  // responses grouped by (target, distance)
  std::map<net::Ipv6Address, std::map<int, TraceHop>> observed_;
};

}  // namespace xmap::scan
