// §VII ablations — the paper's three mitigation proposals, swept over
// deployment fractions against the measurement pipeline:
//
//  1. Replace EUI-64 IIDs with opaque/temporary IIDs (RFC 7217/8064):
//     how fast does hardware vendor identification collapse?
//  2. Filter probe-elicited ICMPv6 on the periphery (revisiting RFC 4890):
//     how fast does discovery coverage collapse?
//  3. Install the RFC 7084 unreachable route for undelegated space:
//     how fast does the loop attack surface collapse?
#include "bench/common.h"
#include "topology/devices.h"

using namespace xmap;

namespace {

topo::BuiltInternet build(sim::Network& net, int window_bits,
                          std::vector<topo::IspSpec> specs) {
  topo::BuildConfig cfg;
  cfg.window_bits = window_bits;
  cfg.seed = bench::seed_from_env();
  return topo::build_internet(net, std::move(specs),
                              topo::paper::vendor_catalog(), cfg);
}

}  // namespace

int main() {
  const int window_bits = bench::window_bits_from_env(10);
  std::printf("\n=== Mitigation ablations (paper §VII) ===\n"
              "(window 2^%d slots/block)\n", window_bits);

  // ---- 1. EUI-64 deprecation ----------------------------------------------
  std::printf("\n[1] Temporary/opaque IIDs instead of EUI-64 "
              "(RFC 7217/8064):\n");
  ana::TextTable eui_table{{"EUI-64 retained", "last hops", "EUI-64 addrs",
                            "vendor-identified", "ID rate %"}};
  for (double retain : {1.0, 0.5, 0.25, 0.0}) {
    auto specs = topo::paper::isp_specs();
    for (auto& spec : specs) {
      const double moved = spec.iid_weights[0] * (1.0 - retain);
      spec.iid_weights[0] -= moved;
      spec.iid_weights[4] += moved;  // shifted to Randomized
    }
    sim::Network net{9090};
    auto internet = build(net, window_bits, std::move(specs));
    auto discovery = ana::run_discovery_scan(net, internet, {}, {});
    std::uint64_t eui = 0, identified = 0;
    for (const auto& hop : discovery.last_hops) {
      if (net::classify_iid(hop.address.iid()) == net::IidStyle::kEui64) ++eui;
      if (ana::vendor_from_address(hop.address, internet.oui)) ++identified;
    }
    eui_table.add_row({ana::fmt_pct(retain * 100, 0) + "%",
                       ana::fmt_count(discovery.last_hops.size()),
                       ana::fmt_count(eui), ana::fmt_count(identified),
                       ana::fmt_pct(ana::percent(identified,
                                                 discovery.last_hops.size()))});
  }
  eui_table.print();
  std::printf("Discovery itself is untouched (the unreachable comes back "
              "regardless of IID style); only attribution degrades — the "
              "paper's point that EUI-64 leaks device identity.\n");

  // ---- 2. Periphery ICMP filtering ----------------------------------------
  std::printf("\n[2] Filtering probe-elicited ICMPv6 on the periphery:\n");
  ana::TextTable filter_table{{"Devices filtering", "last hops",
                               "coverage of ground truth %"}};
  for (double filtered : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    sim::Network net{9191};
    auto internet = build(net, window_bits, topo::paper::isp_specs());
    // Apply the mitigation to a deterministic fraction of devices.
    net::Rng rng{7};
    std::size_t total_devices = 0;
    for (auto& isp : internet.isps) {
      for (auto& dev : isp.devices) {
        ++total_devices;
        if (!rng.bernoulli(filtered)) continue;
        auto* node = net.node(dev.node);
        if (auto* cpe = dynamic_cast<topo::CpeRouter*>(node)) {
          cpe->set_icmp_filtered(true);
        } else if (auto* ue = dynamic_cast<topo::UeDevice*>(node)) {
          ue->set_icmp_filtered(true);
        }
      }
    }
    auto discovery = ana::run_discovery_scan(net, internet, {}, {});
    // Coverage: discovered addresses that are real devices.
    std::unordered_set<net::Ipv6Address> truth;
    for (const auto& isp : internet.isps) {
      for (const auto& dev : isp.devices) truth.insert(dev.address);
    }
    std::uint64_t covered = 0;
    for (const auto& hop : discovery.last_hops) {
      covered += truth.count(hop.address);
    }
    filter_table.add_row({ana::fmt_pct(filtered * 100, 0) + "%",
                          ana::fmt_count(discovery.last_hops.size()),
                          ana::fmt_pct(ana::percent(covered, total_devices))});
  }
  filter_table.print();
  std::printf("Coverage falls linearly with filtering deployment — the "
              "paper's call to revisit RFC 4890's \"no need to filter "
              "ping\" guidance.\n");

  // ---- 3. RFC 7084 unreachable-route deployment ----------------------------
  std::printf("\n[3] RFC 7084 unreachable routes for undelegated space:\n");
  ana::TextTable patch_table{{"Devices patched", "confirmed loop devices",
                              "residual vs unpatched %"}};
  std::uint64_t baseline = 0;
  for (double patched : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    sim::Network net{9292};
    auto internet = build(net, window_bits, topo::paper::isp_specs());
    net::Rng rng{11};
    for (auto& isp : internet.isps) {
      for (auto& dev : isp.devices) {
        if (!dev.loop_wan && !dev.loop_lan) continue;
        if (!rng.bernoulli(patched)) continue;
        if (auto* cpe =
                dynamic_cast<topo::CpeRouter*>(net.node(dev.node))) {
          cpe->install_unreachable_routes();
        }
      }
    }
    auto loops = ana::run_loop_scan(net, internet, {}, {});
    std::uint64_t devices = 0;
    for (const auto& loop : loops.confirmed) {
      bool infrastructure = false;
      for (const auto& isp : internet.isps) {
        infrastructure =
            infrastructure || loop.address == isp.router->address();
      }
      if (!infrastructure) ++devices;
    }
    if (patched == 0.0) baseline = devices;
    patch_table.add_row(
        {ana::fmt_pct(patched * 100, 0) + "%", ana::fmt_count(devices),
         baseline == 0 ? "-" : ana::fmt_pct(ana::percent(devices, baseline))});
  }
  patch_table.print();
  std::printf("Full deployment kills the attack surface; partial deployment "
              "leaves a proportional residue — every unpatched CPE remains "
              "an independent >200x amplifier.\n");
  return 0;
}
