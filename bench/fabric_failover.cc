// Fabric fail-over cost: wall-clock of a distributed scan with no failures
// versus the same scan with one node killed mid-shard (connection-drop
// detection) — the delta is what a migration costs end to end: death
// detection, re-lease, cursor fast-forward, and the re-scan of the tail of
// the dead shard. Also reports the recovery ratio (failover wall / clean
// wall; 1.0 = free) and the fraction of slots saved by resuming from the
// streamed checkpoint instead of rescanning the whole shard.
//
// The merged outputs are asserted byte-identical before anything is
// reported — a fast failover that corrupts the merge is not a result.
//
// XMAP_WINDOW_BITS overrides the world size; XMAP_REPS the repetitions
// (median reported, default 3). Emits BENCH_fabric_failover.json for
// tools/check_bench_regression.py.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "fabric/coordinator.h"
#include "topology/paper_profiles.h"

namespace {

using namespace xmap;

fabric::FabricConfig make_config(int window_bits) {
  static const scan::IcmpEchoProbe module{64};
  fabric::FabricConfig cfg;
  cfg.world_specs = topo::paper::isp_specs();
  cfg.vendors = topo::paper::vendor_catalog();
  cfg.build.window_bits = window_bits;
  cfg.build.seed = 42;
  cfg.module = &module;
  cfg.scan.source = *net::Ipv6Address::parse("2001:500::1");
  cfg.scan.seed = 7;
  // Sim-paced slowly enough that probe lifecycles complete mid-scan and
  // checkpoints carry a nonzero stable cursor — the failover then
  // exercises the fast-forward resume, not a full shard rescan. Sim time
  // costs no wall clock; the event count is what's measured.
  cfg.scan.probes_per_sec = 1000;
  cfg.nodes = 4;
  cfg.shards = 8;
  cfg.checkpoint_interval_targets = 64;
  return cfg;
}

std::string fingerprint(const fabric::FabricResult& result) {
  std::ostringstream out;
  for (const auto& rec : result.records) {
    out << rec.when << '|' << rec.response.responder.to_string() << '|'
        << rec.response.probe_dst.to_string() << '|' << rec.shard << '|'
        << rec.raw_slot << '\n';
  }
  return out.str();
}

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

}  // namespace

int main() {
  int window_bits = 8;
  if (const char* env = std::getenv("XMAP_WINDOW_BITS")) {
    window_bits = std::atoi(env);
  }
  int reps = 3;
  if (const char* env = std::getenv("XMAP_REPS")) reps = std::atoi(env);

  std::vector<double> clean_wall, failover_wall;
  std::uint64_t resumed_slots = 0, kill_slot = 3000;
  std::string clean_print, failover_print;
  for (int rep = 0; rep < reps; ++rep) {
    auto clean = fabric::run_fabric_scan(make_config(window_bits));
    if (!clean.ok || clean.failed) {
      std::fprintf(stderr, "clean run failed: %s\n", clean.error.c_str());
      return 1;
    }
    clean_wall.push_back(clean.wall_seconds);
    clean_print = fingerprint(clean);

    auto cfg = make_config(window_bits);
    cfg.fabric_faults.kills.push_back(
        sim::FabricFaultPlan::Kill{1, kill_slot, /*close_transport=*/true});
    auto failed_over = fabric::run_fabric_scan(cfg);
    if (!failed_over.ok || failed_over.failed) {
      std::fprintf(stderr, "failover run failed: %s\n",
                   failed_over.error.c_str());
      return 1;
    }
    failover_wall.push_back(failed_over.wall_seconds);
    failover_print = fingerprint(failed_over);
    resumed_slots = failed_over.resumed_slots;

    if (clean_print != failover_print) {
      std::fprintf(stderr,
                   "BYTE-IDENTITY VIOLATION: failover merge differs from "
                   "the clean merge (rep %d)\n", rep);
      return 1;
    }
  }

  const double clean_s = median(clean_wall);
  const double failover_s = median(failover_wall);
  const double ratio = failover_s / clean_s;

  std::printf("fabric fail-over (window_bits %d, 4 nodes, 8 shards, "
              "kill node 1 at slot %llu)\n", window_bits,
              static_cast<unsigned long long>(kill_slot));
  std::printf("  %-28s %8.3f s\n", "clean wall (median)", clean_s);
  std::printf("  %-28s %8.3f s\n", "kill+migrate wall (median)", failover_s);
  std::printf("  %-28s %8.2fx\n", "recovery ratio", ratio);
  std::printf("  %-28s %8llu\n", "slots resumed from checkpoint",
              static_cast<unsigned long long>(resumed_slots));
  std::printf("  byte-identity: OK (%d reps)\n", reps);

  bench::BenchJson json("fabric_failover");
  json.add("clean_wall_seconds", clean_s, "s", /*higher_is_better=*/false);
  json.add("failover_wall_seconds", failover_s, "s",
           /*higher_is_better=*/false);
  json.add("recovery_ratio", ratio, "x", /*higher_is_better=*/false);
  json.write();
  return 0;
}
