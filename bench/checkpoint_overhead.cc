// Checkpoint overhead: wall-clock of the parallel engine with mid-flight
// checkpointing off versus on at several intervals, plus the cost of one
// full state serialization (what a SIGTERM pays before exiting). The
// interesting number is the delta column: publishing a stable cursor is one
// mutex-guarded copy per interval per worker, and the collector assembles a
// snapshot only when every worker has published, so the steady-state cost
// should be noise until the interval gets small enough that serialization
// dominates.
//
// XMAP_SEED overrides the world seed; XMAP_REPS the repetitions (median
// reported, default 5).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "engine/executor.h"
#include "recover/state.h"
#include "topology/paper_profiles.h"

namespace {

using namespace xmap;

struct Outcome {
  double wall_seconds = 0;
  int snapshots = 0;
  std::size_t state_bytes = 0;  // serialized size of the last snapshot
  std::uint64_t sent = 0;
};

Outcome run_once(std::uint64_t interval, int window_bits,
                 std::uint64_t seed) {
  static const scan::IcmpEchoProbe module{64};
  engine::EngineConfig cfg;
  cfg.world_specs = topo::paper::isp_specs();
  cfg.vendors = topo::paper::vendor_catalog();
  cfg.build.window_bits = window_bits;
  cfg.build.seed = seed;
  cfg.module = &module;
  cfg.scan.source = *net::Ipv6Address::parse("2001:500::1");
  cfg.scan.seed = seed ^ 0x5eed;
  cfg.scan.probes_per_sec = 1e9;  // unthrottled: measure engine cost
  cfg.threads = 4;

  Outcome out;
  if (interval != 0) {
    cfg.checkpoint_interval_targets = interval;
    // The sink serializes like the CLI does (fingerprint stamping is
    // negligible next to the record section) but writes nowhere — this
    // measures checkpointing, not the disk.
    cfg.checkpoint_sink = [&out](recover::CheckpointState& state) {
      out.state_bytes = recover::serialize_checkpoint(state).size();
      ++out.snapshots;
    };
  }
  auto result = engine::run_parallel_scan(cfg);
  if (!result.ok) {
    std::fprintf(stderr, "engine error: %s\n", result.error.c_str());
    std::exit(1);
  }
  out.wall_seconds = result.wall_seconds;
  out.sent = result.stats.sent;
  return out;
}

Outcome run_median(std::uint64_t interval, int window_bits,
                   std::uint64_t seed, int reps) {
  std::vector<Outcome> runs;
  runs.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    runs.push_back(run_once(interval, window_bits, seed));
  }
  std::sort(runs.begin(), runs.end(), [](const Outcome& a, const Outcome& b) {
    return a.wall_seconds < b.wall_seconds;
  });
  return runs[runs.size() / 2];
}

}  // namespace

int main() {
  const char* seed_env = std::getenv("XMAP_SEED");
  const std::uint64_t seed =
      seed_env != nullptr ? static_cast<std::uint64_t>(std::atoll(seed_env))
                          : 2020;
  const char* reps_env = std::getenv("XMAP_REPS");
  const int reps = reps_env != nullptr ? std::max(1, std::atoi(reps_env)) : 5;
  constexpr int kWindowBits = 10;

  const std::uint64_t intervals[] = {0, 50000, 10000, 2000, 500};

  std::printf(
      "checkpoint overhead (paper world, 4 workers, median of %d)\n", reps);
  std::printf("hardware threads: %u, window_bits: %d\n",
              std::thread::hardware_concurrency(), kWindowBits);
  std::printf("%-22s %10s %10s %10s %12s\n", "interval (targets)", "wall_s",
              "overhead", "snapshots", "state_bytes");

  double baseline = 0;
  for (const std::uint64_t interval : intervals) {
    const Outcome o = run_median(interval, kWindowBits, seed, reps);
    if (baseline == 0) baseline = o.wall_seconds;
    const double overhead =
        baseline > 0 ? 100.0 * (o.wall_seconds / baseline - 1.0) : 0.0;
    char label[32];
    if (interval == 0) {
      std::snprintf(label, sizeof label, "off");
    } else {
      std::snprintf(label, sizeof label, "%llu",
                    static_cast<unsigned long long>(interval));
    }
    std::printf("%-22s %10.3f %+9.1f%% %10d %12zu\n", label, o.wall_seconds,
                overhead, o.snapshots, o.state_bytes);
  }
  return 0;
}
