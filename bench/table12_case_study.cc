// Table XII — Routing-loop router testing results: the 95-router + 4
// open-source-OS case study, with loop behaviour per prefix class and the
// RFC 7084 mitigation re-test.
#include "analysis/report.h"
#include "loopattack/attack_lab.h"

int main() {
  using namespace xmap;
  std::printf("\n=== Table XII ===\n"
              "Routing loop router testing results (case study, hop limit "
              "255 crafted packets)\n\n");

  const auto& models = atk::case_study_models();

  // Print the paper's explicitly-listed configurations in full.
  ana::TextTable table{{"Brand", "Model/Firmware", "WAN loop", "LAN loop",
                        "WAN fwd pkts", "LAN fwd pkts", "Patched OK"}};
  int printed = 0;
  int vulnerable = 0, capped = 0, fixed = 0;
  ana::Counter per_brand;
  for (const auto& model : models) {
    const auto row = atk::test_router_model(model);
    if (row.wan_loop_observed || row.lan_loop_observed) ++vulnerable;
    if (model.loop_cap >= 0) ++capped;
    if (row.fixed_after_patch) ++fixed;
    per_brand.add(model.brand);
    if (printed < 9) {  // the table's explicit rows
      table.add_row({model.brand, model.model,
                     row.wan_loop_observed ? "yes" : "no",
                     row.lan_loop_observed ? "yes" : "no",
                     ana::fmt_count(row.wan_link_packets),
                     ana::fmt_count(row.lan_link_packets),
                     row.fixed_after_patch ? "yes" : "NO"});
      ++printed;
    }
  }
  table.print();

  std::printf("\nFleet summary (%zu routers/OSes):\n", models.size());
  for (const auto& [brand, count] : per_brand.top(per_brand.distinct())) {
    std::printf("  %s (%llu)", brand.c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("\n\n");
  std::printf("Vulnerable to the loop: %d/%zu (paper: all 99).\n", vulnerable,
              models.size());
  std::printf("Loop-capped firmware (forwards >10 but far fewer than "
              "(255-n)/2): %d (paper: Xiaomi, Gargoyle, librecmc, OpenWrt).\n",
              capped);
  std::printf("Fixed by the RFC 7084 unreachable-route mitigation: %d/%zu.\n",
              fixed, models.size());
  return (vulnerable == static_cast<int>(models.size()) &&
          fixed == static_cast<int>(models.size()))
             ? 0
             : 1;
}
