// Hot-path batching sweep: the pre-PR probe path (full per-target packet
// build into a heap-allocated buffer, full RFC 1071 checksum — the build
// algorithm is preserved behind ScanConfig::legacy_hot_path, and the
// pre-pool heap allocation behind BytePool::HeapFallbackScope) against the
// template path (cached frame, destination/keyed-field patch, incremental
// checksum, pool buffers), per probe module.
//
// Two measurements:
//  1. Generation throughput on the standard 2^20-target draw from the
//     paper's 2400::/8-40 space — permutation, address synthesis and probe
//     construction, single thread. This isolates the per-probe cost the
//     tentpole attacks and must show >= 2x (enforced; CI runs this).
//  2. End-to-end simulated scan (classic single-thread scanner on the
//     paper world) with legacy_hot_path on vs. off — informational, since
//     hop simulation dominates there, and doubles as a byte-identity check:
//     both paths must discover identical responder sets.
//
// Emits BENCH_hotpath_batching.json for tools/check_bench_regression.py.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "bench/common.h"
#include "netbase/pool.h"
#include "sim/event_loop.h"
#include "topology/builder.h"
#include "xmap/cyclic_group.h"
#include "xmap/results.h"
#include "xmap/scanner.h"
#include "xmap/target_spec.h"

namespace {

using namespace xmap;
using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kTargets = std::uint64_t{1} << 20;

struct GenResult {
  double legacy_pps = 0;
  double patched_pps = 0;
};

// Single-thread probe-construction throughput over 2^20 permuted targets:
// legacy = make_probe per target, patched = patch_probe on the template.
// The target list is drawn once, outside the timed region — the permutation
// walk costs the same on both paths and would otherwise dilute the ratio
// this sweep exists to measure.
GenResult generation_sweep(const scan::ProbeModule& module,
                           const std::vector<net::Ipv6Address>& targets) {
  const auto src = *net::Ipv6Address::parse("2001:500::1");

  auto run = [&](bool legacy) {
    // The legacy leg also restores the pre-pool allocator: before this
    // optimisation every make_probe drew its frame from the global heap.
    std::optional<net::BytePool::HeapFallbackScope> heap;
    if (legacy) heap.emplace();
    scan::ProbeTemplate tmpl;
    if (!legacy) tmpl = module.make_template(src, 7);
    std::uint64_t sink = 0;
    const auto t0 = Clock::now();
    for (const auto& target : targets) {
      if (legacy) {
        sink += module.make_probe(src, target, 7).size();
      } else {
        module.patch_probe(tmpl, src, target, 7);
        sink += tmpl.frame().size();
      }
    }
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (sink == 0) std::abort();  // keep the loop observable
    return static_cast<double>(targets.size()) / secs;
  };

  // Warm-up pass each, then interleave timed reps (best-of) so frequency
  // drift and scheduler noise hit both paths alike.
  GenResult best;
  (void)run(/*legacy=*/true);
  (void)run(/*legacy=*/false);
  for (int rep = 0; rep < 5; ++rep) {
    best.legacy_pps = std::max(best.legacy_pps, run(/*legacy=*/true));
    best.patched_pps = std::max(best.patched_pps, run(/*legacy=*/false));
  }
  return best;
}

// The standard 2^20-target draw: the scanner's own permutation order over
// the paper's 2400::/8-40 space.
std::vector<net::Ipv6Address> draw_targets() {
  const auto spec = *scan::TargetSpec::parse("2400::/8-40");
  scan::CyclicGroup group{spec.count(), 42};
  std::vector<net::Ipv6Address> targets;
  targets.reserve(kTargets);
  auto it = group.iterate();
  while (targets.size() < kTargets) {
    auto v = it.next();
    if (!v) {
      it = group.iterate();
      continue;
    }
    targets.push_back(spec.nth_address(*v, 7));
  }
  return targets;
}

struct SimResult {
  double wall_seconds = 0;
  std::uint64_t sent = 0;
  std::size_t unique = 0;
  std::uint64_t events = 0;
};

// End-to-end classic scanner on the paper world (window from env, default
// 2^10 per ISP) with the hot path selected by `legacy`. A scan consumes
// its permutation, so each rep builds a fresh world; the timer covers only
// the run — Network::prepare() hoists route-index compilation and the
// first rep warms the allocator pools, the same steady-state protocol as
// generation_sweep's best-of reps.
SimResult sim_scan(bool legacy, int window_bits, int reps) {
  static const scan::IcmpEchoProbe module{64};
  SimResult best;
  for (int rep = 0; rep < reps; ++rep) {
    bench::World world{topo::paper::isp_specs(), window_bits,
                       bench::seed_from_env()};
    scan::ScanConfig cfg;
    for (const auto& isp : world.internet.isps) {
      cfg.targets.push_back(
          scan::TargetSpec{isp.scan_base, isp.window_lo, isp.window_hi});
    }
    cfg.source = *net::Ipv6Address::parse("2001:500::1");
    cfg.seed = 7;
    cfg.probes_per_sec = 1e9;  // unthrottled: measure engine cost
    cfg.legacy_hot_path = legacy;
    auto* scanner = world.net.make_node<scan::SimChannelScanner>(cfg, module);
    const int iface = topo::attach_vantage(
        world.net, world.internet, scanner, *net::Ipv6Prefix::parse(
                                                "2001:500::/48"));
    scanner->set_iface(iface);
    scan::ResultCollector collector;
    scanner->on_response([&collector](const scan::ProbeResponse& r,
                                      sim::SimTime) { collector.add(r); });
    scanner->start();
    world.net.prepare();
    const auto t0 = Clock::now();
    world.net.run();
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    const SimResult r{secs, scanner->stats().sent,
                      collector.unique_responders(),
                      world.net.loop().events_processed()};
    if (best.wall_seconds == 0 || r.wall_seconds < best.wall_seconds) {
      best = r;
    } else {
      // Results must be identical across reps (same seed, same world);
      // only the wall clock may move.
      if (r.sent != best.sent || r.unique != best.unique) std::abort();
    }
  }
  return best;
}

// Schedule+pop round-trip cost of the timing wheel: typed POD events
// spread over the near-future slots the scan path actually uses, drained
// through the normal dispatch loop. Median-free best-of to shed scheduler
// noise.
double event_schedule_pop_ns() {
  struct Ctx {
    std::uint64_t sink = 0;
    static void handle(void* c, sim::SimTime, std::uint64_t a,
                       std::uint64_t) {
      static_cast<Ctx*>(c)->sink += a;
    }
  };
  constexpr int kBatch = 4096;
  constexpr int kRounds = 256;
  double best = 1e18;
  for (int rep = 0; rep < 5; ++rep) {
    sim::EventLoop loop;
    Ctx ctx;
    loop.register_handler(sim::kEventDeliver, &ctx, &Ctx::handle);
    const auto t0 = Clock::now();
    for (int round = 0; round < kRounds; ++round) {
      const sim::SimTime base = loop.now();
      for (int i = 0; i < kBatch; ++i) {
        // Mixed offsets: same-slot ties, nearby slots, and a sprinkle of
        // far-future events exercising the overflow heap.
        const sim::SimTime off =
            (i % 16 == 0) ? 8u * 1024 * 1024
                          : static_cast<sim::SimTime>((i % 1024) * 512);
        loop.schedule_event(base + 1 + off, sim::kEventDeliver,
                            static_cast<std::uint64_t>(i), 0);
      }
      loop.run();
    }
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (ctx.sink == 0) std::abort();  // keep the loop observable
    best = std::min(best, secs * 1e9 / (kBatch * kRounds));
  }
  return best;
}

}  // namespace

int main() {
  std::printf("hot-path batching sweep: legacy (full rebuild) vs. template "
              "patch, single thread\n\n");
  std::printf("generation throughput, 2^20 permuted targets from "
              "2400::/8-40:\n");
  std::printf("%-14s %14s %14s %9s\n", "module", "legacy pps", "patched pps",
              "speedup");

  const std::vector<net::Ipv6Address> targets = draw_targets();
  bench::BenchJson json{"hotpath_batching"};
  const scan::IcmpEchoProbe icmp{64};
  const scan::TcpSynProbe tcp{80};
  const scan::UdpProbe udp{53, {0x12, 0x34}, "udp53"};
  const scan::ProbeModule* modules[] = {&icmp, &tcp, &udp};
  double icmp_speedup = 0;
  for (const scan::ProbeModule* module : modules) {
    const GenResult r = generation_sweep(*module, targets);
    const double speedup = r.patched_pps / r.legacy_pps;
    if (module == &icmp) icmp_speedup = speedup;
    std::printf("%-14s %14.0f %14.0f %8.2fx\n", module->name().c_str(),
                r.legacy_pps, r.patched_pps, speedup);
    json.add(module->name() + "_legacy_pps", r.legacy_pps, "probes/s");
    json.add(module->name() + "_patched_pps", r.patched_pps, "probes/s");
    json.add(module->name() + "_speedup", speedup, "x");
  }

  const int window_bits = bench::window_bits_from_env(10);
  std::printf("\nend-to-end sim scan, paper world, window 2^%d per ISP "
              "(hop simulation included, best of 5 runs):\n",
              window_bits);
  const SimResult legacy = sim_scan(/*legacy=*/true, window_bits, 5);
  const SimResult batched = sim_scan(/*legacy=*/false, window_bits, 5);
  const double batched_evpp =
      static_cast<double>(batched.events) / static_cast<double>(batched.sent);
  std::printf("  legacy : %8.4f s  %llu probes  %.0f pps  %zu responders\n",
              legacy.wall_seconds,
              static_cast<unsigned long long>(legacy.sent),
              static_cast<double>(legacy.sent) / legacy.wall_seconds,
              legacy.unique);
  std::printf("  batched: %8.4f s  %llu probes  %.0f pps  %zu responders  "
              "%.2f events/probe\n",
              batched.wall_seconds,
              static_cast<unsigned long long>(batched.sent),
              static_cast<double>(batched.sent) / batched.wall_seconds,
              batched.unique, batched_evpp);
  json.add("sim_scan_legacy_pps",
           static_cast<double>(legacy.sent) / legacy.wall_seconds,
           "probes/s");
  json.add("sim_scan_batched_pps",
           static_cast<double>(batched.sent) / batched.wall_seconds,
           "probes/s");
  // Loop events per probe on the batched path: the tentpole's structural
  // claim (blocks + trains, not per-packet events) in one number.
  json.add("sim_scan_events_per_probe", batched_evpp, "events/probe",
           /*higher_is_better=*/false);
  const double pop_ns = event_schedule_pop_ns();
  std::printf("  timing wheel schedule+pop: %.1f ns\n", pop_ns);
  json.add("event_schedule_pop_ns", pop_ns, "ns",
           /*higher_is_better=*/false);
  json.write();

  if (legacy.sent != batched.sent || legacy.unique != batched.unique) {
    std::fprintf(stderr,
                 "FAIL: legacy and batched scans diverged "
                 "(%llu/%zu vs %llu/%zu)\n",
                 static_cast<unsigned long long>(legacy.sent), legacy.unique,
                 static_cast<unsigned long long>(batched.sent),
                 batched.unique);
    return 1;
  }
  if (icmp_speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: template hot path is only %.2fx the legacy build "
                 "path (acceptance floor: 2x)\n",
                 icmp_speedup);
    return 1;
  }
  std::printf("\nOK: %.2fx single-thread probe generation (floor 2x), "
              "identical scan results.\n",
              icmp_speedup);
  return 0;
}
