// Extension experiment — host tracking across prefix rotation.
//
// ISPs rotate delegated prefixes (the paper's related work: prefix agility,
// delegated-prefix rotation, assignment stability), which is often assumed
// to protect subscriber privacy. This experiment renumbers the entire
// universe (same devices, new delegations/WAN prefixes via
// BuildConfig::placement_seed) and asks: how many peripheries discovered in
// scan #1 can be re-identified in scan #2?
//
// The answer is the paper's §VII mitigation-1 rationale measured end to
// end: every EUI-64 device is trivially re-identified through its embedded
// MAC despite the renumbering, while privacy-addressed devices are lost.
#include <unordered_map>
#include <unordered_set>

#include "bench/common.h"

int main() {
  using namespace xmap;
  bench::print_header(
      "Extension: prefix rotation",
      "Host tracking across ISP renumbering via EUI-64 addresses");

  const int window_bits = bench::window_bits_from_env(10);
  const std::uint64_t seed = bench::seed_from_env();

  auto scan_world = [&](std::uint64_t placement) {
    struct Result {
      std::unordered_map<net::MacAddress, net::Ipv6Address> by_mac;
      std::size_t hops = 0;
      std::size_t devices = 0;
    };
    sim::Network net{seed};
    topo::BuildConfig cfg;
    cfg.window_bits = window_bits;
    cfg.seed = seed;
    cfg.placement_seed = placement;
    auto internet = topo::build_internet(net, topo::paper::isp_specs(),
                                         topo::paper::vendor_catalog(), cfg);
    auto discovery = ana::run_discovery_scan(net, internet, {}, {});
    Result out;
    out.hops = discovery.last_hops.size();
    out.devices = internet.total_devices();
    // Track genuine periphery devices (ground truth restricts away the
    // CMTS infra responders, whose per-flow EUI-64 sources derive from the
    // probed addresses rather than hardware).
    std::unordered_set<net::Ipv6Address> device_addrs;
    for (const auto& isp : internet.isps) {
      for (const auto& dev : isp.devices) device_addrs.insert(dev.address);
    }
    for (const auto& hop : discovery.last_hops) {
      if (device_addrs.count(hop.address) == 0) continue;
      if (auto mac = net::MacAddress::from_eui64_iid(hop.address.iid())) {
        out.by_mac[*mac] = hop.address;
      }
    }
    return out;
  };

  const auto epoch1 = scan_world(1001);
  const auto epoch2 = scan_world(2002);

  std::size_t tracked = 0, moved = 0;
  for (const auto& [mac, addr1] : epoch1.by_mac) {
    auto it = epoch2.by_mac.find(mac);
    if (it == epoch2.by_mac.end()) continue;
    ++tracked;
    if (it->second != addr1) ++moved;
  }

  ana::TextTable table{{"Metric", "Epoch 1", "Epoch 2"}};
  table.add_row({"devices in world", ana::fmt_count(epoch1.devices),
                 ana::fmt_count(epoch2.devices)});
  table.add_row({"last hops discovered", ana::fmt_count(epoch1.hops),
                 ana::fmt_count(epoch2.hops)});
  table.add_row({"EUI-64 responders", ana::fmt_count(epoch1.by_mac.size()),
                 ana::fmt_count(epoch2.by_mac.size())});
  table.print();

  std::printf(
      "\nAcross the renumbering event:\n"
      "  %zu devices re-identified by embedded MAC (%.1f%% of epoch-1 "
      "EUI-64 responders)\n"
      "  %zu of them had a different IPv6 address (the rotation \"worked\" "
      "— and tracking survived it anyway)\n"
      "  ~%.1f%% of the population (the privacy-addressed majority) could "
      "not be linked across epochs\n",
      tracked, ana::percent(tracked, epoch1.by_mac.size()), moved,
      100.0 - ana::percent(epoch1.by_mac.size(), epoch1.hops));
  std::printf(
      "\nPaper §VII: \"the temporary and opaque IIDs should substitute for "
      "the EUI-64 IIDs ... because of the drawbacks for hosts tracking, "
      "activities correlation, addresses scanning, and device-specific "
      "information leaking.\" This measures exactly that drawback.\n");
  return tracked > 0 && moved == tracked ? 0 : 1;
}
