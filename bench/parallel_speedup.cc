// Parallel-executor speedup: wall-clock of the N-worker engine vs one
// worker on the paper world at several scales. The per-worker cost has two
// parts — the replica world-build (every worker rebuilds its own
// thread-confined world; total build work grows with N) and the sharded
// scan itself (total scan work is constant, split N ways) — so attainable
// speedup is build-bound Amdahl; a raw-socket backend would skip the build
// entirely. On a machine with fewer cores than workers the interesting
// number is how close speedup stays to 1.0x: that is pure coordination
// overhead (queue, monitor, oversubscription), since the CPU work only
// grows with N. The header prints hardware_concurrency so the table is
// interpretable either way.
//
// XMAP_SEED overrides the world seed; thread counts are fixed {1,2,4,8}.
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/common.h"
#include "engine/executor.h"
#include "topology/paper_profiles.h"

namespace {

using namespace xmap;

struct RunOutcome {
  double wall_seconds = 0;
  std::uint64_t sent = 0;
  std::size_t unique = 0;
};

RunOutcome run_once(int threads, int window_bits, std::uint64_t seed) {
  static const scan::IcmpEchoProbe module{64};
  engine::EngineConfig cfg;
  cfg.world_specs = topo::paper::isp_specs();
  cfg.vendors = topo::paper::vendor_catalog();
  cfg.build.window_bits = window_bits;
  cfg.build.seed = seed;
  cfg.module = &module;
  cfg.scan.source = *net::Ipv6Address::parse("2001:500::1");
  cfg.scan.seed = seed ^ 0x5eed;
  cfg.scan.probes_per_sec = 1e9;  // unthrottled: measure engine cost
  cfg.threads = threads;
  auto result = engine::run_parallel_scan(cfg);
  if (!result.ok) {
    std::fprintf(stderr, "engine error: %s\n", result.error.c_str());
    std::exit(1);
  }
  return {result.wall_seconds, result.stats.sent,
          result.collector.unique_responders()};
}

}  // namespace

int main() {
  const char* env = std::getenv("XMAP_SEED");
  const std::uint64_t seed =
      env != nullptr ? static_cast<std::uint64_t>(std::atoll(env)) : 2020;

  std::printf("parallel executor speedup (paper world, ICMPv6 echo)\n");
  std::printf("hardware threads: %u\n", std::thread::hardware_concurrency());
  xmap::bench::BenchJson json{"parallel_speedup"};
  for (int window_bits : {8, 10, 12}) {
    std::printf("\nwindow 2^%d per block (%d probes total)\n", window_bits,
                15 * (1 << window_bits));
    std::printf("%8s %10s %9s %11s %10s %8s\n", "threads", "wall_s",
                "speedup", "efficiency", "sent", "uniq");
    double base = 0;
    std::size_t base_unique = 0;
    for (int threads : {1, 2, 4, 8}) {
      // Best-of-3 to damp scheduler noise.
      RunOutcome best = run_once(threads, window_bits, seed);
      for (int rep = 1; rep < 3; ++rep) {
        RunOutcome again = run_once(threads, window_bits, seed);
        if (again.wall_seconds < best.wall_seconds) best = again;
      }
      if (threads == 1) {
        base = best.wall_seconds;
        base_unique = best.unique;
      } else if (best.unique != base_unique) {
        std::fprintf(stderr,
                     "result mismatch at %d threads: %zu vs %zu unique\n",
                     threads, best.unique, base_unique);
        return 1;
      }
      std::printf("%8d %10.4f %8.2fx %10.0f%% %10llu %8zu\n", threads,
                  best.wall_seconds, base / best.wall_seconds,
                  100.0 * base / best.wall_seconds / threads,
                  static_cast<unsigned long long>(best.sent), best.unique);
      if (window_bits == 12) {
        char metric[64];
        std::snprintf(metric, sizeof metric, "scan_pps_%dt", threads);
        json.add(metric,
                 static_cast<double>(best.sent) / best.wall_seconds,
                 "probes/s");
        if (threads > 1) {
          std::snprintf(metric, sizeof metric, "speedup_%dt", threads);
          json.add(metric, base / best.wall_seconds, "x");
        }
      }
    }
  }
  json.write();
  return 0;
}
