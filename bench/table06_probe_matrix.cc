// Table VI — Probing requests and valid responses of the 8 selected
// services: a live demonstration of the grabber's request/response matrix
// against one fully-instrumented CPE.
#include "analysis/service_grabber.h"
#include "bench/common.h"
#include "topology/devices.h"

namespace {

const char* request_description(xmap::svc::ServiceKind kind) {
  using xmap::svc::ServiceKind;
  switch (kind) {
    case ServiceKind::kDns: return "\"A\" or version query (UDP/53)";
    case ServiceKind::kNtp: return "version query, mode 3 (UDP/123)";
    case ServiceKind::kFtp: return "request for connecting (TCP/21)";
    case ServiceKind::kSsh: return "version, key request (TCP/22)";
    case ServiceKind::kTelnet: return "request for login (TCP/23)";
    case ServiceKind::kHttp: return "HTTP GET request (TCP/80)";
    case ServiceKind::kTls: return "certificate request (TCP/443)";
    case ServiceKind::kHttp8080: return "HTTP GET request (TCP/8080)";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace xmap;
  bench::print_header("Table VI",
                      "Probing requests and valid responses of 8 services");

  // One CPE carrying every service.
  sim::Network net{66};
  topo::CpeRouter::Config cfg;
  cfg.wan_prefix = *net::Ipv6Prefix::parse("3fff:aaa:0:1::/64");
  cfg.wan_address = *net::Ipv6Address::parse("3fff:aaa:0:1::99");
  cfg.lan_prefix = *net::Ipv6Prefix::parse("3fff:aaa:1::/60");
  cfg.subnet_prefix = *net::Ipv6Prefix::parse("3fff:aaa:1::/64");
  auto* cpe = net.make_node<topo::CpeRouter>(cfg);

  const std::pair<svc::ServiceKind, svc::SoftwareInfo> deployments[] = {
      {svc::ServiceKind::kDns, {"dnsmasq", "2.45"}},
      {svc::ServiceKind::kNtp, {"ntpd", "4.2.8"}},
      {svc::ServiceKind::kFtp, {"GNU Inetutils", "1.4.1"}},
      {svc::ServiceKind::kSsh, {"dropbear", "0.46"}},
      {svc::ServiceKind::kTelnet, {"telnetd", ""}},
      {svc::ServiceKind::kHttp, {"micro_httpd", "1.0"}},
      {svc::ServiceKind::kTls, {"embedded-tls", "1.0"}},
      {svc::ServiceKind::kHttp8080, {"Jetty", "6.1.26"}},
  };
  for (const auto& [kind, sw] : deployments) {
    cpe->services().bind(svc::make_service(kind, sw, "DemoVendor"));
  }

  ana::ServiceGrabber::Config gcfg;
  gcfg.source = *net::Ipv6Address::parse("2001:500::2");
  auto* grabber = net.make_node<ana::ServiceGrabber>(gcfg);
  auto att = net.connect(grabber->id(), cpe->id());
  grabber->set_iface(att.iface_a);
  for (svc::ServiceKind kind : svc::kAllServices) {
    grabber->enqueue(cfg.wan_address, kind);
  }
  grabber->start();
  net.run();

  ana::TextTable table{{"Service/Port", "Request", "Valid response observed",
                        "Software recovered"}};
  int alive = 0;
  for (const auto& result : grabber->results()) {
    std::string response;
    if (result.alive) {
      ++alive;
      switch (result.kind) {
        case svc::ServiceKind::kDns: response = "answers (TXT version)"; break;
        case svc::ServiceKind::kNtp: response = "version reply (mode 4)"; break;
        case svc::ServiceKind::kFtp: response = "successful response (220)"; break;
        case svc::ServiceKind::kSsh: response = "version, key banner"; break;
        case svc::ServiceKind::kTelnet: response = "response for login"; break;
        case svc::ServiceKind::kHttp:
        case svc::ServiceKind::kHttp8080:
          response = "header, version, body";
          break;
        case svc::ServiceKind::kTls: response = "certificate, cipher suite"; break;
      }
    } else {
      response = "(none)";
    }
    table.add_row({svc::service_name(result.kind),
                   request_description(result.kind), response,
                   result.software ? result.software->full() : "-"});
  }
  table.print();

  std::printf("\n%d/8 services produced the paper's valid-response class.\n",
              alive);
  return alive == 8 ? 0 : 1;
}
