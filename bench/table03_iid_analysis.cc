// Table III — IID analysis of discovered peripheries (addr6 classes over
// all last hops across the fifteen blocks).
#include "bench/common.h"

int main() {
  using namespace xmap;
  bench::print_header("Table III", "IID analysis of discovered peripheries");

  auto world = bench::make_paper_world();
  auto discoveries = bench::discover_all(world);

  ana::IidHistogram hist;
  double weighted[net::kIidStyleCount] = {};
  double w_total = 0;
  for (const auto& entry : discoveries) {
    ana::IidHistogram per_isp;
    for (const auto& hop : entry.result.last_hops) {
      hist.add(hop.address);
      per_isp.add(hop.address);
    }
    // Paper-weighted mix (see Table II for the rationale).
    const double w =
        world.internet.isps[static_cast<std::size_t>(entry.index)]
            .spec.paper_hops;
    w_total += w;
    if (per_isp.total > 0) {
      for (int i = 0; i < net::kIidStyleCount; ++i) {
        weighted[i] += w *
                       static_cast<double>(
                           per_isp.counts[i]) /
                       static_cast<double>(per_isp.total);
      }
    }
  }

  // The paper's reported distribution for the same table.
  const double paper[net::kIidStyleCount] = {7.6, 1.0, 5.5, 10.4, 75.5};

  ana::TextTable table{{"Class", "# num", "%", "paper-wt %", "paper %"}};
  for (int i = 0; i < net::kIidStyleCount; ++i) {
    const auto style = static_cast<net::IidStyle>(i);
    table.add_row({net::iid_style_name(style), ana::fmt_count(hist.of(style)),
                   ana::fmt_pct(ana::percent(hist.of(style), hist.total)),
                   ana::fmt_pct(100.0 * weighted[i] / w_total),
                   ana::fmt_pct(paper[i])});
  }
  table.add_row({"Total", ana::fmt_count(hist.total), "100.0", "100.0",
                 "100.0"});
  table.print();

  std::printf("\nShape check: Randomized dominates, Byte-pattern second, "
              "EUI-64 ~7-8%%, Low-byte ~1%%.\n");
  return 0;
}
