// Micro-benchmarks (google-benchmark): the scanner's hot paths — cyclic
// group permutation, target/probe construction, packet codec, checksum and
// longest-prefix-match lookups — plus the linear-vs-permuted ablation
// DESIGN.md calls out.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/common.h"
#include "netbase/checksum.h"
#include "netbase/random.h"
#include "topology/routing_table.h"
#include "xmap/cyclic_group.h"
#include "xmap/probe_module.h"
#include "xmap/target_spec.h"

namespace {

using namespace xmap;

void BM_CyclicGroupNext(benchmark::State& state) {
  scan::CyclicGroup group{net::Uint128::pow2(static_cast<int>(state.range(0))),
                          42};
  auto it = group.iterate();
  for (auto _ : state) {
    auto v = it.next();
    if (!v) it = group.iterate();
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CyclicGroupNext)->Arg(16)->Arg(32)->Arg(48)->Arg(64);

void BM_GroupConstruction(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    scan::CyclicGroup group{
        net::Uint128::pow2(static_cast<int>(state.range(0))), seed++};
    benchmark::DoNotOptimize(group.generator());
  }
}
BENCHMARK(BM_GroupConstruction)->Arg(16)->Arg(32)->Arg(64);

// Ablation: linear enumeration vs cyclic-group permutation. The permutation
// costs one 128-bit mulmod per target; this quantifies the overhead paid
// for probe-order randomisation (politeness to target networks).
void BM_LinearEnumeration(benchmark::State& state) {
  const auto spec = *scan::TargetSpec::parse("2400::/8-40");
  net::Uint128 i{0};
  for (auto _ : state) {
    auto addr = spec.nth_address(i, 7);
    i += net::Uint128{1};
    benchmark::DoNotOptimize(addr);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LinearEnumeration);

void BM_PermutedEnumeration(benchmark::State& state) {
  const auto spec = *scan::TargetSpec::parse("2400::/8-40");
  scan::CyclicGroup group{spec.count(), 42};
  auto it = group.iterate();
  for (auto _ : state) {
    auto v = it.next();
    if (!v) {
      it = group.iterate();
      v = it.next();
    }
    auto addr = spec.nth_address(*v, 7);
    benchmark::DoNotOptimize(addr);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PermutedEnumeration);

void BM_BuildEchoProbe(benchmark::State& state) {
  const auto src = *net::Ipv6Address::parse("2001:500::1");
  const auto dst = *net::Ipv6Address::parse("2400:1:2:3::1234");
  scan::IcmpEchoProbe module{64};
  for (auto _ : state) {
    auto packet = module.make_probe(src, dst, 7);
    benchmark::DoNotOptimize(packet);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BuildEchoProbe);

// The template hot path: re-aim a cached frame per target (destination +
// keyed fields + incremental checksum) instead of a full rebuild. The ratio
// against BM_BuildEchoProbe is the per-probe win the scanner banks on.
void BM_PatchEchoProbe(benchmark::State& state) {
  const auto src = *net::Ipv6Address::parse("2001:500::1");
  const auto spec = *scan::TargetSpec::parse("2400::/8-40");
  scan::IcmpEchoProbe module{64};
  scan::ProbeTemplate tmpl = module.make_template(src, 7);
  net::Uint128 i{0};
  for (auto _ : state) {
    const auto target = spec.nth_address(i, 7);
    i += net::Uint128{1};
    module.patch_probe(tmpl, src, target, 7);
    benchmark::DoNotOptimize(tmpl.frame().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PatchEchoProbe);

void BM_ChecksumUpdate(benchmark::State& state) {
  std::vector<std::uint8_t> buf(64, 0xa5);
  std::uint16_t csum = net::internet_checksum(buf);
  std::uint8_t patch[16] = {};
  std::uint64_t n = 0;
  for (auto _ : state) {
    patch[0] = static_cast<std::uint8_t>(++n);
    csum = net::checksum_update(
        csum, std::span<const std::uint8_t>{buf.data() + 16, 16}, patch);
    std::memcpy(buf.data() + 16, patch, 16);
    benchmark::DoNotOptimize(csum);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChecksumUpdate);

void BM_ClassifyResponse(benchmark::State& state) {
  const auto src = *net::Ipv6Address::parse("2001:500::1");
  const auto dst = *net::Ipv6Address::parse("2400:1:2:3::1234");
  const auto router = *net::Ipv6Address::parse("2400:1:2:3::1");
  scan::IcmpEchoProbe module{64};
  const auto err = pkt::build_icmpv6_error(
      router, pkt::Icmpv6Type::kDestUnreachable, 3,
      module.make_probe(src, dst, 7));
  for (auto _ : state) {
    auto result = module.classify(err, src, 7);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClassifyResponse);

void BM_Checksum1280(benchmark::State& state) {
  std::vector<std::uint8_t> data(1280, 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::internet_checksum(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1280);
}
BENCHMARK(BM_Checksum1280);

void BM_LpmLookup(benchmark::State& state) {
  topo::RoutingTable table;
  net::Rng rng{5};
  for (int i = 0; i < state.range(0); ++i) {
    const auto addr =
        net::Ipv6Address::from_value(net::Uint128{rng.next(), rng.next()});
    table.add_forward(net::Ipv6Prefix{addr, 64}, i % 8);
  }
  table.add_default(0);
  const auto probe =
      net::Ipv6Address::from_value(net::Uint128{rng.next(), rng.next()});
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(probe));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LpmLookup)->Arg(100)->Arg(10000)->Arg(100000);

void BM_AddressParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net::Ipv6Address::parse("2001:db8:1234:5678:9abc:def0:1357:2468"));
  }
}
BENCHMARK(BM_AddressParse);

void BM_AddressFormat(benchmark::State& state) {
  const auto addr = *net::Ipv6Address::parse("2001:db8::1234:0:0:1");
  for (auto _ : state) {
    benchmark::DoNotOptimize(addr.to_string());
  }
}
BENCHMARK(BM_AddressFormat);

// Hand-timed versions of the headline kernels for BENCH_micro_xmap.json:
// independent of the benchmark library's reporter API, so the regression
// checker sees a stable schema.
void write_bench_json() {
  using Clock = std::chrono::steady_clock;
  const auto src = *net::Ipv6Address::parse("2001:500::1");
  const auto spec = *scan::TargetSpec::parse("2400::/8-40");
  scan::IcmpEchoProbe module{64};
  constexpr int kIters = 400000;

  auto throughput = [&](auto&& body) {
    // One warm-up pass (pool + caches), then the timed pass.
    for (int rep = 0; rep < 2; ++rep) {
      const auto t0 = Clock::now();
      std::uint64_t sink = 0;
      net::Uint128 i{0};
      for (int k = 0; k < kIters; ++k) {
        sink += body(spec.nth_address(i, 7));
        i += net::Uint128{1};
      }
      benchmark::DoNotOptimize(sink);
      if (rep == 1) {
        return kIters / std::chrono::duration<double>(Clock::now() - t0)
                            .count();
      }
    }
    return 0.0;
  };

  xmap::bench::BenchJson json{"micro_xmap"};
  json.add("build_echo_probe_per_sec", throughput([&](const auto& target) {
             return module.make_probe(src, target, 7).size();
           }),
           "probes/s");
  scan::ProbeTemplate tmpl = module.make_template(src, 7);
  json.add("patch_echo_probe_per_sec", throughput([&](const auto& target) {
             module.patch_probe(tmpl, src, target, 7);
             return tmpl.frame().size();
           }),
           "probes/s");
  std::vector<std::uint8_t> buf(1280, 0xa5);
  json.add("checksum_1280_per_sec", throughput([&](const auto&) {
             return static_cast<std::size_t>(net::internet_checksum(buf));
           }),
           "checksums/s");
  // SIMD-path checksum throughput, preceded by an equality sweep pinning
  // the dispatched path to the byte-pair reference over random contents,
  // odd lengths and unaligned starts. An abort here beats a silently wrong
  // wire checksum in every probe.
  {
    net::Rng rng{0x51u};
    std::vector<std::uint8_t> rbuf(1400);
    for (auto& b : rbuf) b = static_cast<std::uint8_t>(rng.next());
    for (const std::size_t off : {std::size_t{0}, std::size_t{1},
                                  std::size_t{3}, std::size_t{17}}) {
      for (const std::size_t len :
           {std::size_t{64}, std::size_t{127}, std::size_t{128},
            std::size_t{256}, std::size_t{1279}, std::size_t{1280}}) {
        const std::span<const std::uint8_t> s{rbuf.data() + off, len};
        const std::uint16_t fast =
            net::checksum_finish(net::checksum_accumulate(s));
        const std::uint16_t ref =
            net::checksum_finish(net::checksum_accumulate_reference(s));
        if (fast != ref) {
          std::fprintf(stderr,
                       "checksum SIMD/reference mismatch off=%zu len=%zu\n",
                       off, len);
          std::abort();
        }
      }
    }
  }
  json.add("checksum_1280_simd_per_sec", throughput([&](const auto&) {
             return static_cast<std::size_t>(
                 net::checksum_fold(net::checksum_accumulate(buf)));
           }),
           "checksums/s");
  json.write();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_bench_json();
  return 0;
}
