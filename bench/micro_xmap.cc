// Micro-benchmarks (google-benchmark): the scanner's hot paths — cyclic
// group permutation, target/probe construction, packet codec, checksum and
// longest-prefix-match lookups — plus the linear-vs-permuted ablation
// DESIGN.md calls out.
#include <benchmark/benchmark.h>

#include "netbase/checksum.h"
#include "topology/routing_table.h"
#include "xmap/cyclic_group.h"
#include "xmap/probe_module.h"
#include "xmap/target_spec.h"

namespace {

using namespace xmap;

void BM_CyclicGroupNext(benchmark::State& state) {
  scan::CyclicGroup group{net::Uint128::pow2(static_cast<int>(state.range(0))),
                          42};
  auto it = group.iterate();
  for (auto _ : state) {
    auto v = it.next();
    if (!v) it = group.iterate();
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CyclicGroupNext)->Arg(16)->Arg(32)->Arg(48)->Arg(64);

void BM_GroupConstruction(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    scan::CyclicGroup group{
        net::Uint128::pow2(static_cast<int>(state.range(0))), seed++};
    benchmark::DoNotOptimize(group.generator());
  }
}
BENCHMARK(BM_GroupConstruction)->Arg(16)->Arg(32)->Arg(64);

// Ablation: linear enumeration vs cyclic-group permutation. The permutation
// costs one 128-bit mulmod per target; this quantifies the overhead paid
// for probe-order randomisation (politeness to target networks).
void BM_LinearEnumeration(benchmark::State& state) {
  const auto spec = *scan::TargetSpec::parse("2400::/8-40");
  net::Uint128 i{0};
  for (auto _ : state) {
    auto addr = spec.nth_address(i, 7);
    i += net::Uint128{1};
    benchmark::DoNotOptimize(addr);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LinearEnumeration);

void BM_PermutedEnumeration(benchmark::State& state) {
  const auto spec = *scan::TargetSpec::parse("2400::/8-40");
  scan::CyclicGroup group{spec.count(), 42};
  auto it = group.iterate();
  for (auto _ : state) {
    auto v = it.next();
    if (!v) {
      it = group.iterate();
      v = it.next();
    }
    auto addr = spec.nth_address(*v, 7);
    benchmark::DoNotOptimize(addr);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PermutedEnumeration);

void BM_BuildEchoProbe(benchmark::State& state) {
  const auto src = *net::Ipv6Address::parse("2001:500::1");
  const auto dst = *net::Ipv6Address::parse("2400:1:2:3::1234");
  scan::IcmpEchoProbe module{64};
  for (auto _ : state) {
    auto packet = module.make_probe(src, dst, 7);
    benchmark::DoNotOptimize(packet);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BuildEchoProbe);

void BM_ClassifyResponse(benchmark::State& state) {
  const auto src = *net::Ipv6Address::parse("2001:500::1");
  const auto dst = *net::Ipv6Address::parse("2400:1:2:3::1234");
  const auto router = *net::Ipv6Address::parse("2400:1:2:3::1");
  scan::IcmpEchoProbe module{64};
  const auto err = pkt::build_icmpv6_error(
      router, pkt::Icmpv6Type::kDestUnreachable, 3,
      module.make_probe(src, dst, 7));
  for (auto _ : state) {
    auto result = module.classify(err, src, 7);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClassifyResponse);

void BM_Checksum1280(benchmark::State& state) {
  std::vector<std::uint8_t> data(1280, 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::internet_checksum(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1280);
}
BENCHMARK(BM_Checksum1280);

void BM_LpmLookup(benchmark::State& state) {
  topo::RoutingTable table;
  net::Rng rng{5};
  for (int i = 0; i < state.range(0); ++i) {
    const auto addr =
        net::Ipv6Address::from_value(net::Uint128{rng.next(), rng.next()});
    table.add_forward(net::Ipv6Prefix{addr, 64}, i % 8);
  }
  table.add_default(0);
  const auto probe =
      net::Ipv6Address::from_value(net::Uint128{rng.next(), rng.next()});
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(probe));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LpmLookup)->Arg(100)->Arg(10000)->Arg(100000);

void BM_AddressParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net::Ipv6Address::parse("2001:db8:1234:5678:9abc:def0:1357:2468"));
  }
}
BENCHMARK(BM_AddressParse);

void BM_AddressFormat(benchmark::State& state) {
  const auto addr = *net::Ipv6Address::parse("2001:db8::1234:0:0:1");
  for (auto _ : state) {
    benchmark::DoNotOptimize(addr.to_string());
  }
}
BENCHMARK(BM_AddressFormat);

}  // namespace

BENCHMARK_MAIN();
