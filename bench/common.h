// Shared scaffolding for the experiment harnesses (one binary per paper
// table/figure). Each binary builds the calibrated synthetic Internet,
// runs the relevant pipeline stages, and prints the paper-style table plus
// the paper's reported shape for side-by-side comparison.
//
// Scale: XMAP_WINDOW_BITS (env) sets slots-per-block as 2^bits, default 12
// (the paper scans 2^32 per block; proportions, not magnitudes, are the
// reproduction target). XMAP_SEED sets the world seed.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/pipeline.h"
#include "analysis/report.h"
#include "topology/paper_profiles.h"

namespace xmap::bench {

// Machine-readable benchmark output: collects (metric, value, unit) rows
// and writes them as BENCH_<name>.json in the working directory, stamped
// with the git revision (GITHUB_SHA in CI, `git rev-parse` locally). The
// perf-smoke CI job diffs these files against bench/baselines/ — see
// tools/check_bench_regression.py for the schema contract.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  // `higher_is_better` tells the regression checker which direction is a
  // regression (true for throughputs, false for latencies/overheads).
  void add(const std::string& metric, double value, const std::string& unit,
           bool higher_is_better = true) {
    rows_.push_back({metric, unit, value, higher_is_better});
  }

  void write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"git_sha\": \"%s\",\n"
                 "  \"results\": [\n",
                 name_.c_str(), git_sha().c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      std::fprintf(f,
                   "    {\"metric\": \"%s\", \"value\": %.17g, "
                   "\"unit\": \"%s\", \"direction\": \"%s\", "
                   "\"higher_is_better\": %s}%s\n",
                   r.metric.c_str(), r.value, r.unit.c_str(),
                   r.higher_is_better ? "higher" : "lower",
                   r.higher_is_better ? "true" : "false",
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu metrics)\n", path.c_str(), rows_.size());
  }

 private:
  [[nodiscard]] static std::string git_sha() {
    if (const char* env = std::getenv("GITHUB_SHA")) return env;
    std::string sha = "unknown";
    if (std::FILE* p = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
      char buf[64] = {};
      if (std::fgets(buf, sizeof buf, p) != nullptr) {
        std::string s{buf};
        while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) {
          s.pop_back();
        }
        if (!s.empty()) sha = s;
      }
      ::pclose(p);
    }
    return sha;
  }

  struct Row {
    std::string metric;
    std::string unit;
    double value = 0;
    bool higher_is_better = true;
  };
  std::string name_;
  std::vector<Row> rows_;
};

inline int window_bits_from_env(int fallback = 12) {
  const char* env = std::getenv("XMAP_WINDOW_BITS");
  if (env == nullptr) return fallback;
  const int bits = std::atoi(env);
  return bits >= 4 && bits <= 20 ? bits : fallback;
}

inline std::uint64_t seed_from_env(std::uint64_t fallback = 2020) {
  const char* env = std::getenv("XMAP_SEED");
  return env == nullptr ? fallback
                        : static_cast<std::uint64_t>(std::atoll(env));
}

struct World {
  sim::Network net{2020};
  topo::BuiltInternet internet;

  explicit World(std::vector<topo::IspSpec> specs, int window_bits,
                 std::uint64_t seed)
      : internet([&] {
          topo::BuildConfig cfg;
          cfg.window_bits = window_bits;
          cfg.seed = seed;
          return topo::build_internet(net, std::move(specs),
                                      topo::paper::vendor_catalog(), cfg);
        }()) {}
};

inline World make_paper_world() {
  return World{topo::paper::isp_specs(), window_bits_from_env(),
               seed_from_env()};
}

inline World make_bgp_world(int n_ases = 320) {
  // BGP sweep uses a shallower per-prefix window (the paper probes 16-bit
  // sub-prefix spaces per advertised prefix). A sprinkling of ASes carry
  // aliased prefixes (hosting/CDN space), exercising the "non-aliased"
  // filtering step of the pipeline.
  const int bits = std::max(4, window_bits_from_env() - 6);
  auto specs = topo::paper::bgp_specs(n_ases, seed_from_env());
  for (std::size_t i = 0; i < specs.size(); i += 40) {
    specs[i].aliased_slots = 2;
  }
  return World{std::move(specs), bits, seed_from_env() + 1};
}

// Per-ISP discovery results for the census-style tables.
struct IspDiscovery {
  int index = 0;
  ana::DiscoveryResult result;
};

inline std::vector<IspDiscovery> discover_all(World& world) {
  std::vector<IspDiscovery> out;
  for (std::size_t i = 0; i < world.internet.isps.size(); ++i) {
    const int idx[] = {static_cast<int>(i)};
    IspDiscovery entry;
    entry.index = static_cast<int>(i);
    entry.result = ana::run_discovery_scan(world.net, world.internet, idx, {});
    out.push_back(std::move(entry));
  }
  return out;
}

// Collects every (address -> alive grabs) over the given last hops.
struct CensusGrabs {
  std::vector<ana::GrabResult> all;
  // address -> alive services
  std::unordered_map<net::Ipv6Address, std::vector<const ana::GrabResult*>>
      alive_by_addr;
};

inline CensusGrabs grab_all(World& world,
                            const std::vector<scan::LastHop>& hops) {
  std::vector<net::Ipv6Address> targets;
  targets.reserve(hops.size());
  for (const auto& hop : hops) targets.push_back(hop.address);
  CensusGrabs out;
  out.all = ana::grab_services(world.net, world.internet, targets, {});
  for (const auto& grab : out.all) {
    if (grab.alive) out.alive_by_addr[grab.target].push_back(&grab);
  }
  return out;
}

// Best-effort vendor identification: hardware (EUI-64 OUI) first, then
// application-level hints — the paper's Table IV method.
inline std::string identify_vendor(const net::Ipv6Address& addr,
                                   const topo::OuiDb& oui,
                                   const CensusGrabs* grabs) {
  if (auto vendor = ana::vendor_from_address(addr, oui)) return *vendor;
  if (grabs != nullptr) {
    auto it = grabs->alive_by_addr.find(addr);
    if (it != grabs->alive_by_addr.end()) {
      for (const ana::GrabResult* grab : it->second) {
        if (!grab->vendor_hint.empty()) return grab->vendor_hint;
      }
    }
  }
  return {};
}

inline std::string isp_label(const topo::IspSpec& spec) {
  return spec.country + " " + spec.network + " " + spec.name;
}

inline void print_header(const char* table, const char* description) {
  std::printf("\n=== %s ===\n%s\n", table, description);
  std::printf("(window 2^%d slots/block, seed %llu — paper scale is 2^32; "
              "compare proportions, not magnitudes)\n\n",
              window_bits_from_env(),
              static_cast<unsigned long long>(seed_from_env()));
}

}  // namespace xmap::bench
