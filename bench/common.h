// Shared scaffolding for the experiment harnesses (one binary per paper
// table/figure). Each binary builds the calibrated synthetic Internet,
// runs the relevant pipeline stages, and prints the paper-style table plus
// the paper's reported shape for side-by-side comparison.
//
// Scale: XMAP_WINDOW_BITS (env) sets slots-per-block as 2^bits, default 12
// (the paper scans 2^32 per block; proportions, not magnitudes, are the
// reproduction target). XMAP_SEED sets the world seed.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/pipeline.h"
#include "analysis/report.h"
#include "topology/paper_profiles.h"

namespace xmap::bench {

inline int window_bits_from_env(int fallback = 12) {
  const char* env = std::getenv("XMAP_WINDOW_BITS");
  if (env == nullptr) return fallback;
  const int bits = std::atoi(env);
  return bits >= 4 && bits <= 20 ? bits : fallback;
}

inline std::uint64_t seed_from_env(std::uint64_t fallback = 2020) {
  const char* env = std::getenv("XMAP_SEED");
  return env == nullptr ? fallback
                        : static_cast<std::uint64_t>(std::atoll(env));
}

struct World {
  sim::Network net{2020};
  topo::BuiltInternet internet;

  explicit World(std::vector<topo::IspSpec> specs, int window_bits,
                 std::uint64_t seed)
      : internet([&] {
          topo::BuildConfig cfg;
          cfg.window_bits = window_bits;
          cfg.seed = seed;
          return topo::build_internet(net, std::move(specs),
                                      topo::paper::vendor_catalog(), cfg);
        }()) {}
};

inline World make_paper_world() {
  return World{topo::paper::isp_specs(), window_bits_from_env(),
               seed_from_env()};
}

inline World make_bgp_world(int n_ases = 320) {
  // BGP sweep uses a shallower per-prefix window (the paper probes 16-bit
  // sub-prefix spaces per advertised prefix). A sprinkling of ASes carry
  // aliased prefixes (hosting/CDN space), exercising the "non-aliased"
  // filtering step of the pipeline.
  const int bits = std::max(4, window_bits_from_env() - 6);
  auto specs = topo::paper::bgp_specs(n_ases, seed_from_env());
  for (std::size_t i = 0; i < specs.size(); i += 40) {
    specs[i].aliased_slots = 2;
  }
  return World{std::move(specs), bits, seed_from_env() + 1};
}

// Per-ISP discovery results for the census-style tables.
struct IspDiscovery {
  int index = 0;
  ana::DiscoveryResult result;
};

inline std::vector<IspDiscovery> discover_all(World& world) {
  std::vector<IspDiscovery> out;
  for (std::size_t i = 0; i < world.internet.isps.size(); ++i) {
    const int idx[] = {static_cast<int>(i)};
    IspDiscovery entry;
    entry.index = static_cast<int>(i);
    entry.result = ana::run_discovery_scan(world.net, world.internet, idx, {});
    out.push_back(std::move(entry));
  }
  return out;
}

// Collects every (address -> alive grabs) over the given last hops.
struct CensusGrabs {
  std::vector<ana::GrabResult> all;
  // address -> alive services
  std::unordered_map<net::Ipv6Address, std::vector<const ana::GrabResult*>>
      alive_by_addr;
};

inline CensusGrabs grab_all(World& world,
                            const std::vector<scan::LastHop>& hops) {
  std::vector<net::Ipv6Address> targets;
  targets.reserve(hops.size());
  for (const auto& hop : hops) targets.push_back(hop.address);
  CensusGrabs out;
  out.all = ana::grab_services(world.net, world.internet, targets, {});
  for (const auto& grab : out.all) {
    if (grab.alive) out.alive_by_addr[grab.target].push_back(&grab);
  }
  return out;
}

// Best-effort vendor identification: hardware (EUI-64 OUI) first, then
// application-level hints — the paper's Table IV method.
inline std::string identify_vendor(const net::Ipv6Address& addr,
                                   const topo::OuiDb& oui,
                                   const CensusGrabs* grabs) {
  if (auto vendor = ana::vendor_from_address(addr, oui)) return *vendor;
  if (grabs != nullptr) {
    auto it = grabs->alive_by_addr.find(addr);
    if (it != grabs->alive_by_addr.end()) {
      for (const ana::GrabResult* grab : it->second) {
        if (!grab->vendor_hint.empty()) return grab->vendor_hint;
      }
    }
  }
  return {};
}

inline std::string isp_label(const topo::IspSpec& spec) {
  return spec.country + " " + spec.network + " " + spec.name;
}

inline void print_header(const char* table, const char* description) {
  std::printf("\n=== %s ===\n%s\n", table, description);
  std::printf("(window 2^%d slots/block, seed %llu — paper scale is 2^32; "
              "compare proportions, not magnitudes)\n\n",
              window_bits_from_env(),
              static_cast<unsigned long long>(seed_from_env()));
}

}  // namespace xmap::bench
