// Figure 6 — Top 5 routing-loop periphery device vendors within the top 5
// ASes (from the deep scan of the fifteen sample blocks).
#include "bench/common.h"

int main() {
  using namespace xmap;
  bench::print_header("Figure 6",
                      "Top 5 routing loop periphery vendors within top 5 ASes");

  auto world = bench::make_paper_world();
  auto discoveries = bench::discover_all(world);
  std::vector<scan::LastHop> all_hops;
  for (const auto& entry : discoveries) {
    all_hops.insert(all_hops.end(), entry.result.last_hops.begin(),
                    entry.result.last_hops.end());
  }
  auto grabs = bench::grab_all(world, all_hops);

  auto loops = ana::run_loop_scan(world.net, world.internet, {}, {});

  ana::Counter by_vendor, by_asn;
  std::map<std::string, ana::Counter> vendor_by_asn;
  for (const auto& loop : loops.confirmed) {
    const auto* geo = world.internet.geo.lookup(loop.address);
    if (geo == nullptr) continue;
    bool infrastructure = false;
    for (const auto& isp : world.internet.isps) {
      infrastructure = infrastructure || loop.address == isp.router->address();
    }
    if (infrastructure) continue;
    const std::string vendor =
        bench::identify_vendor(loop.address, world.internet.oui, &grabs);
    if (vendor.empty()) continue;
    const std::string asn = "AS" + std::to_string(geo->asn);
    by_vendor.add(vendor);
    by_asn.add(asn);
    vendor_by_asn[asn].add(vendor);
  }

  std::printf("Top 5 loop-vulnerable vendors (identified devices):\n");
  for (const auto& [vendor, count] : by_vendor.top(5)) {
    std::printf("  %-16s %6llu\n", vendor.c_str(),
                static_cast<unsigned long long>(count));
  }

  std::printf("\nPer-AS vendor breakdown (top 5 ASes):\n");
  for (const auto& [asn, total] : by_asn.top(5)) {
    std::printf("  %s (total %llu)\n", asn.c_str(),
                static_cast<unsigned long long>(total));
    for (const auto& [vendor, count] : vendor_by_asn[asn].top(5)) {
      std::printf("      %-16s %6llu\n", vendor.c_str(),
                  static_cast<unsigned long long>(count));
    }
  }

  std::printf(
      "\nPaper: vendors China Mobile, ZTE, Skyworth, Youhua Tech, StarNet "
      "within ASes 4812/4134/4837/9808/24445 — Chinese broadband dominates "
      "because the sampled blocks are biased towards it.\n");
  return 0;
}
