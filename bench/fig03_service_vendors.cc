// Figure 3 — Results of top periphery device vendors within each service:
// which vendors contribute each exposed service.
#include "bench/common.h"

int main() {
  using namespace xmap;
  bench::print_header("Figure 3",
                      "Top periphery device vendors within each service");

  auto world = bench::make_paper_world();
  auto discoveries = bench::discover_all(world);
  std::vector<scan::LastHop> all_hops;
  for (const auto& entry : discoveries) {
    all_hops.insert(all_hops.end(), entry.result.last_hops.begin(),
                    entry.result.last_hops.end());
  }
  auto grabs = bench::grab_all(world, all_hops);

  // service -> vendor counter.
  std::map<int, ana::Counter> by_service;
  for (const auto& hop : all_hops) {
    auto it = grabs.alive_by_addr.find(hop.address);
    if (it == grabs.alive_by_addr.end()) continue;
    const std::string vendor =
        bench::identify_vendor(hop.address, world.internet.oui, &grabs);
    if (vendor.empty()) continue;
    for (const ana::GrabResult* grab : it->second) {
      by_service[static_cast<int>(grab->kind)].add(vendor);
    }
  }

  for (int s = 0; s < svc::kServiceCount; ++s) {
    const auto kind = static_cast<svc::ServiceKind>(s);
    const auto& counter = by_service[s];
    std::printf("%s (total %llu devices, %zu vendors)\n",
                svc::service_name(kind),
                static_cast<unsigned long long>(counter.total()),
                counter.distinct());
    for (const auto& [vendor, count] : counter.top(5)) {
      std::printf("    %-16s %6llu  (%.1f%%)\n", vendor.c_str(),
                  static_cast<unsigned long long>(count),
                  ana::percent(count, counter.total()));
    }
  }

  std::printf(
      "\nPaper shape: DNS spread over China Mobile/Fiberhome/Youhua/ZTE; "
      "SSH and FTP concentrated in Fiberhome+Youhua; TELNET in "
      "Youhua/ZTE/China Unicom; HTTP-8080 overwhelmingly China Mobile "
      "(+StarNet); NTP almost entirely CenturyLink-side vendors.\n");
  return 0;
}
