// Table VII — Results of alive services on peripheries within each ISP:
// device count and proportion of all discovered peripheries, per service.
#include <array>
#include <set>

#include "bench/common.h"

int main() {
  using namespace xmap;
  bench::print_header("Table VII",
                      "Alive services on peripheries within each ISP");

  auto world = bench::make_paper_world();
  auto discoveries = bench::discover_all(world);

  ana::TextTable table{{"ISP", "DNS", "NTP", "FTP", "SSH", "TELNET", "HTTP-80",
                        "TLS", "HTTP-8080", "Total #", "Total %"}};

  std::array<std::uint64_t, svc::kServiceCount> grand{};
  std::uint64_t grand_any = 0, grand_hops = 0;
  // Paper-weighted totals (see Table II for the rationale).
  std::array<double, svc::kServiceCount> weighted{};
  double w_any = 0, w_total = 0;

  for (const auto& entry : discoveries) {
    const auto& isp = world.internet.isps[static_cast<std::size_t>(entry.index)];
    const auto& hops = entry.result.last_hops;
    auto grabs = bench::grab_all(world, hops);

    std::array<std::uint64_t, svc::kServiceCount> per_service{};
    std::set<net::Ipv6Address> any;
    for (const auto& grab : grabs.all) {
      if (!grab.alive) continue;
      ++per_service[static_cast<int>(grab.kind)];
      any.insert(grab.target);
    }

    const auto n = static_cast<std::uint64_t>(hops.size());
    std::vector<std::string> row{bench::isp_label(isp.spec)};
    for (int s = 0; s < svc::kServiceCount; ++s) {
      row.push_back(ana::fmt_count(per_service[s]) + " (" +
                    ana::fmt_pct(ana::percent(per_service[s], n)) + "%)");
      grand[static_cast<std::size_t>(s)] += per_service[static_cast<std::size_t>(s)];
    }
    row.push_back(ana::fmt_count(any.size()));
    row.push_back(ana::fmt_pct(ana::percent(any.size(), n)));
    table.add_row(std::move(row));

    grand_any += any.size();
    grand_hops += n;

    const double w = isp.spec.paper_hops;
    w_total += w;
    if (n > 0) {
      for (int s = 0; s < svc::kServiceCount; ++s) {
        weighted[static_cast<std::size_t>(s)] +=
            w * static_cast<double>(per_service[static_cast<std::size_t>(s)]) /
            static_cast<double>(n);
      }
      w_any += w * static_cast<double>(any.size()) / static_cast<double>(n);
    }
  }

  std::vector<std::string> total_row{"Total"};
  for (int s = 0; s < svc::kServiceCount; ++s) {
    total_row.push_back(ana::fmt_count(grand[static_cast<std::size_t>(s)]) + " (" +
                        ana::fmt_pct(ana::percent(grand[static_cast<std::size_t>(s)], grand_hops)) +
                        "%)");
  }
  total_row.push_back(ana::fmt_count(grand_any));
  total_row.push_back(ana::fmt_pct(ana::percent(grand_any, grand_hops)));
  table.add_row(std::move(total_row));

  std::vector<std::string> weighted_row{"Total (paper-wt)"};
  for (int s = 0; s < svc::kServiceCount; ++s) {
    weighted_row.push_back(
        ana::fmt_pct(100.0 * weighted[static_cast<std::size_t>(s)] / w_total) +
        "%");
  }
  weighted_row.push_back("-");
  weighted_row.push_back(ana::fmt_pct(100.0 * w_any / w_total));
  table.add_row(std::move(weighted_row));
  table.print();

  std::printf(
      "\nPaper totals: DNS 1.4%%, NTP ~0%%, FTP 0.3%%, SSH 0.3%%, TELNET "
      "0.3%%, HTTP-80 2.4%%, TLS 0.3%%, HTTP-8080 6.7%%; overall 9.0%% of "
      "peripheries expose at least one service.\n"
      "Shape checks: CN Mobile broadband dominates (57.5%% in the paper), "
      "CN Unicom second (24.6%%), HTTP-8080 the largest single service, "
      "NTP concentrated in CenturyLink.\n");
  return 0;
}
