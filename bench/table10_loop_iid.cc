// Table X — IID analysis of last hops with the routing loop vulnerability
// (from the BGP-advertised-prefix sweep).
#include "bench/common.h"

int main() {
  using namespace xmap;
  bench::print_header(
      "Table X", "IID analysis of last hops with routing loop vulnerability");

  auto world = bench::make_bgp_world();
  auto loops = ana::run_loop_scan(world.net, world.internet, {}, {});

  ana::IidHistogram hist;
  for (const auto& loop : loops.confirmed) {
    // Skip infrastructure (ISP edge routers are ::1 low-byte anchors that
    // the paper's dataset also contains — keep them: the paper explicitly
    // reports manually-configured routers in this table).
    hist.add(loop.address);
  }

  const double paper[net::kIidStyleCount] = {18.0, 31.7, 2.4, 0.7, 46.7};
  ana::TextTable table{{"Class", "# num", "%", "paper %"}};
  for (int i = 0; i < net::kIidStyleCount; ++i) {
    const auto style = static_cast<net::IidStyle>(i);
    table.add_row({net::iid_style_name(style), ana::fmt_count(hist.of(style)),
                   ana::fmt_pct(ana::percent(hist.of(style), hist.total)),
                   ana::fmt_pct(paper[i])});
  }
  table.add_row({"Total", ana::fmt_count(hist.total), "100.0", "100.0"});
  table.print();

  std::printf(
      "\nShape check: unlike the periphery population (Table III), the "
      "loop-vulnerable set is heavy in Low-byte (manually configured "
      "routers) — the paper attributes those loops to manual route "
      "misconfiguration.\n");
  return 0;
}
