// Table XI — Results of peripheries with routing loops within each ISP
// (unique loop devices, same/diff /64 split against the triggering probe).
#include "bench/common.h"

int main() {
  using namespace xmap;
  bench::print_header("Table XI",
                      "Peripheries with routing loop within each ISP");

  auto world = bench::make_paper_world();

  ana::TextTable table{{"Cty", "Network", "ISP", "Loop last hops", "% same",
                        "% diff", "Ground-truth vulnerable"}};
  std::uint64_t total = 0, total_same = 0, total_truth = 0;
  for (std::size_t i = 0; i < world.internet.isps.size(); ++i) {
    const auto& isp = world.internet.isps[i];
    const int idx[] = {static_cast<int>(i)};
    auto loops = ana::run_loop_scan(world.net, world.internet, idx, {});

    std::uint64_t n = 0, same = 0;
    for (const auto& loop : loops.confirmed) {
      if (loop.address == isp.router->address()) continue;  // infrastructure
      ++n;
      if (loop.address.prefix64() == loop.probe_dst.prefix64()) ++same;
    }
    std::uint64_t truth = 0;
    for (const auto& dev : isp.devices) {
      if (dev.loop_wan || dev.loop_lan) ++truth;
    }

    table.add_row({isp.spec.country, isp.spec.network, isp.spec.name,
                   ana::fmt_count(n), ana::fmt_pct(ana::percent(same, n)),
                   ana::fmt_pct(ana::percent(n - same, n)),
                   ana::fmt_count(truth)});
    total += n;
    total_same += same;
    total_truth += truth;
  }
  table.add_row({"-", "-", "Total", ana::fmt_count(total),
                 ana::fmt_pct(ana::percent(total_same, total)),
                 ana::fmt_pct(ana::percent(total - total_same, total)),
                 ana::fmt_count(total_truth)});
  table.print();

  std::printf(
      "\nPaper totals: 5.79M loop peripheries, 4.9%% same / 95.1%% diff.\n"
      "Shape checks: CN broadband blocks carry nearly all loops (loops on "
      "the delegated LAN prefix -> diff); India's few loops are "
      "WAN-prefix loops -> same; US broadband loops are 100%% diff.\n");
  return 0;
}
