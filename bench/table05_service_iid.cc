// Table V — IID analysis of peripheries with alive application services.
#include "bench/common.h"

int main() {
  using namespace xmap;
  bench::print_header("Table V",
                      "IID analysis of peripheries with alive services");

  auto world = bench::make_paper_world();
  auto discoveries = bench::discover_all(world);

  std::vector<scan::LastHop> all_hops;
  for (const auto& entry : discoveries) {
    all_hops.insert(all_hops.end(), entry.result.last_hops.begin(),
                    entry.result.last_hops.end());
  }
  auto grabs = bench::grab_all(world, all_hops);

  ana::IidHistogram hist;
  for (const auto& hop : all_hops) {
    if (grabs.alive_by_addr.count(hop.address) != 0) hist.add(hop.address);
  }

  const double paper[net::kIidStyleCount] = {30.4, 0.3, 5.5, 0.2, 69.0};
  ana::TextTable table{{"Class", "# num", "%", "paper %"}};
  for (int i = 0; i < net::kIidStyleCount; ++i) {
    const auto style = static_cast<net::IidStyle>(i);
    table.add_row({net::iid_style_name(style), ana::fmt_count(hist.of(style)),
                   ana::fmt_pct(ana::percent(hist.of(style), hist.total)),
                   ana::fmt_pct(paper[i])});
  }
  table.add_row({"Total", ana::fmt_count(hist.total), "100.0", "100.0"});
  table.print();

  std::printf(
      "\nShape check: service-bearing peripheries skew towards EUI-64 and "
      "Randomized (the CPE styles); Low-byte/Byte-pattern nearly vanish.\n");
  return 0;
}
