// TCP-transport fail-over cost: the fabric_failover scenarios with every
// frame on a real socket. Three runs are timed — clean over TCP,
// kill-and-migrate (a worker killed mid-shard, heartbeat-timeout death,
// lease migration), and kill-and-reconnect (the worker's connection cut
// mid-frame by the chaos proxy; the rejoin handshake resumes the same
// lease with no failover) — and the deltas are what socket recovery costs
// end to end: TCP overhead itself (clean tcp / clean loopback), migration
// under a socket transport, and the much cheaper reconnect path.
//
// Byte identity is asserted before anything is reported: all three TCP
// merges must equal the loopback clean merge, and the reconnect run must
// show zero reassignments (a reconnect that quietly migrated is a failed
// measurement, not a fast one).
//
// XMAP_WINDOW_BITS overrides the world size; XMAP_REPS the repetitions
// (median reported, default 3). Emits BENCH_fabric_failover_tcp.json for
// tools/check_bench_regression.py.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "fabric/chaos_proxy.h"
#include "fabric/coordinator.h"
#include "fabric/tcp_transport.h"
#include "topology/paper_profiles.h"

namespace {

using namespace xmap;

fabric::FabricConfig make_config(int window_bits, bool tcp) {
  static const scan::IcmpEchoProbe module{64};
  fabric::FabricConfig cfg;
  cfg.world_specs = topo::paper::isp_specs();
  cfg.vendors = topo::paper::vendor_catalog();
  cfg.build.window_bits = window_bits;
  cfg.build.seed = 42;
  cfg.module = &module;
  cfg.scan.source = *net::Ipv6Address::parse("2001:500::1");
  cfg.scan.seed = 7;
  // Sim-paced slowly enough that checkpoints carry a nonzero stable
  // cursor (see fabric_failover.cc); sim time costs no wall clock.
  cfg.scan.probes_per_sec = 1000;
  cfg.nodes = 4;
  cfg.shards = 8;
  cfg.checkpoint_interval_targets = 64;
  if (tcp) cfg.transport = fabric::TransportKind::kTcp;
  return cfg;
}

std::string fingerprint(const fabric::FabricResult& result) {
  std::ostringstream out;
  for (const auto& rec : result.records) {
    out << rec.when << '|' << rec.response.responder.to_string() << '|'
        << rec.response.probe_dst.to_string() << '|' << rec.shard << '|'
        << rec.raw_slot << '\n';
  }
  return out.str();
}

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

}  // namespace

int main() {
  int window_bits = 8;
  if (const char* env = std::getenv("XMAP_WINDOW_BITS")) {
    window_bits = std::atoi(env);
  }
  int reps = 3;
  if (const char* env = std::getenv("XMAP_REPS")) reps = std::atoi(env);

  const std::uint64_t kill_slot = 3000;
  std::vector<double> clean_wall, migrate_wall, reconnect_wall;
  std::uint64_t reconnects = 0, bytes_on_wire = 0;

  auto loopback = fabric::run_fabric_scan(make_config(window_bits, false));
  if (!loopback.ok || loopback.failed) {
    std::fprintf(stderr, "loopback reference failed: %s\n",
                 loopback.error.c_str());
    return 1;
  }
  const std::string expect = fingerprint(loopback);

  for (int rep = 0; rep < reps; ++rep) {
    auto clean = fabric::run_fabric_scan(make_config(window_bits, true));
    if (!clean.ok || clean.failed || fingerprint(clean) != expect) {
      std::fprintf(stderr, "BYTE-IDENTITY VIOLATION: clean tcp run (rep %d): %s\n",
                   rep, clean.error.c_str());
      return 1;
    }
    clean_wall.push_back(clean.wall_seconds);
    bytes_on_wire = clean.bytes_sent + clean.bytes_received;

    auto mcfg = make_config(window_bits, true);
    mcfg.fabric_faults.kills.push_back(
        sim::FabricFaultPlan::Kill{1, kill_slot, /*close_transport=*/true});
    auto migrated = fabric::run_fabric_scan(mcfg);
    if (!migrated.ok || migrated.failed || fingerprint(migrated) != expect) {
      std::fprintf(stderr,
                   "BYTE-IDENTITY VIOLATION: kill+migrate tcp run (rep %d): "
                   "%s\n", rep, migrated.error.c_str());
      return 1;
    }
    migrate_wall.push_back(migrated.wall_seconds);

    // Kill-and-reconnect: node 1's link is cut mid-frame; the rejoin
    // handshake must land inside the heartbeat timeout and resume the
    // same lease.
    auto rcfg = make_config(window_bits, true);
    std::unique_ptr<fabric::ChaosProxy> proxy;
    rcfg.tcp_worker_tweak = [&proxy](int node,
                                     fabric::TcpWorkerOptions& opts) {
      if (node != 1) return;
      fabric::ChaosProxyOptions popts;
      popts.upstream = opts.connect_address;
      popts.cut_connection = 0;
      popts.cut_after_frames = 4;
      popts.cut_frame_bytes = 3;
      std::string error;
      proxy = fabric::ChaosProxy::create(std::move(popts), error);
      if (proxy == nullptr) {
        std::fprintf(stderr, "chaos proxy: %s\n", error.c_str());
        std::exit(1);
      }
      opts.connect_address = proxy->address();
    };
    auto reconnected = fabric::run_fabric_scan(rcfg);
    if (proxy != nullptr) proxy->stop();
    if (!reconnected.ok || reconnected.failed ||
        fingerprint(reconnected) != expect) {
      std::fprintf(stderr,
                   "BYTE-IDENTITY VIOLATION: kill+reconnect tcp run "
                   "(rep %d): %s\n", rep, reconnected.error.c_str());
      return 1;
    }
    if (reconnected.reassignments != 0 || reconnected.reconnects == 0) {
      std::fprintf(stderr,
                   "reconnect run degraded to failover (rep %d): "
                   "%llu reassignments, %llu reconnects\n", rep,
                   static_cast<unsigned long long>(reconnected.reassignments),
                   static_cast<unsigned long long>(reconnected.reconnects));
      return 1;
    }
    reconnect_wall.push_back(reconnected.wall_seconds);
    reconnects = reconnected.reconnects;
  }

  const double clean_s = median(clean_wall);
  const double migrate_s = median(migrate_wall);
  const double reconnect_s = median(reconnect_wall);
  const double tcp_overhead = clean_s / loopback.wall_seconds;

  std::printf("fabric fail-over over TCP (window_bits %d, 4 nodes, 8 "
              "shards, kill node 1 at slot %llu)\n", window_bits,
              static_cast<unsigned long long>(kill_slot));
  std::printf("  %-30s %8.3f s\n", "clean tcp wall (median)", clean_s);
  std::printf("  %-30s %8.2fx\n", "tcp/loopback clean ratio", tcp_overhead);
  std::printf("  %-30s %8.3f s\n", "kill+migrate wall (median)", migrate_s);
  std::printf("  %-30s %8.3f s\n", "kill+reconnect wall (median)",
              reconnect_s);
  std::printf("  %-30s %8.2fx\n", "migrate ratio", migrate_s / clean_s);
  std::printf("  %-30s %8.2fx\n", "reconnect ratio", reconnect_s / clean_s);
  std::printf("  %-30s %8llu\n", "stream bytes (clean run)",
              static_cast<unsigned long long>(bytes_on_wire));
  std::printf("  %-30s %8llu\n", "rejoins in reconnect run",
              static_cast<unsigned long long>(reconnects));
  std::printf("  byte-identity: OK (%d reps, all three scenarios)\n", reps);

  bench::BenchJson json("fabric_failover_tcp");
  json.add("clean_tcp_wall_seconds", clean_s, "s",
           /*higher_is_better=*/false);
  json.add("migrate_wall_seconds", migrate_s, "s",
           /*higher_is_better=*/false);
  json.add("reconnect_wall_seconds", reconnect_s, "s",
           /*higher_is_better=*/false);
  json.add("reconnect_ratio", reconnect_s / clean_s, "x",
           /*higher_is_better=*/false);
  json.write();
  return 0;
}
