// Baseline comparison (Related Work / §III) — XMap's one-probe-per-
// delegation discovery vs traceroute-based periphery discovery (Rye &
// Beverly, PAM'20 — the paper's closest prior technique, which walks the
// whole path to every target).
//
// Both techniques run against the same blocks; the comparison is probes
// spent, peripheries found, and incidental infrastructure addresses
// collected along the way.
#include <set>

#include "bench/common.h"
#include "xmap/traceroute.h"

int main() {
  using namespace xmap;
  bench::print_header(
      "Baseline", "XMap sub-prefix probing vs traceroute periphery discovery");

  auto world = bench::make_paper_world();
  // Two contrasting blocks: a CPE broadband block and a UE mobile block.
  const int kBlocks[] = {5 /*AT&T broadband*/, 14 /*CN Mobile mobile*/};

  ana::TextTable table{{"Block", "Technique", "Probes", "Peripheries found",
                        "Extra infra addrs", "Probes/periphery"}};

  for (int index : kBlocks) {
    const auto& isp = world.internet.isps[static_cast<std::size_t>(index)];
    std::set<net::Ipv6Address> truth;
    for (const auto& dev : isp.devices) truth.insert(dev.address);

    // --- XMap: one echo probe per delegation slot (two parities). --------
    {
      const int idx[] = {index};
      auto discovery =
          ana::run_discovery_scan(world.net, world.internet, idx, {});
      std::size_t found = 0, infra = 0;
      for (const auto& hop : discovery.last_hops) {
        if (truth.count(hop.address) != 0) {
          ++found;
        } else {
          ++infra;
        }
      }
      table.add_row({bench::isp_label(isp.spec), "XMap /a-b probing",
                     ana::fmt_count(discovery.stats.sent),
                     ana::fmt_count(found), ana::fmt_count(infra),
                     found > 0 ? ana::fmt_double(
                                     static_cast<double>(discovery.stats.sent) /
                                     static_cast<double>(found))
                               : "-"});
    }

    // --- Traceroute baseline: hop-walk every slot's probe address. --------
    {
      scan::TracerouteRunner::Config cfg;
      cfg.source = *net::Ipv6Address::parse("2001:501::1");
      cfg.seed = 15;
      cfg.max_hops = 8;
      auto* runner = world.net.make_node<scan::TracerouteRunner>(cfg);
      const int iface = topo::attach_vantage(
          world.net, world.internet, runner,
          *net::Ipv6Prefix::parse("2001:501::/48"));
      runner->set_iface(iface);

      scan::TargetSpec spec{isp.scan_base, isp.window_lo, isp.window_hi};
      const std::uint64_t slots = spec.count().to_u64();
      for (std::uint64_t i = 0; i < slots; ++i) {
        runner->trace(spec.nth_address(net::Uint128{i}, cfg.seed));
      }
      world.net.run();

      std::set<net::Ipv6Address> found_addrs, infra_addrs;
      for (const auto& result : runner->results()) {
        for (const auto& hop : result.hops) {
          if (truth.count(hop.router) != 0) {
            found_addrs.insert(hop.router);
          } else {
            infra_addrs.insert(hop.router);
          }
        }
      }
      const std::uint64_t probes =
          slots * static_cast<std::uint64_t>(cfg.max_hops);
      table.add_row(
          {"", "traceroute (PAM'20)", ana::fmt_count(probes),
           ana::fmt_count(found_addrs.size()),
           ana::fmt_count(infra_addrs.size()),
           found_addrs.empty()
               ? "-"
               : ana::fmt_double(static_cast<double>(probes) /
                                 static_cast<double>(found_addrs.size()))});
    }
  }
  table.print();

  std::printf(
      "\nShape check (paper §VIII): traceroute also reaches the periphery "
      "but spends max_hops probes per target and mixes in transit-router "
      "addresses; sub-prefix probing is ~1 probe per delegation (2 with the "
      "parity workaround) and returns periphery addresses almost "
      "exclusively.\n");
  return 0;
}
