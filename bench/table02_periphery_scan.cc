// Table II — Results of periphery scanning for one sample IPv6 block within
// each ISP: unique last hops, same/diff /64 split, distinct /64 prefixes,
// EUI-64 addresses and unique embedded MACs.
#include <set>

#include "bench/common.h"

int main() {
  using namespace xmap;
  bench::print_header("Table II",
                      "Results of periphery scanning per sample IPv6 block");

  auto world = bench::make_paper_world();
  auto discoveries = bench::discover_all(world);

  ana::TextTable table{{"Cty", "Network", "ISP", "Scan range (paper)",
                        "Last hops", "% same", "% diff", "/64 uniq", "%",
                        "EUI-64", "%", "MAC uniq", "%"}};

  std::uint64_t total_hops = 0, total_same = 0, total_64 = 0, total_eui = 0,
                 total_mac = 0, total_mac_uniq = 0;
  // Paper-weighted totals: per-block proportions weighted by the paper's
  // per-block last-hop counts, correcting for the scaled windows changing
  // the cross-block population ratios.
  double w_total = 0, w_same = 0, w_64 = 0, w_eui = 0, w_macu = 0;

  for (const auto& entry : discoveries) {
    const auto& isp = world.internet.isps[static_cast<std::size_t>(entry.index)];
    const auto& hops = entry.result.last_hops;

    std::uint64_t same = 0, eui = 0;
    std::set<std::uint64_t> prefixes64;
    std::set<net::MacAddress> macs;
    std::uint64_t mac_total = 0;
    for (const auto& hop : hops) {
      if (hop.same_prefix64()) ++same;
      prefixes64.insert(hop.address.prefix64());
      if (auto mac = net::MacAddress::from_eui64_iid(hop.address.iid())) {
        ++eui;
        ++mac_total;
        macs.insert(*mac);
      }
    }
    const auto n = static_cast<std::uint64_t>(hops.size());
    table.add_row(
        {isp.spec.country, isp.spec.network, isp.spec.name,
         isp.spec.paper_range, ana::fmt_count(n),
         ana::fmt_pct(ana::percent(same, n)),
         ana::fmt_pct(ana::percent(n - same, n)),
         ana::fmt_count(prefixes64.size()),
         ana::fmt_pct(ana::percent(prefixes64.size(), n)),
         ana::fmt_count(eui), ana::fmt_pct(ana::percent(eui, n)),
         ana::fmt_count(macs.size()),
         ana::fmt_pct(ana::percent(macs.size(), mac_total))});

    total_hops += n;
    total_same += same;
    total_64 += prefixes64.size();
    total_eui += eui;
    total_mac += mac_total;
    total_mac_uniq += macs.size();

    const double w = isp.spec.paper_hops;
    w_total += w;
    if (n > 0) {
      w_same += w * static_cast<double>(same) / static_cast<double>(n);
      w_64 += w * static_cast<double>(prefixes64.size()) /
              static_cast<double>(n);
      w_eui += w * static_cast<double>(eui) / static_cast<double>(n);
      if (mac_total > 0) {
        w_macu += w * static_cast<double>(macs.size()) /
                  static_cast<double>(mac_total);
      } else {
        w_macu += w;
      }
    }
  }

  table.add_row({"-", "-", "Total", "-", ana::fmt_count(total_hops),
                 ana::fmt_pct(ana::percent(total_same, total_hops)),
                 ana::fmt_pct(ana::percent(total_hops - total_same, total_hops)),
                 ana::fmt_count(total_64),
                 ana::fmt_pct(ana::percent(total_64, total_hops)),
                 ana::fmt_count(total_eui),
                 ana::fmt_pct(ana::percent(total_eui, total_hops)),
                 ana::fmt_count(total_mac_uniq),
                 ana::fmt_pct(ana::percent(total_mac_uniq, total_mac))});
  table.add_row({"-", "-", "Total (paper-wt)", "-", "-",
                 ana::fmt_pct(100.0 * w_same / w_total),
                 ana::fmt_pct(100.0 * (w_total - w_same) / w_total), "-",
                 ana::fmt_pct(100.0 * w_64 / w_total), "-",
                 ana::fmt_pct(100.0 * w_eui / w_total), "-",
                 ana::fmt_pct(100.0 * w_macu / w_total)});
  table.print();

  std::printf(
      "\nPaper totals (52.5M last hops): 77.2%% same / 22.8%% diff, 99.3%% "
      "unique /64, 7.6%% EUI-64, 96.5%% unique MACs.\n"
      "Shape checks: India+mobile blocks same-dominated, US/CN broadband "
      "diff-dominated; Comcast ~95%% EUI-64, Unicom ~53%%, Jio ~1.4%%.\n");
  return 0;
}
