// Observability overhead: cost of the parallel engine and of the
// distributed fabric with the obs subsystem off, with metrics only, and
// with tracing. The acceptance target is that metrics-on costs < 2% over
// the no-obs baseline — disabled sinks reduce to a null-pointer test per
// would-be event, the metrics hot path is a pre-resolved uint64 increment,
// and the RTT send-time bookkeeping it enables sits in an open-addressed
// flat table (netbase/flat_hash64.h). The fabric section additionally pays
// obs-chunk shipping (trace/metrics frames ride the reliable channel
// before ShardDone) and, in the deployment-trace mode, a mutex-guarded
// span per protocol event — both off the packet hot path, so the same bar
// applies.
//
// Measurement: shared machines drift (thermal, neighbors), so a raw
// wall-clock A/B cannot resolve 2%. The bar is therefore enforced on
// process-CPU time with an ABBA design: each rep runs the modes in
// alternating order (forward on even reps, reversed on odd), and
// consecutive reps' no-obs/metrics CPU ratios are combined geometrically,
// which cancels both slow drift and the run-position effect (a null
// experiment pairing two identical modes showed the second run of a cycle
// costing ~4% more CPU — allocator and page-cache heat). The median of the
// combined ratios shrugs off spikes. Wall-clock is still reported for the
// human-readable table and the regression-checker JSON.
//
// The trace columns also report event volume, the knob that actually
// drives their cost.
//
// Emits BENCH_observability_overhead.json for
// tools/check_bench_regression.py. With XMAP_ENFORCE_OBS_BAR=1 (the
// perf-smoke CI job) the bar is enforced: exit 1 when either engine or
// fabric metrics-on exceeds XMAP_OBS_BAR_PCT (default 2%) over its no-obs
// baseline.
//
// XMAP_SEED overrides the world seed; XMAP_REPS the repetitions (default 5);
// XMAP_WINDOW_BITS the world size (default: engine 10, fabric 8 — the 2%
// bar wants 12+, long enough to amortize the scheduler quantum).
#include <algorithm>
#include <cmath>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "engine/executor.h"
#include "fabric/coordinator.h"
#include "topology/paper_profiles.h"

namespace {

using namespace xmap;

struct Mode {
  const char* name;
  obs::TraceLevel level;
  bool metrics;
  bool fabric_trace = false;  // fabric section: deployment span tree too
};

struct Outcome {
  double wall_seconds = 0;
  double cpu_seconds = 0;  // process CPU, all threads — the paired measure
  std::size_t events = 0;
};

double cpu_now() {
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

Outcome run_engine_once(const Mode& mode, int window_bits,
                        std::uint64_t seed) {
  static const scan::IcmpEchoProbe module{64};
  engine::EngineConfig cfg;
  cfg.world_specs = topo::paper::isp_specs();
  cfg.vendors = topo::paper::vendor_catalog();
  cfg.build.window_bits = window_bits;
  cfg.build.seed = seed;
  cfg.module = &module;
  cfg.scan.source = *net::Ipv6Address::parse("2001:500::1");
  cfg.scan.seed = seed ^ 0x5eed;
  cfg.scan.probes_per_sec = 1e9;  // unthrottled: measure engine cost
  cfg.threads = 4;
  cfg.obs.trace_level = mode.level;
  cfg.obs.metrics = mode.metrics;
  const double cpu0 = cpu_now();
  auto result = engine::run_parallel_scan(cfg);
  if (!result.ok) {
    std::fprintf(stderr, "engine error: %s\n", result.error.c_str());
    std::exit(1);
  }
  return {result.wall_seconds, cpu_now() - cpu0, result.trace.size()};
}

Outcome run_fabric_once(const Mode& mode, int window_bits,
                        std::uint64_t seed) {
  static const scan::IcmpEchoProbe module{64};
  fabric::FabricConfig cfg;
  cfg.world_specs = topo::paper::isp_specs();
  cfg.vendors = topo::paper::vendor_catalog();
  cfg.build.window_bits = window_bits;
  cfg.build.seed = seed;
  cfg.module = &module;
  cfg.scan.source = *net::Ipv6Address::parse("2001:500::1");
  cfg.scan.seed = seed ^ 0x5eed;
  cfg.scan.probes_per_sec = 1e9;  // unthrottled: measure fabric cost
  cfg.nodes = 4;
  cfg.shards = 8;
  cfg.obs.trace_level = mode.level;
  cfg.obs.metrics = mode.metrics;
  cfg.fabric_trace = mode.fabric_trace;
  const double cpu0 = cpu_now();
  auto result = fabric::run_fabric_scan(cfg);
  if (!result.ok || result.failed) {
    std::fprintf(stderr, "fabric error: %s\n", result.error.c_str());
    std::exit(1);
  }
  return {result.wall_seconds, cpu_now() - cpu0,
          result.trace.size() + result.fabric_spans.size()};
}

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

struct Section {
  double off_wall_min = 0;      // no-obs baseline, min of reps
  double metrics_wall_min = 0;  // metrics-on, min of reps
  double metrics_overhead_pct = 0;  // median paired CPU ratio - 1
};

// Runs every mode `reps` times, interleaved so machine drift lands on all
// modes alike: forward mode order on even reps, reversed on odd (the ABBA
// counterbalance). modes[0] must be the no-obs baseline and modes[1] the
// metrics-on variant; consecutive reps then give one drift- and
// position-cancelled CPU overhead ratio each. The table shows wall-clock
// min-of-reps, the noise-floor estimator.
template <typename RunOnce>
Section run_section(const char* title, RunOnce&& run_once,
                    const std::vector<Mode>& modes, int window_bits,
                    std::uint64_t seed, int reps) {
  std::vector<std::vector<Outcome>> runs{modes.size()};
  for (std::size_t m = 0; m < modes.size(); ++m) {
    runs[m].resize(static_cast<std::size_t>(reps));
  }
  for (int r = 0; r < reps; ++r) {
    for (std::size_t i = 0; i < modes.size(); ++i) {
      const std::size_t m = r % 2 == 0 ? i : modes.size() - 1 - i;
      runs[m][static_cast<std::size_t>(r)] =
          run_once(modes[m], window_bits, seed);
    }
  }
  std::printf("\n%s (window_bits %d, wall min of %d interleaved reps)\n",
              title, window_bits, reps);
  std::printf("%-24s %10s %10s %12s\n", "mode", "wall_s", "overhead",
              "trace_events");
  Section section;
  for (std::size_t m = 0; m < modes.size(); ++m) {
    double wall_min = runs[m].front().wall_seconds;
    for (const Outcome& o : runs[m]) {
      wall_min = std::min(wall_min, o.wall_seconds);
    }
    if (m == 0) section.off_wall_min = wall_min;
    if (m == 1) section.metrics_wall_min = wall_min;
    const double overhead =
        section.off_wall_min > 0
            ? 100.0 * (wall_min / section.off_wall_min - 1.0)
            : 0.0;
    std::printf("%-24s %10.3f %+9.1f%% %12zu\n", modes[m].name, wall_min,
                overhead, runs[m].front().events);
  }
  // One combined ratio per (even, odd) rep pair: the even rep ran
  // off-before-metrics, the odd rep metrics-before-off, so the geometric
  // mean of the two per-rep ratios cancels the run-position bias.
  std::vector<double> ratios;
  for (int r = 0; r + 1 < reps; r += 2) {
    const auto ratio_at = [&](int rep) {
      const double off = runs[0][static_cast<std::size_t>(rep)].cpu_seconds;
      const double met = runs[1][static_cast<std::size_t>(rep)].cpu_seconds;
      return off > 0 ? met / off : 1.0;
    };
    ratios.push_back(std::sqrt(ratio_at(r) * ratio_at(r + 1)));
  }
  if (ratios.empty() && reps > 0) {  // single rep: position-biased fallback
    const double off = runs[0][0].cpu_seconds;
    if (off > 0) ratios.push_back(runs[1][0].cpu_seconds / off);
  }
  if (!ratios.empty()) {
    section.metrics_overhead_pct = 100.0 * (median(ratios) - 1.0);
  }
  return section;
}

}  // namespace

int main() {
  const std::uint64_t seed = bench::seed_from_env();
  const char* reps_env = std::getenv("XMAP_REPS");
  const int reps = reps_env != nullptr ? std::max(1, std::atoi(reps_env)) : 5;
  const int engine_bits = bench::window_bits_from_env(10);
  const int fabric_bits = bench::window_bits_from_env(8);

  std::printf("observability overhead (paper world, 4 workers/nodes)\n");
  std::printf("hardware threads: %u\n", std::thread::hardware_concurrency());

  const std::vector<Mode> engine_modes = {
      {"no obs", obs::TraceLevel::kOff, false},
      {"level off + metrics", obs::TraceLevel::kOff, true},
      {"level scan + metrics", obs::TraceLevel::kScan, true},
      {"level packet + metrics", obs::TraceLevel::kPacket, true},
  };
  const Section engine = run_section("engine", run_engine_once, engine_modes,
                                     engine_bits, seed, reps);

  // Fabric: the same scan through the coordinator/worker protocol. The
  // trace rows pay obs-chunk shipping; the last row adds the deployment
  // span tree (fabric_trace) on top.
  const std::vector<Mode> fabric_modes = {
      {"no obs", obs::TraceLevel::kOff, false},
      {"level off + metrics", obs::TraceLevel::kOff, true},
      {"level scan + metrics", obs::TraceLevel::kScan, true},
      {"scan + fabric trace", obs::TraceLevel::kScan, true,
       /*fabric_trace=*/true},
  };
  const Section fabric = run_section("fabric (4 nodes, 8 shards)",
                                     run_fabric_once, fabric_modes,
                                     fabric_bits, seed, reps);

  bench::BenchJson json("observability_overhead");
  json.add("engine_off_wall_seconds", engine.off_wall_min, "s",
           /*higher_is_better=*/false);
  json.add("engine_metrics_wall_seconds", engine.metrics_wall_min, "s",
           /*higher_is_better=*/false);
  json.add("fabric_off_wall_seconds", fabric.off_wall_min, "s",
           /*higher_is_better=*/false);
  json.add("fabric_metrics_wall_seconds", fabric.metrics_wall_min, "s",
           /*higher_is_better=*/false);
  json.write();

  std::printf("\nmetrics-on overhead (median paired CPU): engine %+.2f%%, "
              "fabric %+.2f%%\n",
              engine.metrics_overhead_pct, fabric.metrics_overhead_pct);

  const char* enforce = std::getenv("XMAP_ENFORCE_OBS_BAR");
  if (enforce != nullptr && enforce[0] == '1') {
    double bar_pct = 2.0;
    if (const char* bar = std::getenv("XMAP_OBS_BAR_PCT")) {
      bar_pct = std::atof(bar);
    }
    bool failed = false;
    for (const auto& [name, pct] :
         {std::pair<const char*, double>{"engine",
                                         engine.metrics_overhead_pct},
          std::pair<const char*, double>{"fabric",
                                         fabric.metrics_overhead_pct}}) {
      if (pct > bar_pct) {
        std::fprintf(stderr,
                     "OBS OVERHEAD BAR EXCEEDED: %s metrics-on %+.2f%% > "
                     "%.2f%% over the no-obs baseline\n",
                     name, pct, bar_pct);
        failed = true;
      }
    }
    if (failed) return 1;
    std::printf("obs overhead bar: OK (< %.2f%%)\n", bar_pct);
  }
  return 0;
}
