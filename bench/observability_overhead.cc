// Observability overhead: wall-clock of the parallel engine with the obs
// subsystem off, with metrics only, with scan-level tracing, and with
// packet-level tracing. The acceptance target is "--trace-level off" costs
// < 2% over the no-obs baseline — disabled sinks reduce to a null-pointer
// test per would-be event, so the off column measures exactly that. The
// trace columns also report event volume, the knob that actually drives
// their cost.
//
// XMAP_SEED overrides the world seed; XMAP_REPS the repetitions (median
// reported, default 5).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "engine/executor.h"
#include "topology/paper_profiles.h"

namespace {

using namespace xmap;

struct Mode {
  const char* name;
  obs::TraceLevel level;
  bool metrics;
};

struct Outcome {
  double wall_seconds = 0;
  std::size_t events = 0;
  std::uint64_t sent = 0;
};

Outcome run_once(const Mode& mode, int window_bits, std::uint64_t seed) {
  static const scan::IcmpEchoProbe module{64};
  engine::EngineConfig cfg;
  cfg.world_specs = topo::paper::isp_specs();
  cfg.vendors = topo::paper::vendor_catalog();
  cfg.build.window_bits = window_bits;
  cfg.build.seed = seed;
  cfg.module = &module;
  cfg.scan.source = *net::Ipv6Address::parse("2001:500::1");
  cfg.scan.seed = seed ^ 0x5eed;
  cfg.scan.probes_per_sec = 1e9;  // unthrottled: measure engine cost
  cfg.threads = 4;
  cfg.obs.trace_level = mode.level;
  cfg.obs.metrics = mode.metrics;
  auto result = engine::run_parallel_scan(cfg);
  if (!result.ok) {
    std::fprintf(stderr, "engine error: %s\n", result.error.c_str());
    std::exit(1);
  }
  return {result.wall_seconds, result.trace.size(), result.stats.sent};
}

Outcome run_median(const Mode& mode, int window_bits, std::uint64_t seed,
                   int reps) {
  std::vector<Outcome> runs;
  runs.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    runs.push_back(run_once(mode, window_bits, seed));
  }
  std::sort(runs.begin(), runs.end(), [](const Outcome& a, const Outcome& b) {
    return a.wall_seconds < b.wall_seconds;
  });
  return runs[runs.size() / 2];
}

}  // namespace

int main() {
  const char* seed_env = std::getenv("XMAP_SEED");
  const std::uint64_t seed =
      seed_env != nullptr ? static_cast<std::uint64_t>(std::atoll(seed_env))
                          : 2020;
  const char* reps_env = std::getenv("XMAP_REPS");
  const int reps = reps_env != nullptr ? std::max(1, std::atoi(reps_env)) : 5;
  constexpr int kWindowBits = 10;

  const Mode modes[] = {
      {"no obs", obs::TraceLevel::kOff, false},
      {"level off + metrics", obs::TraceLevel::kOff, true},
      {"level scan + metrics", obs::TraceLevel::kScan, true},
      {"level packet + metrics", obs::TraceLevel::kPacket, true},
  };

  std::printf("observability overhead (paper world, 4 workers, median of "
              "%d)\n",
              reps);
  std::printf("hardware threads: %u, window_bits: %d\n",
              std::thread::hardware_concurrency(), kWindowBits);
  std::printf("%-24s %10s %10s %12s\n", "mode", "wall_s", "overhead",
              "trace_events");

  double baseline = 0;
  for (const Mode& mode : modes) {
    const Outcome o = run_median(mode, kWindowBits, seed, reps);
    if (baseline == 0) baseline = o.wall_seconds;
    const double overhead =
        baseline > 0 ? 100.0 * (o.wall_seconds / baseline - 1.0) : 0.0;
    std::printf("%-24s %10.3f %+9.1f%% %12zu\n", mode.name, o.wall_seconds,
                overhead, o.events);
  }
  return 0;
}
