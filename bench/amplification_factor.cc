// Section VI-A / Figure 4 — Routing-loop amplification: the victim link
// carries ~(255 - n) copies of each attacker packet; a source spoofed into
// another not-used prefix makes the Time Exceeded reply loop as well.
#include "analysis/report.h"
#include "loopattack/attack_lab.h"

int main() {
  using namespace xmap;
  std::printf("\n=== Amplification factor (Section VI-A, Figure 4) ===\n\n");

  // Sweep attacker distance (hops before the ISP router).
  ana::TextTable distance{{"Transit hops n", "Link packets / attacker pkt",
                           "Amplification", "Paper bound 255-n"}};
  for (int hops : {0, 1, 2, 4, 8, 16, 32}) {
    atk::AttackLabConfig cfg;
    cfg.transit_hops = hops;
    atk::AttackLab lab{cfg};
    const auto result = lab.attack(255);
    distance.add_row({std::to_string(hops),
                      ana::fmt_count(result.access_link_packets),
                      ana::fmt_double(result.amplification()),
                      std::to_string(255 - hops - 1)});
  }
  distance.print();

  // Sweep the crafted hop limit.
  std::printf("\nHop-limit sweep (1 transit hop):\n");
  ana::TextTable hl_table{{"Crafted hop limit", "Link packets",
                           "Amplification"}};
  for (int hl : {32, 64, 128, 255}) {
    atk::AttackLab lab{atk::AttackLabConfig{}};
    const auto result = lab.attack(static_cast<std::uint8_t>(hl));
    hl_table.add_row({std::to_string(hl),
                      ana::fmt_count(result.access_link_packets),
                      ana::fmt_double(result.amplification())});
  }
  hl_table.print();

  // Variants.
  std::printf("\nVariants (hop limit 255, 1 transit hop):\n");
  ana::TextTable variants{{"Variant", "Link packets", "Amplification"}};
  {
    atk::AttackLab lab{atk::AttackLabConfig{}};
    const auto plain = lab.attack(255);
    variants.add_row({"LAN not-used prefix",
                      ana::fmt_count(plain.access_link_packets),
                      ana::fmt_double(plain.amplification())});
    const auto wan = lab.attack(255, 1, /*target_wan=*/true);
    variants.add_row({"NX WAN address",
                      ana::fmt_count(wan.access_link_packets),
                      ana::fmt_double(wan.amplification())});
    const auto spoofed = lab.attack(255, 1, false, /*spoof_inside_lan=*/true);
    variants.add_row({"spoofed src in another not-used /64",
                      ana::fmt_count(spoofed.access_link_packets),
                      ana::fmt_double(spoofed.amplification())});
  }
  {
    atk::AttackLabConfig cfg;
    cfg.cpe_loop_cap = 20;
    atk::AttackLab lab{cfg};
    const auto capped = lab.attack(255);
    variants.add_row({"loop-capped firmware (cap 20)",
                      ana::fmt_count(capped.access_link_packets),
                      ana::fmt_double(capped.amplification())});
  }
  {
    atk::AttackLab lab{atk::AttackLabConfig{}};
    lab.patch_cpe();
    const auto patched = lab.attack(255);
    variants.add_row({"patched CPE (RFC 7084 unreachable route)",
                      ana::fmt_count(patched.access_link_packets),
                      ana::fmt_double(patched.amplification())});
  }
  variants.print();

  // Sustained attack: bandwidth multiplication on a shaped access link.
  std::printf("\nSustained attack, 100 packets:\n");
  atk::AttackLab lab{atk::AttackLabConfig{}};
  const auto burst = lab.attack(255, 100);
  std::printf("  attacker sent 100 packets; victim link carried %llu packets "
              "(%llu bytes) -> %.1fx amplification.\n",
              static_cast<unsigned long long>(burst.access_link_packets),
              static_cast<unsigned long long>(burst.access_link_bytes),
              burst.amplification());
  std::printf("\nPaper claim: amplification factor > 200 (and ~2x more with "
              "spoofed sources).\n");
  return burst.amplification() > 200.0 ? 0 : 1;
}
