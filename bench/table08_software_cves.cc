// Table VIII — Top software version families and device numbers of the
// crucial services, with the CVE exposure counts the paper reports.
#include "analysis/software_db.h"
#include "bench/common.h"

int main() {
  using namespace xmap;
  bench::print_header(
      "Table VIII",
      "Top software version and device number of crucial services");

  auto world = bench::make_paper_world();
  auto discoveries = bench::discover_all(world);

  std::vector<scan::LastHop> all_hops;
  for (const auto& entry : discoveries) {
    all_hops.insert(all_hops.end(), entry.result.last_hops.begin(),
                    entry.result.last_hops.end());
  }
  auto grabs = bench::grab_all(world, all_hops);

  // service -> family -> (count, cves, year)
  struct FamilyStats {
    std::uint64_t devices = 0;
    int cves = 0;
    int year = 0;
  };
  std::map<int, std::map<std::string, FamilyStats>> stats;
  for (const auto& grab : grabs.all) {
    if (!grab.alive || !grab.software) continue;
    const auto family = ana::classify_software(*grab.software);
    auto& entry = stats[static_cast<int>(grab.kind)][family.family];
    ++entry.devices;
    entry.cves = family.cve_count;
    entry.year = family.release_year;
  }

  ana::TextTable table{{"Service", "Software family", "# devices", "# CVE",
                        "~release year"}};
  for (const auto& [kind_int, families] : stats) {
    const auto kind = static_cast<svc::ServiceKind>(kind_int);
    // Order families by device count.
    std::vector<std::pair<std::string, FamilyStats>> ordered(families.begin(),
                                                             families.end());
    std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
      return a.second.devices > b.second.devices;
    });
    bool first = true;
    for (const auto& [family, fs] : ordered) {
      table.add_row({first ? svc::service_name(kind) : "",
                     family, ana::fmt_count(fs.devices),
                     fs.cves > 0 ? std::to_string(fs.cves) : "-",
                     fs.year > 0 ? std::to_string(fs.year) : "-"});
      first = false;
    }
  }
  table.print();

  std::printf(
      "\nPaper highlights: dnsmasq-2.4x on 142k DNS devices (16 CVEs, "
      "released ~8 years before measurement); Jetty dominates HTTP-8080 "
      "(3.5M, 24 HTTP CVEs); dropbear 0.4x on 112k SSH devices; openssh 3.5 "
      "from 2002 still deployed (74 CVEs); FTP fleets on GNU Inetutils "
      "1.4.1 / FreeBSD 6.00ls / vsftpd (3 CVEs).\n");
  return 0;
}
