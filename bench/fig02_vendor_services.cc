// Figure 2 — Results of top 10 periphery device vendors with exposed
// services: per-vendor device counts with at least one alive service, and
// the per-service mix, rendered as a text chart.
#include "bench/common.h"

int main() {
  using namespace xmap;
  bench::print_header("Figure 2",
                      "Top 10 periphery device vendors with exposed services");

  auto world = bench::make_paper_world();
  auto discoveries = bench::discover_all(world);
  std::vector<scan::LastHop> all_hops;
  for (const auto& entry : discoveries) {
    all_hops.insert(all_hops.end(), entry.result.last_hops.begin(),
                    entry.result.last_hops.end());
  }
  auto grabs = bench::grab_all(world, all_hops);

  // vendor -> per-service counts and any-service device count.
  std::map<std::string, std::map<int, std::uint64_t>> per_vendor_service;
  ana::Counter devices_with_services;
  for (const auto& hop : all_hops) {
    auto it = grabs.alive_by_addr.find(hop.address);
    if (it == grabs.alive_by_addr.end()) continue;
    const std::string vendor =
        bench::identify_vendor(hop.address, world.internet.oui, &grabs);
    if (vendor.empty()) continue;
    devices_with_services.add(vendor);
    for (const ana::GrabResult* grab : it->second) {
      ++per_vendor_service[vendor][static_cast<int>(grab->kind)];
    }
  }

  const auto top = devices_with_services.top(10);
  ana::TextTable table{{"Vendor", "devices", "DNS", "NTP", "FTP", "SSH",
                        "TELNET", "HTTP-80", "TLS", "HTTP-8080"}};
  for (const auto& [vendor, count] : top) {
    std::vector<std::string> row{vendor, ana::fmt_count(count)};
    for (int s = 0; s < svc::kServiceCount; ++s) {
      row.push_back(ana::fmt_count(per_vendor_service[vendor][s]));
    }
    table.add_row(std::move(row));
  }
  table.print();

  // Stacked-fraction text bars (the figure's visual).
  std::printf("\nService mix per vendor (fraction of that vendor's alive "
              "service instances):\n");
  for (const auto& [vendor, count] : top) {
    std::uint64_t total = 0;
    for (const auto& [s, n] : per_vendor_service[vendor]) total += n;
    std::printf("  %-14s |", vendor.c_str());
    static const char kGlyph[svc::kServiceCount] = {'D', 'N', 'F', 'S',
                                                    'T', 'H', 'L', '8'};
    for (int s = 0; s < svc::kServiceCount; ++s) {
      const auto n = per_vendor_service[vendor][s];
      const int cells =
          static_cast<int>(40.0 * static_cast<double>(n) /
                           static_cast<double>(total == 0 ? 1 : total));
      for (int c = 0; c < cells; ++c) std::printf("%c", kGlyph[s]);
    }
    std::printf("|\n");
  }
  std::printf("  legend: D=DNS N=NTP F=FTP S=SSH T=TELNET H=HTTP-80 L=TLS "
              "8=HTTP-8080\n");

  std::printf(
      "\nPaper: top vendors China Mobile, Fiberhome, Youhua Tech, China "
      "Unicom, ZTE, StarNet, Skyworth, AVM, TP-Link, Hitron; China Mobile "
      "devices dominated by HTTP-8080/HTTP-80/DNS, StarNet exposes only "
      "HTTP-8080, Youhua exposes everything except NTP.\n");
  return 0;
}
