// Table I — Inferred IPv6 sub-prefix length for end-users of target ISPs.
//
// Runs the Section IV-A bit-walk inference against every simulated block and
// compares the inferred delegation length with the block's ground truth
// (which is calibrated to the paper's Table I).
#include "bench/common.h"

int main() {
  using namespace xmap;
  bench::print_header(
      "Table I", "Inferred IPv6 sub-prefix length for end-users of target ISPs");

  auto world = bench::make_paper_world();

  ana::TextTable table{{"Country", "Network", "ISP", "ASN", "Paper block",
                        "Paper len", "Inferred len", "Witnesses", "Probes",
                        "Match"}};
  int matches = 0;
  for (std::size_t i = 0; i < world.internet.isps.size(); ++i) {
    const auto& isp = world.internet.isps[i];
    const auto inference = ana::infer_subnet_length(
        world.net, world.internet, static_cast<int>(i), {});
    const bool match =
        inference.ok && inference.inferred_len == isp.spec.delegated_len;
    matches += match ? 1 : 0;
    table.add_row({isp.spec.country, isp.spec.network, isp.spec.name,
                   std::to_string(isp.spec.asn), isp.spec.paper_block,
                   std::to_string(isp.spec.delegated_len),
                   inference.ok ? std::to_string(inference.inferred_len)
                                : std::string{"-"},
                   std::to_string(inference.witnesses),
                   std::to_string(inference.probes), match ? "yes" : "NO"});
  }
  table.print();
  std::printf("\nInference matched ground truth on %d/%zu blocks.\n", matches,
              world.internet.isps.size());
  std::printf("Paper: all 12 ISPs assign prefixes of length at most 64 "
              "(/56, /60 or /64 per block).\n");
  return matches == static_cast<int>(world.internet.isps.size()) ? 0 : 1;
}
