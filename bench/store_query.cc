// Store query-service throughput: N reader threads hammering one shared,
// immutable results-store snapshot with point lookups.
//
// The acceptance target for the store subsystem: >= 1M point lookups/s
// aggregate with 8 reader threads over a >= 1M-record snapshot, with zero
// global-heap allocations on the steady-state query path (the allocation
// claim is proven separately by tests/store/alloc_free_query_test.cc; this
// binary measures the throughput half and fails below the floor).
//
// The snapshot is self-generated: 2^20 synthetic periphery records with
// unique keys (odd-multiplier bijection over the low 64 bits), ~1k geo
// prefixes and a handful of vendors — enough blocks, index pressure and
// trie fan-out to make the numbers honest.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/common.h"
#include "store/service.h"
#include "store/snapshot.h"
#include "store/writer.h"

namespace {

constexpr std::uint64_t kRecords = 1u << 20;  // 1,048,576
constexpr std::uint64_t kGeoPrefixes = 1024;
// Odd multiplier => bijection mod 2^64, so every low-64 key is unique.
constexpr std::uint64_t kKeyMultiplier = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kBaseHi = 0x3fff000000000000ULL;

std::string build_snapshot_bytes() {
  using namespace xmap;
  // Point-lookup-heavy serving favors small blocks: a lookup scans half a
  // block on average, so 1 KiB blocks cut the scan ~4x vs the 4 KiB
  // default at the cost of a proportionally larger block index.
  store::StoreBuilder builder{1024};
  const char* vendor_names[] = {"", "cisco", "juniper", "mikrotik", "huawei"};
  std::uint16_t vendor_ids[5] = {};
  for (int v = 1; v < 5; ++v) {
    vendor_ids[v] = builder.vendor_id(vendor_names[v]);
  }
  for (std::uint64_t g = 0; g < kGeoPrefixes; ++g) {
    store::GeoEntry geo;
    geo.prefix = net::Ipv6Prefix{
        net::Ipv6Address::from_value(net::Uint128{kBaseHi | (g << 20), 0}),
        44};
    geo.asn = static_cast<std::uint32_t>(64512 + g);
    geo.country = {static_cast<char>('A' + (g % 26)),
                   static_cast<char>('A' + (g / 26 % 26))};
    geo.as_name = "BENCH-AS" + std::to_string(g);
    builder.add_geo(geo);
  }
  for (std::uint64_t i = 0; i < kRecords; ++i) {
    store::Record r;
    const std::uint64_t hi = kBaseHi | ((i % kGeoPrefixes) << 20);
    const std::uint64_t lo = i * kKeyMultiplier;
    r.key = net::Ipv6Address::from_value(net::Uint128{hi, lo});
    r.probe_dst =
        net::Ipv6Address::from_value(net::Uint128{hi, lo ^ 0xffULL});
    r.kind = 1;
    r.hop_limit = static_cast<std::uint8_t>(32 + i % 32);
    r.flags = i % 37 == 0 ? static_cast<std::uint8_t>(
                                store::kFlagLoopCandidate |
                                store::kFlagLoopConfirmed)
                          : std::uint8_t{0};
    r.vendor = vendor_ids[i % 5];
    r.services = static_cast<std::uint16_t>(i % 8);
    r.responses = 1 + i % 3;
    r.first_us = i;
    builder.add(r);
  }
  builder.set_config_fingerprint(0xbe5cbe5cbe5cbe5cULL);
  builder.set_git_sha(store::current_git_sha());
  return builder.serialize();
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  using namespace xmap;
  bench::print_header("store_query",
                      "Results-store concurrent point-lookup throughput");

  auto t0 = std::chrono::steady_clock::now();
  const std::string bytes = build_snapshot_bytes();
  const double build_s = seconds_since(t0);

  t0 = std::chrono::steady_clock::now();
  auto loaded = store::Snapshot::from_buffer(bytes);
  const double load_s = seconds_since(t0);
  if (!loaded.snapshot) {
    std::fprintf(stderr, "snapshot load failed: %s\n", loaded.error.c_str());
    return 1;
  }
  const store::Snapshot& snap = *loaded.snapshot;
  std::printf("snapshot: %llu records, %llu blocks, %zu geo entries, "
              "%.1f MiB (%.2f B/record)\n"
              "build+serialize %.2fs, load+validate (full checksum + "
              "structural decode + trie compile) %.3fs\n\n",
              static_cast<unsigned long long>(snap.record_count()),
              static_cast<unsigned long long>(snap.header().block_count),
              snap.geo_entries().size(),
              static_cast<double>(bytes.size()) / (1024.0 * 1024.0),
              static_cast<double>(bytes.size()) /
                  static_cast<double>(snap.record_count()),
              build_s, load_s);

  store::QueryLoadOptions options;
  options.threads = 8;
  options.lookups_per_thread = 1'000'000;
  options.seed = bench::seed_from_env();
  const auto result = store::run_query_load(snap, options);

  std::printf("query load: %d threads x %llu lookups -> %.0f lookups/s "
              "aggregate (%.2fs wall, %.1f%% hits)\n",
              options.threads,
              static_cast<unsigned long long>(options.lookups_per_thread),
              result.lookups_per_sec, result.seconds,
              100.0 * static_cast<double>(result.hits) /
                  static_cast<double>(result.lookups));
  if (const auto* queries =
          result.metrics.find("store_queries_total", {})) {
    const auto* hits = result.metrics.find("store_query_hits_total", {});
    std::printf("obs counters: store_queries_total=%llu "
                "store_query_hits_total=%llu\n",
                static_cast<unsigned long long>(queries->value),
                static_cast<unsigned long long>(
                    hits != nullptr ? hits->value : 0));
  }

  bench::BenchJson json{"store_query"};
  json.add("point_lookups_per_sec", result.lookups_per_sec, "lookups/s");
  json.add("load_validate_seconds", load_s, "s", /*higher_is_better=*/false);
  json.add("store_bytes_per_record",
           static_cast<double>(bytes.size()) /
               static_cast<double>(snap.record_count()),
           "bytes", /*higher_is_better=*/false);
  json.write();

  // Acceptance floor (ISSUE: >= 1M lookups/s aggregate at 8 threads over
  // >= 1M records). Overridable for constrained CI runners.
  double floor_lps = 1'000'000.0;
  if (const char* env = std::getenv("XMAP_STORE_QUERY_MIN_LPS")) {
    floor_lps = std::atof(env);
  }
  if (result.lookups_per_sec < floor_lps) {
    std::fprintf(stderr,
                 "FAIL: %.0f lookups/s is below the %.0f lookups/s floor\n",
                 result.lookups_per_sec, floor_lps);
    return 1;
  }
  std::printf("\nPASS: %.2fM lookups/s >= %.2fM floor\n",
              result.lookups_per_sec / 1e6, floor_lps / 1e6);
  return 0;
}
