// Robustness sweep: periphery discovery under Gilbert-Elliott bursty loss.
//
// The sweep compares three retransmission policies against a fault-free
// baseline on the same world/seed:
//
//   none            one probe per target (retries 0)
//   back-to-back    3 copies microseconds apart (the pre-fix scheduler:
//                   reproduced with --retry-spacing-ms 0, so all copies land
//                   inside the same loss burst and share its fate)
//   spaced          3 copies 100ms apart + 8s cooldown (the shipped
//                   defaults: copies decorrelate across burst windows)
//
// Expected shape: under >=20% burst loss, spaced retransmits recover >=95%
// of the fault-free discovery; back-to-back copies do not, because a burst
// that eats the first copy eats the immediate duplicates too. The final
// section re-runs the spaced scan through the parallel engine at several
// thread counts and checks the merged record stream is identical — fault
// fates are keyed, not call-order dependent.
//
// XMAP_WINDOW_BITS (default 10 here: the shape needs samples, not scale)
// and XMAP_SEED control the world.
#include <cstdio>
#include <sstream>
#include <string>

#include "bench/common.h"
#include "engine/executor.h"
#include "xmap/results.h"
#include "xmap/scanner.h"

namespace {

using namespace xmap;

const net::Ipv6Address kScanner = *net::Ipv6Address::parse("2001:500::1");
const net::Ipv6Prefix kVantage = *net::Ipv6Prefix::parse("2001:500::/48");

// ~40% of every access link's time sits inside a full-loss burst; with the
// response crossing the same link moments later, a round trip fails whenever
// its instant lands in a burst. The scan rate below stretches the scan over
// several burst epochs so every link's windows are actually sampled.
sim::FaultPlan burst_plan() {
  sim::FaultPlan plan;
  plan.access.burst.rate_per_sec = 8.0;
  plan.access.burst.mean_ms = 50.0;
  plan.access.burst.loss = 1.0;
  return plan;
}

constexpr double kProbesPerSec = 12800;

struct Outcome {
  std::size_t found = 0;
  scan::ScanStats stats;
  std::uint64_t bursts_dropped = 0;
};

Outcome run_classic(bool faults, int retries, double spacing_ms,
                    int window_bits, std::uint64_t seed) {
  sim::Network net{seed};
  topo::BuildConfig bcfg;
  bcfg.window_bits = window_bits;
  bcfg.seed = seed;
  auto internet = topo::build_internet(net, topo::paper::isp_specs(),
                                       topo::paper::vendor_catalog(), bcfg);
  if (faults) net.install_faults(burst_plan());

  static const scan::IcmpEchoProbe module{64};
  scan::ScanConfig cfg;
  for (const auto& isp : internet.isps) {
    cfg.targets.push_back(
        scan::TargetSpec{isp.scan_base, isp.window_lo, isp.window_hi});
  }
  cfg.source = kScanner;
  cfg.seed = seed ^ 0x5eed;
  cfg.probes_per_sec = kProbesPerSec;
  cfg.retries = retries;
  cfg.retry_spacing_ms = spacing_ms;
  cfg.cooldown_secs = 8.0;
  auto* scanner = net.make_node<scan::SimChannelScanner>(cfg, module);
  const int iface = topo::attach_vantage(net, internet, scanner, kVantage);
  scanner->set_iface(iface);
  scan::ResultCollector collector;
  scanner->on_response(
      [&collector](const scan::ProbeResponse& r, sim::SimTime) {
        collector.add(r);
      });
  scanner->start();
  net.run();

  Outcome out;
  out.found = collector.last_hops().size();
  out.stats = scanner->stats();
  if (net.faults() != nullptr) {
    out.bursts_dropped = net.faults()->stats().burst_dropped;
  }
  return out;
}

std::string engine_fingerprint(int threads, int window_bits,
                               std::uint64_t seed) {
  static const scan::IcmpEchoProbe module{64};
  engine::EngineConfig cfg;
  cfg.world_specs = topo::paper::isp_specs();
  cfg.vendors = topo::paper::vendor_catalog();
  cfg.build.window_bits = window_bits;
  cfg.build.seed = seed;
  cfg.module = &module;
  cfg.scan.source = kScanner;
  cfg.scan.seed = seed ^ 0x5eed;
  cfg.scan.probes_per_sec = kProbesPerSec;
  cfg.scan.retries = 2;
  cfg.faults = burst_plan();
  cfg.threads = threads;
  auto result = engine::run_parallel_scan(cfg);
  if (!result.ok) {
    std::fprintf(stderr, "engine error: %s\n", result.error.c_str());
    std::exit(1);
  }
  std::ostringstream out;
  for (const auto& record : result.records) {
    out << record.response.responder.to_string() << '|'
        << record.response.probe_dst.to_string() << '|' << record.when
        << '\n';
  }
  return out.str();
}

}  // namespace

int main() {
  const int window_bits = bench::window_bits_from_env(10);
  const std::uint64_t seed = bench::seed_from_env();
  std::printf("robustness under Gilbert-Elliott bursty loss "
              "(paper world, 2^%d slots/block, seed %llu)\n\n",
              window_bits, static_cast<unsigned long long>(seed));

  const Outcome clean = run_classic(false, 0, 100, window_bits, seed);
  const Outcome lossy = run_classic(true, 0, 100, window_bits, seed);
  const Outcome b2b = run_classic(true, 2, 0, window_bits, seed);
  const Outcome spaced = run_classic(true, 2, 100, window_bits, seed);

  const double denom = static_cast<double>(clean.found);
  std::printf("burst loss with no retries: %.0f%% of round trips fail "
              "(%llu copies eaten by bursts)\n\n",
              100.0 * (1.0 - static_cast<double>(lossy.found) / denom),
              static_cast<unsigned long long>(lossy.bursts_dropped));

  std::printf("%-22s %8s %10s %12s %10s\n", "policy", "sent", "retrans",
              "peripheries", "recovery");
  const struct {
    const char* name;
    const Outcome* outcome;
  } rows[] = {{"fault-free baseline", &clean},
              {"no retries", &lossy},
              {"back-to-back x3", &b2b},
              {"spaced x3 + cooldown", &spaced}};
  for (const auto& row : rows) {
    std::printf("%-22s %8llu %10llu %12zu %9.1f%%\n", row.name,
                static_cast<unsigned long long>(row.outcome->stats.sent),
                static_cast<unsigned long long>(row.outcome->stats.retransmits),
                row.outcome->found,
                100.0 * static_cast<double>(row.outcome->found) / denom);
  }

  const double rec_b2b = static_cast<double>(b2b.found) / denom;
  const double rec_spaced = static_cast<double>(spaced.found) / denom;
  std::printf("\nspaced recovery >= 95%% of fault-free: %s (%.1f%%)\n",
              rec_spaced >= 0.95 ? "yes" : "NO", 100.0 * rec_spaced);
  std::printf("back-to-back stays below it:          %s (%.1f%%)\n",
              rec_b2b < 0.95 ? "yes" : "NO", 100.0 * rec_b2b);

  std::printf("\nthread-count determinism with faults (retries 2, spaced):\n");
  const std::string reference = engine_fingerprint(1, window_bits, seed);
  bool identical = true;
  for (int threads : {2, 4, 8}) {
    const bool match = engine_fingerprint(threads, window_bits, seed) ==
                       reference;
    identical = identical && match;
    std::printf("  %d threads vs 1: %s\n", threads,
                match ? "byte-identical" : "DIFFERS");
  }

  const bool pass = rec_spaced >= 0.95 && rec_b2b < 0.95 && identical;
  std::printf("\noverall: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
