// Table IV — Top appeared periphery vendors and device number, split into
// CPE and UE device classes. Identification combines the hardware path
// (EUI-64 -> MAC -> OUI) with application-level banners, as in the paper.
#include "bench/common.h"

int main() {
  using namespace xmap;
  bench::print_header("Table IV",
                      "Top appeared periphery vendors and device number");

  auto world = bench::make_paper_world();
  auto discoveries = bench::discover_all(world);

  std::vector<scan::LastHop> all_hops;
  for (const auto& entry : discoveries) {
    all_hops.insert(all_hops.end(), entry.result.last_hops.begin(),
                    entry.result.last_hops.end());
  }
  auto grabs = bench::grab_all(world, all_hops);

  // Vendor device-class lookup from the catalogue.
  std::unordered_map<std::string, topo::DeviceClass> vendor_class;
  for (const auto& vendor : world.internet.vendors) {
    vendor_class[vendor.name] = vendor.device_class;
  }

  ana::Counter cpe, ue;
  std::uint64_t identified = 0;
  for (const auto& hop : all_hops) {
    const std::string vendor =
        bench::identify_vendor(hop.address, world.internet.oui, &grabs);
    if (vendor.empty()) continue;
    ++identified;
    auto it = vendor_class.find(vendor);
    const bool is_ue =
        it != vendor_class.end() && it->second == topo::DeviceClass::kUe;
    (is_ue ? ue : cpe).add(vendor);
  }

  std::printf("Identified %llu of %zu last hops (%.1f%%).\n\n",
              static_cast<unsigned long long>(identified), all_hops.size(),
              ana::percent(identified, all_hops.size()));

  ana::TextTable cpe_table{{"CPE vendor", "# devices"}};
  for (const auto& [name, count] : cpe.top(20)) {
    cpe_table.add_row({name, ana::fmt_count(count)});
  }
  cpe_table.add_row({"Total (CPE)", ana::fmt_count(cpe.total())});
  cpe_table.print();

  std::printf("\n");
  ana::TextTable ue_table{{"UE vendor", "# devices"}};
  for (const auto& [name, count] : ue.top(13)) {
    ue_table.add_row({name, ana::fmt_count(count)});
  }
  ue_table.add_row({"Total (UE)", ana::fmt_count(ue.total())});
  ue_table.print();

  std::printf(
      "\nPaper: CPE total 3.9M led by China Mobile, ZTE, Skyworth, "
      "Fiberhome, Youhua Tech; UE total 1.8k led by NTMore, HMD Global, "
      "Vivo, Oppo, Apple, Samsung.\n");
  return 0;
}
