// Section III-B — Scanning feasibility: measures the real CPU cost of
// XMap's target generation + probe construction, then reproduces the
// paper's feasibility arithmetic: a 1 Gbps scanner covers all /64
// sub-prefixes of a /24 block (2^40) in ~8 days and all /60 sub-prefixes
// (2^36) in ~14 hours; the paper's own 25 kpps good-citizen scans take
// ~48 h per 32-bit window.
#include <chrono>

#include "analysis/report.h"
#include "xmap/probe_module.h"
#include "xmap/scanner.h"

int main() {
  using namespace xmap;
  using Clock = std::chrono::steady_clock;

  std::printf("\n=== Scan feasibility (Section III-B) ===\n\n");

  // 1. Measure generation+build throughput on this machine.
  const auto spec = *scan::TargetSpec::parse("2400::/8-40");  // 2^32 space
  scan::CyclicGroup group{spec.count(), 42};
  auto it = group.iterate();
  const net::Ipv6Address src = *net::Ipv6Address::parse("2001:500::1");
  scan::IcmpEchoProbe module{64};

  constexpr int kProbes = 200000;
  std::uint64_t sink = 0;
  const auto t0 = Clock::now();
  for (int i = 0; i < kProbes; ++i) {
    const auto offset = it.next();
    const auto target = spec.nth_address(*offset, 7);
    const auto packet = module.make_probe(src, target, 7);
    sink += packet.size();
  }
  const auto t1 = Clock::now();
  const double seconds =
      std::chrono::duration<double>(t1 - t0).count();
  const double pps_cpu = kProbes / seconds;
  const std::size_t packet_bytes = sink / kProbes;

  std::printf("Measured on this host: %.0f probes/sec generated "
              "(permutation + keyed-hash IID + ICMPv6 echo build, %zu-byte "
              "packets), single thread.\n\n",
              pps_cpu, packet_bytes);

  // 2. Feasibility arithmetic at the paper's line rates.
  const double wire_bits = static_cast<double>(packet_bytes + 38) * 8;  // +L2
  auto line_rate_pps = [&](double gbps) {
    return gbps * 1e9 / wire_bits;
  };
  auto fmt_duration = [](double secs) {
    char buf[64];
    if (secs < 3600) {
      std::snprintf(buf, sizeof buf, "%.1f min", secs / 60);
    } else if (secs < 2 * 86400) {
      std::snprintf(buf, sizeof buf, "%.1f h", secs / 3600);
    } else {
      std::snprintf(buf, sizeof buf, "%.1f days", secs / 86400);
    }
    return std::string{buf};
  };

  ana::TextTable table{{"Scan space", "# probes", "Rate", "Time", "Paper"}};
  const double p40 = 1099511627776.0;  // 2^40 /64s in a /24 block
  const double p36 = 68719476736.0;    // 2^36 /60s
  const double p32 = 4294967296.0;     // 2^32 window per block
  table.add_row({"/24 block, /64 granularity", "2^40",
                 "1 Gbps", fmt_duration(p40 / line_rate_pps(1.0)), "~8 days"});
  table.add_row({"/24 block, /60 granularity", "2^36",
                 "1 Gbps", fmt_duration(p36 / line_rate_pps(1.0)), "~14 hours"});
  table.add_row({"32-bit window (one block)", "2^32", "25 kpps (15 Mbps)",
                 fmt_duration(p32 / 25000.0), "~48 hours"});
  table.add_row({"32-bit window (one block)", "2^32", "1 Gbps",
                 fmt_duration(p32 / line_rate_pps(1.0)), "-"});
  table.add_row({"IPv4 Internet (ZMap ref)", "2^32", "1 Gbps",
                 fmt_duration(p32 / line_rate_pps(1.0)), "<1 hour"});
  table.print();

  std::printf(
      "\nCPU feasibility: at %.0f probes/sec of single-thread generation, "
      "target generation is %.1fx faster than a 25 kpps polite scan needs, "
      "and %s the 1 Gbps line rate (%.0f pps).\n",
      pps_cpu, pps_cpu / 25000.0,
      pps_cpu >= line_rate_pps(1.0) ? "exceeds" : "is within 10x of",
      line_rate_pps(1.0));
  std::printf("Search-cost headline: periphery discovery costs 1 probe per "
              "delegation instead of 2^64 per /64 — a 1.8e19x reduction.\n");
  return 0;
}
