// Table IX — Features of peripheries discovered from BGP-advertised-prefix
// scanning: total last hops / ASes / countries, and the routing-loop subset.
#include <set>

#include "analysis/alias_detection.h"
#include "bench/common.h"

int main() {
  using namespace xmap;
  bench::print_header(
      "Table IX",
      "Peripheries discovered from BGP advertised prefixes scanning");

  auto world = bench::make_bgp_world();

  // Discovery sweep over every advertised prefix, then aliased-prefix
  // filtering (the paper reports unique, NON-ALIASED last hops).
  auto discovery = ana::run_discovery_scan(world.net, world.internet, {}, {});
  std::vector<net::Ipv6Address> candidates;
  for (const auto& hop : discovery.last_hops) {
    candidates.push_back(hop.address);
  }
  const auto alias_result = ana::detect_aliased_prefixes(
      world.net, world.internet, candidates, {});
  const auto raw_count = discovery.last_hops.size();
  discovery.last_hops =
      ana::strip_aliased(discovery.last_hops, alias_result);
  std::printf("Alias filtering: %zu raw responders -> %zu non-aliased "
              "(%zu aliased /64s removed).\n\n",
              raw_count, discovery.last_hops.size(),
              alias_result.aliased_prefix64.size());

  std::set<std::uint32_t> asns;
  std::set<std::string> countries;
  for (const auto& hop : discovery.last_hops) {
    if (const auto* geo = world.internet.geo.lookup(hop.address)) {
      asns.insert(geo->asn);
      countries.insert(geo->country);
    }
  }

  // Loop sweep over the same universe.
  auto loops = ana::run_loop_scan(world.net, world.internet, {}, {});
  std::set<std::uint32_t> loop_asns;
  std::set<std::string> loop_countries;
  std::uint64_t loop_devices = 0;
  for (const auto& loop : loops.confirmed) {
    const auto* geo = world.internet.geo.lookup(loop.address);
    if (geo == nullptr) continue;
    ++loop_devices;
    loop_asns.insert(geo->asn);
    loop_countries.insert(geo->country);
  }

  ana::TextTable table{{"Last hops", "# unique", "# ASN", "# Country"}};
  table.add_row({"Total", ana::fmt_count(discovery.last_hops.size()),
                 ana::fmt_count(asns.size()),
                 ana::fmt_count(countries.size())});
  table.add_row({"with Routing Loop", ana::fmt_count(loop_devices),
                 ana::fmt_count(loop_asns.size()),
                 ana::fmt_count(loop_countries.size())});
  table.print();

  std::printf(
      "\nPaper: 4,029,270 last hops over 6,911 ASes / 170 countries; "
      "128,288 (3.2%%) loop-vulnerable over 3,877 ASes / 132 countries.\n"
      "Shape checks: loop subset is a few percent of last hops, but spans "
      "a majority of ASes and countries.\n");
  std::printf("Measured loop share: %.1f%% of last hops; loops span %.0f%% "
              "of ASes and %.0f%% of countries.\n",
              ana::percent(loop_devices, discovery.last_hops.size()),
              ana::percent(loop_asns.size(), asns.size()),
              ana::percent(loop_countries.size(), countries.size()));
  return 0;
}
