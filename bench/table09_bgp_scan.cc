// Table IX — Features of peripheries discovered from BGP-advertised-prefix
// scanning: total last hops / ASes / countries, and the routing-loop subset.
//
// This table is computed twice: once over the flat in-memory results (the
// original pipeline) and once through the results store — the scan is
// exported to a store snapshot (src/store) and the numbers come back out
// as store queries with LC-trie attribution. Both computations must agree
// exactly; the binary fails if they diverge.
#include <cstdlib>
#include <set>

#include "analysis/alias_detection.h"
#include "analysis/store_export.h"
#include "bench/common.h"
#include "store/snapshot.h"

int main() {
  using namespace xmap;
  bench::print_header(
      "Table IX",
      "Peripheries discovered from BGP advertised prefixes scanning");

  auto world = bench::make_bgp_world();

  // Discovery sweep over every advertised prefix, then aliased-prefix
  // filtering (the paper reports unique, NON-ALIASED last hops).
  auto discovery = ana::run_discovery_scan(world.net, world.internet, {}, {});
  std::vector<net::Ipv6Address> candidates;
  for (const auto& hop : discovery.last_hops) {
    candidates.push_back(hop.address);
  }
  const auto alias_result = ana::detect_aliased_prefixes(
      world.net, world.internet, candidates, {});
  const auto raw_count = discovery.last_hops.size();
  discovery.last_hops =
      ana::strip_aliased(discovery.last_hops, alias_result);
  std::printf("Alias filtering: %zu raw responders -> %zu non-aliased "
              "(%zu aliased /64s removed).\n\n",
              raw_count, discovery.last_hops.size(),
              alias_result.aliased_prefix64.size());

  // --- flat pipeline (the reference) ---------------------------------------
  std::set<std::uint32_t> asns;
  std::set<std::string> countries;
  for (const auto& hop : discovery.last_hops) {
    if (const auto* geo = world.internet.geo.lookup(hop.address)) {
      asns.insert(geo->asn);
      countries.insert(geo->country);
    }
  }

  // Loop sweep over the same universe.
  auto loops = ana::run_loop_scan(world.net, world.internet, {}, {});
  std::set<std::uint32_t> loop_asns;
  std::set<std::string> loop_countries;
  std::uint64_t loop_devices = 0;
  for (const auto& loop : loops.confirmed) {
    const auto* geo = world.internet.geo.lookup(loop.address);
    if (geo == nullptr) continue;
    ++loop_devices;
    loop_asns.insert(geo->asn);
    loop_countries.insert(geo->country);
  }

  // --- store-backed pipeline -----------------------------------------------
  // Export the same results to a store snapshot and recompute every cell as
  // a store query (attribution through the snapshot's compiled LC-trie).
  auto builder = ana::export_store(discovery, &loops, {}, world.internet);
  auto loaded = store::Snapshot::from_buffer(builder.serialize());
  if (!loaded.snapshot) {
    std::fprintf(stderr, "store round-trip failed: %s\n",
                 loaded.error.c_str());
    return 1;
  }
  const store::Snapshot& snap = *loaded.snapshot;

  std::uint64_t s_total = 0, s_loops = 0;
  std::set<std::uint32_t> s_asns, s_loop_asns;
  std::set<std::string> s_countries, s_loop_countries;
  snap.for_each([&](const store::Record& r) {
    if ((r.flags & store::kFlagAliased) != 0) return;
    const store::GeoEntry* geo = snap.attribute(r.key);
    // responses > 0 marks a discovery record; loop-only confirmations
    // exported without a discovery hit carry responses == 0.
    if (r.responses > 0) {
      ++s_total;
      if (geo != nullptr) {
        s_asns.insert(geo->asn);
        s_countries.insert(std::string{geo->country[0]} + geo->country[1]);
      }
    }
    if ((r.flags & store::kFlagLoopConfirmed) != 0 && geo != nullptr) {
      ++s_loops;
      s_loop_asns.insert(geo->asn);
      s_loop_countries.insert(std::string{geo->country[0]} + geo->country[1]);
    }
  });

  const bool identical =
      s_total == discovery.last_hops.size() && s_asns == asns &&
      s_countries.size() == countries.size() && s_loops == loop_devices &&
      s_loop_asns == loop_asns &&
      s_loop_countries.size() == loop_countries.size();
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: store-backed Table IX diverges from the flat "
                 "pipeline (flat %zu/%zu/%zu + %llu/%zu/%zu, store "
                 "%llu/%zu/%zu + %llu/%zu/%zu)\n",
                 discovery.last_hops.size(), asns.size(), countries.size(),
                 static_cast<unsigned long long>(loop_devices),
                 loop_asns.size(), loop_countries.size(),
                 static_cast<unsigned long long>(s_total), s_asns.size(),
                 s_countries.size(),
                 static_cast<unsigned long long>(s_loops),
                 s_loop_asns.size(), s_loop_countries.size());
    return 1;
  }

  // The printed table is computed from the store.
  ana::TextTable table{{"Last hops", "# unique", "# ASN", "# Country"}};
  table.add_row({"Total", ana::fmt_count(s_total),
                 ana::fmt_count(s_asns.size()),
                 ana::fmt_count(s_countries.size())});
  table.add_row({"with Routing Loop", ana::fmt_count(s_loops),
                 ana::fmt_count(s_loop_asns.size()),
                 ana::fmt_count(s_loop_countries.size())});
  table.print();
  std::printf("\n(computed from a results-store snapshot: %llu records, "
              "%zu geo entries; flat-pipeline cross-check identical)\n",
              static_cast<unsigned long long>(snap.record_count()),
              snap.geo_entries().size());

  std::printf(
      "\nPaper: 4,029,270 last hops over 6,911 ASes / 170 countries; "
      "128,288 (3.2%%) loop-vulnerable over 3,877 ASes / 132 countries.\n"
      "Shape checks: loop subset is a few percent of last hops, but spans "
      "a majority of ASes and countries.\n");
  std::printf("Measured loop share: %.1f%% of last hops; loops span %.0f%% "
              "of ASes and %.0f%% of countries.\n",
              ana::percent(s_loops, s_total),
              ana::percent(s_loop_asns.size(), s_asns.size()),
              ana::percent(s_loop_countries.size(), s_countries.size()));
  return 0;
}
