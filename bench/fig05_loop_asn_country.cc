// Figure 5 — Top 10 routing-loop origin ASNs and countries from the
// BGP-advertised-prefix sweep.
//
// Computed twice: the flat pipeline (GeoDb lookups over loops.confirmed)
// and the store-backed pipeline (loop scan exported to a results-store
// snapshot, attribution through its compiled LC-trie). The two rankings
// must agree exactly; the binary fails if they diverge.
#include "analysis/store_export.h"
#include "bench/common.h"
#include "store/snapshot.h"

int main() {
  using namespace xmap;
  bench::print_header("Figure 5", "Top 10 routing loop ASN & country");

  auto world = bench::make_bgp_world();
  auto loops = ana::run_loop_scan(world.net, world.internet, {}, {});

  // Flat reference ranking.
  ana::Counter by_asn, by_country;
  for (const auto& loop : loops.confirmed) {
    const auto* geo = world.internet.geo.lookup(loop.address);
    if (geo == nullptr) continue;
    by_asn.add("AS" + std::to_string(geo->asn));
    by_country.add(geo->country);
  }

  // Store-backed ranking over the exported snapshot.
  ana::DiscoveryResult no_discovery;
  auto builder =
      ana::export_store(no_discovery, &loops, {}, world.internet);
  auto loaded = store::Snapshot::from_buffer(builder.serialize());
  if (!loaded.snapshot) {
    std::fprintf(stderr, "store round-trip failed: %s\n",
                 loaded.error.c_str());
    return 1;
  }
  const store::Snapshot& snap = *loaded.snapshot;
  ana::Counter store_asn, store_country;
  snap.for_each([&](const store::Record& r) {
    if ((r.flags & store::kFlagLoopConfirmed) == 0) return;
    const store::GeoEntry* geo = snap.attribute(r.key);
    if (geo == nullptr) return;
    store_asn.add("AS" + std::to_string(geo->asn));
    store_country.add(std::string{geo->country[0]} + geo->country[1]);
  });
  if (store_asn.top(10) != by_asn.top(10) ||
      store_country.top(10) != by_country.top(10)) {
    std::fprintf(stderr,
                 "FAIL: store-backed Figure 5 ranking diverges from the "
                 "flat pipeline\n");
    return 1;
  }

  std::printf("Top 10 origin ASNs by unique loop devices "
              "(store-backed, flat cross-check identical):\n");
  for (const auto& [asn, count] : store_asn.top(10)) {
    std::printf("  %-10s %6llu  |", asn.c_str(),
                static_cast<unsigned long long>(count));
    for (std::uint64_t c = 0;
         c < count * 50 / (store_asn.top(1)[0].second + 1); ++c) {
      std::printf("#");
    }
    std::printf("\n");
  }

  std::printf("\nTop 10 origin countries by unique loop devices:\n");
  for (const auto& [country, count] : store_country.top(10)) {
    std::printf("  %-4s %6llu  |", country.c_str(),
                static_cast<unsigned long long>(count));
    for (std::uint64_t c = 0;
         c < count * 50 / (store_country.top(1)[0].second + 1); ++c) {
      std::printf("#");
    }
    std::printf("\n");
  }

  std::printf(
      "\nPaper's top-10 country order: BR, CN, EC, VN, US, MM, IN, GB, DE, "
      "CH (CZ close). Shape check: Latin-American and Asian networks "
      "dominate, US mid-table despite its AS count.\n");
  return 0;
}
