// Figure 5 — Top 10 routing-loop origin ASNs and countries from the
// BGP-advertised-prefix sweep.
#include "bench/common.h"

int main() {
  using namespace xmap;
  bench::print_header("Figure 5", "Top 10 routing loop ASN & country");

  auto world = bench::make_bgp_world();
  auto loops = ana::run_loop_scan(world.net, world.internet, {}, {});

  ana::Counter by_asn, by_country;
  for (const auto& loop : loops.confirmed) {
    const auto* geo = world.internet.geo.lookup(loop.address);
    if (geo == nullptr) continue;
    by_asn.add("AS" + std::to_string(geo->asn));
    by_country.add(geo->country);
  }

  std::printf("Top 10 origin ASNs by unique loop devices:\n");
  for (const auto& [asn, count] : by_asn.top(10)) {
    std::printf("  %-10s %6llu  |", asn.c_str(),
                static_cast<unsigned long long>(count));
    for (std::uint64_t c = 0; c < count * 50 / (by_asn.top(1)[0].second + 1);
         ++c) {
      std::printf("#");
    }
    std::printf("\n");
  }

  std::printf("\nTop 10 origin countries by unique loop devices:\n");
  for (const auto& [country, count] : by_country.top(10)) {
    std::printf("  %-4s %6llu  |", country.c_str(),
                static_cast<unsigned long long>(count));
    for (std::uint64_t c = 0;
         c < count * 50 / (by_country.top(1)[0].second + 1); ++c) {
      std::printf("#");
    }
    std::printf("\n");
  }

  std::printf(
      "\nPaper's top-10 country order: BR, CN, EC, VN, US, MM, IN, GB, DE, "
      "CH (CZ close). Shape check: Latin-American and Asian networks "
      "dominate, US mid-table despite its AS count.\n");
  return 0;
}
