#include "netbase/uint128.h"

#include <gtest/gtest.h>

#include "netbase/random.h"

namespace xmap::net {
namespace {

using U128 = unsigned __int128;  // oracle type, test-only

U128 to_native(Uint128 v) {
  return (static_cast<U128>(v.hi()) << 64) | v.lo();
}
[[maybe_unused]] Uint128 from_native(U128 v) {
  return Uint128{static_cast<std::uint64_t>(v >> 64),
                 static_cast<std::uint64_t>(v)};
}

TEST(Uint128, DefaultIsZero) {
  Uint128 v;
  EXPECT_TRUE(v.is_zero());
  EXPECT_EQ(v.hi(), 0u);
  EXPECT_EQ(v.lo(), 0u);
}

TEST(Uint128, BasicConstruction) {
  Uint128 a{42};
  EXPECT_EQ(a.lo(), 42u);
  EXPECT_EQ(a.hi(), 0u);
  Uint128 b{7, 9};
  EXPECT_EQ(b.hi(), 7u);
  EXPECT_EQ(b.lo(), 9u);
}

TEST(Uint128, AdditionCarry) {
  Uint128 a{0, ~std::uint64_t{0}};
  Uint128 b{1};
  EXPECT_EQ(a + b, (Uint128{1, 0}));
}

TEST(Uint128, SubtractionBorrow) {
  Uint128 a{1, 0};
  Uint128 b{1};
  EXPECT_EQ(a - b, (Uint128{0, ~std::uint64_t{0}}));
}

TEST(Uint128, WrapAround) {
  EXPECT_EQ(Uint128::max() + Uint128{1}, Uint128{});
  EXPECT_EQ(Uint128{} - Uint128{1}, Uint128::max());
}

TEST(Uint128, Pow2) {
  EXPECT_EQ(Uint128::pow2(0), Uint128{1});
  EXPECT_EQ(Uint128::pow2(63), (Uint128{0, 1ULL << 63}));
  EXPECT_EQ(Uint128::pow2(64), (Uint128{1, 0}));
  EXPECT_EQ(Uint128::pow2(127), (Uint128{1ULL << 63, 0}));
}

TEST(Uint128, Comparisons) {
  EXPECT_LT(Uint128{5}, Uint128{6});
  EXPECT_LT((Uint128{0, ~std::uint64_t{0}}), (Uint128{1, 0}));
  EXPECT_GT((Uint128{2, 0}), (Uint128{1, ~std::uint64_t{0}}));
  EXPECT_EQ(Uint128{7}, Uint128{7});
}

TEST(Uint128, ShiftEdgeCases) {
  Uint128 one{1};
  EXPECT_EQ(one << 0, one);
  EXPECT_EQ(one << 127, (Uint128{1ULL << 63, 0}));
  EXPECT_EQ(one << 128, Uint128{});
  EXPECT_EQ((Uint128{1ULL << 63, 0}) >> 127, one);
  EXPECT_EQ(Uint128::max() >> 128, Uint128{});
  EXPECT_EQ(one << 64, (Uint128{1, 0}));
  EXPECT_EQ((Uint128{1, 0}) >> 64, one);
}

TEST(Uint128, BitWidth) {
  EXPECT_EQ(Uint128{}.bit_width(), 0);
  EXPECT_EQ(Uint128{1}.bit_width(), 1);
  EXPECT_EQ(Uint128{255}.bit_width(), 8);
  EXPECT_EQ((Uint128{1, 0}).bit_width(), 65);
  EXPECT_EQ(Uint128::max().bit_width(), 128);
}

TEST(Uint128, PopcountAndZeros) {
  EXPECT_EQ(Uint128::max().popcount(), 128);
  EXPECT_EQ(Uint128{}.popcount(), 0);
  EXPECT_EQ(Uint128{0xff}.popcount(), 8);
  EXPECT_EQ(Uint128{}.countr_zero(), 128);
  EXPECT_EQ(Uint128{2}.countr_zero(), 1);
  EXPECT_EQ((Uint128{1, 0}).countr_zero(), 64);
  EXPECT_EQ(Uint128{1}.countl_zero(), 127);
}

TEST(Uint128, BitGetSet) {
  Uint128 v;
  v.set_bit(0, true);
  v.set_bit(64, true);
  v.set_bit(127, true);
  EXPECT_TRUE(v.bit(0));
  EXPECT_TRUE(v.bit(64));
  EXPECT_TRUE(v.bit(127));
  EXPECT_FALSE(v.bit(1));
  v.set_bit(64, false);
  EXPECT_FALSE(v.bit(64));
}

TEST(Uint128, DivModSmall) {
  auto [q, r] = Uint128::divmod(Uint128{100}, Uint128{7});
  EXPECT_EQ(q, Uint128{14});
  EXPECT_EQ(r, Uint128{2});
}

TEST(Uint128, DivModByZeroIsTotal) {
  auto [q, r] = Uint128::divmod(Uint128{100}, Uint128{});
  EXPECT_EQ(q, Uint128{});
  EXPECT_EQ(r, Uint128{});
}

TEST(Uint128, DivModLargeDivisor) {
  auto [q, r] = Uint128::divmod(Uint128{5}, Uint128{100});
  EXPECT_EQ(q, Uint128{});
  EXPECT_EQ(r, Uint128{5});
}

TEST(Uint128, StringRoundTripDecimal) {
  EXPECT_EQ(Uint128{}.to_string(), "0");
  EXPECT_EQ(Uint128{12345}.to_string(), "12345");
  EXPECT_EQ(Uint128::max().to_string(),
            "340282366920938463463374607431768211455");
  auto parsed = Uint128::from_string("340282366920938463463374607431768211455");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, Uint128::max());
}

TEST(Uint128, FromStringRejectsBadInput) {
  EXPECT_FALSE(Uint128::from_string("").has_value());
  EXPECT_FALSE(Uint128::from_string("12a").has_value());
  // One more than max overflows.
  EXPECT_FALSE(
      Uint128::from_string("340282366920938463463374607431768211456").has_value());
}

TEST(Uint128, HexRoundTrip) {
  EXPECT_EQ(Uint128{0xdeadbeef}.to_hex(), "deadbeef");
  auto v = Uint128::from_hex("ffffffffffffffffffffffffffffffff");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, Uint128::max());
  EXPECT_FALSE(Uint128::from_hex("").has_value());
  EXPECT_FALSE(Uint128::from_hex("xyz").has_value());
  EXPECT_FALSE(
      Uint128::from_hex("fffffffffffffffffffffffffffffffff").has_value());
}

TEST(Uint128, MulmodMatchesSmallCases) {
  EXPECT_EQ(Uint128::mulmod(Uint128{7}, Uint128{8}, Uint128{10}), Uint128{6});
  EXPECT_EQ(Uint128::mulmod(Uint128{0}, Uint128{8}, Uint128{10}), Uint128{0});
}

TEST(Uint128, PowmodMatchesFermat) {
  // 2^(p-1) mod p == 1 for prime p.
  const Uint128 p{0xffffffffffffffc5ULL};  // largest prime < 2^64
  EXPECT_EQ(Uint128::powmod(Uint128{2}, p - Uint128{1}, p), Uint128{1});
}

// ---- Randomized differential tests against the compiler's __int128 ----

class Uint128Random : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Uint128Random, ArithmeticMatchesNative) {
  Rng rng{GetParam()};
  for (int i = 0; i < 2000; ++i) {
    const Uint128 a{rng.next(), rng.next()};
    const Uint128 b{rng.next(), rng.next()};
    const U128 na = to_native(a), nb = to_native(b);
    EXPECT_EQ(to_native(a + b), static_cast<U128>(na + nb));
    EXPECT_EQ(to_native(a - b), static_cast<U128>(na - nb));
    EXPECT_EQ(to_native(a * b), static_cast<U128>(na * nb));
    EXPECT_EQ((a < b), (na < nb));
    EXPECT_EQ((a == b), (na == nb));
  }
}

TEST_P(Uint128Random, DivisionMatchesNative) {
  Rng rng{GetParam()};
  for (int i = 0; i < 500; ++i) {
    const Uint128 a{rng.next(), rng.next()};
    Uint128 b{rng.next() >> (rng.next() % 64), rng.next()};
    if (b.is_zero()) b = Uint128{1};
    const U128 na = to_native(a), nb = to_native(b);
    EXPECT_EQ(to_native(a / b), static_cast<U128>(na / nb));
    EXPECT_EQ(to_native(a % b), static_cast<U128>(na % nb));
  }
}

TEST_P(Uint128Random, ShiftsMatchNative) {
  Rng rng{GetParam()};
  for (int i = 0; i < 2000; ++i) {
    const Uint128 a{rng.next(), rng.next()};
    const int n = static_cast<int>(rng.next() % 128);
    const U128 na = to_native(a);
    EXPECT_EQ(to_native(a << n), static_cast<U128>(na << n));
    EXPECT_EQ(to_native(a >> n), static_cast<U128>(na >> n));
  }
}

TEST_P(Uint128Random, MulmodMatchesNaive) {
  Rng rng{GetParam()};
  for (int i = 0; i < 200; ++i) {
    const Uint128 a{rng.next() & 0xffffffffffULL, rng.next()};
    const Uint128 b{rng.next() & 0xffffffffffULL, rng.next()};
    Uint128 m{rng.next(), rng.next()};
    if (m.is_zero()) m = Uint128{3};
    // Oracle: reduce operands, multiply in 256-bit space via repeated halving
    // is what mulmod does; instead verify with the identity
    // (a*b) mod m computed through native division when the product fits.
    const Uint128 am = a % m, bm = b % m;
    if (am.bit_width() + bm.bit_width() <= 128) {
      EXPECT_EQ(Uint128::mulmod(a, b, m), (am * bm) % m);
    } else {
      // Cross-check via modular identity: mulmod(a,b,m) == mulmod(b,a,m).
      EXPECT_EQ(Uint128::mulmod(a, b, m), Uint128::mulmod(b, a, m));
    }
  }
}

TEST_P(Uint128Random, StringRoundTrips) {
  Rng rng{GetParam()};
  for (int i = 0; i < 300; ++i) {
    const Uint128 a{rng.next(), rng.next()};
    EXPECT_EQ(Uint128::from_string(a.to_string()), a);
    EXPECT_EQ(Uint128::from_hex(a.to_hex()), a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Uint128Random,
                         ::testing::Values(1, 2, 3, 42, 1337, 0xdeadbeef));

}  // namespace
}  // namespace xmap::net
