#include "netbase/iid.h"

#include <gtest/gtest.h>

namespace xmap::net {
namespace {

TEST(ClassifyIid, Eui64Marker) {
  const MacAddress mac = *MacAddress::parse("00:1a:2b:3c:4d:5e");
  EXPECT_EQ(classify_iid(mac.to_eui64_iid()), IidStyle::kEui64);
}

TEST(ClassifyIid, LowByte) {
  EXPECT_EQ(classify_iid(0x1), IidStyle::kLowByte);
  EXPECT_EQ(classify_iid(0xff), IidStyle::kLowByte);
  EXPECT_EQ(classify_iid(0xffff), IidStyle::kLowByte);
  EXPECT_NE(classify_iid(0x10000), IidStyle::kLowByte);
}

TEST(ClassifyIid, EmbedIpv4LowBits) {
  // ::202.96.1.1 form.
  EXPECT_EQ(classify_iid(0x00000000ca600101ULL), IidStyle::kEmbedIpv4);
  // 0.x addresses are not plausible hosts.
  EXPECT_NE(classify_iid(0x0000000000600101ULL), IidStyle::kEmbedIpv4);
}

TEST(ClassifyIid, EmbedIpv4GroupsAsOctets) {
  // ...:192:168:1:1 style — 0x0192 read as decimal 192, etc.
  const std::uint64_t iid = 0x0192'0168'0001'0001ULL;
  EXPECT_EQ(classify_iid(iid), IidStyle::kEmbedIpv4);
}

TEST(ClassifyIid, GroupsWithHexDigitsAreNotIpv4) {
  // 0x01a2 contains 'a': not a decimal octet.
  const std::uint64_t iid = 0x01a2'0168'0001'0001ULL;
  EXPECT_NE(classify_iid(iid), IidStyle::kEmbedIpv4);
}

TEST(ClassifyIid, BytePattern) {
  EXPECT_EQ(classify_iid(0xaaaaaaaaaaaaaaaaULL), IidStyle::kBytePattern);
  EXPECT_EQ(classify_iid(0xa5a5a5a5a5a5a5a5ULL), IidStyle::kBytePattern);
  EXPECT_EQ(classify_iid(0x1234123412341234ULL), IidStyle::kBytePattern);
}

TEST(ClassifyIid, Randomized) {
  EXPECT_EQ(classify_iid(0x9abcdef013572468ULL), IidStyle::kRandomized);
}

TEST(ClassifyIid, PriorityEui64BeatsPattern) {
  // An IID with the fffe marker is EUI-64 even if byte-pattern-ish.
  const std::uint64_t iid = 0x020000fffe000000ULL;
  EXPECT_EQ(classify_iid(iid), IidStyle::kEui64);
}

TEST(ClassifyIid, ZeroIsLowByte) {
  EXPECT_EQ(classify_iid(0), IidStyle::kLowByte);
}

TEST(IidStyleName, AllNamed) {
  EXPECT_STREQ(iid_style_name(IidStyle::kEui64), "EUI-64");
  EXPECT_STREQ(iid_style_name(IidStyle::kLowByte), "Low-byte");
  EXPECT_STREQ(iid_style_name(IidStyle::kEmbedIpv4), "Embed-IPv4");
  EXPECT_STREQ(iid_style_name(IidStyle::kBytePattern), "Byte-pattern");
  EXPECT_STREQ(iid_style_name(IidStyle::kRandomized), "Randomized");
}

// Property: generation and classification agree for every style.
class IidRoundTrip : public ::testing::TestWithParam<IidStyle> {};

TEST_P(IidRoundTrip, GenerateThenClassify) {
  const IidStyle style = GetParam();
  Rng rng{static_cast<std::uint64_t>(style) + 1000};
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t iid = generate_iid(style, rng, 0xb0d001);
    EXPECT_EQ(classify_iid(iid), style) << std::hex << iid;
  }
}

INSTANTIATE_TEST_SUITE_P(Styles, IidRoundTrip,
                         ::testing::Values(IidStyle::kEui64,
                                           IidStyle::kLowByte,
                                           IidStyle::kEmbedIpv4,
                                           IidStyle::kBytePattern,
                                           IidStyle::kRandomized));

TEST(GenerateIid, Eui64CarriesOuiAndMac) {
  Rng rng{5};
  MacAddress mac;
  const std::uint64_t iid =
      generate_iid(IidStyle::kEui64, rng, 0xb0d004, &mac);
  EXPECT_EQ(mac.oui(), 0xb0d004u);
  auto recovered = MacAddress::from_eui64_iid(iid);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, mac);
}

TEST(GenerateIid, DeterministicForSeed) {
  Rng a{7}, b{7};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(generate_iid(IidStyle::kRandomized, a, 0),
              generate_iid(IidStyle::kRandomized, b, 0));
  }
}

}  // namespace
}  // namespace xmap::net
