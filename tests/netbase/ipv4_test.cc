#include "netbase/ipv4.h"

#include <gtest/gtest.h>

namespace xmap::net {
namespace {

TEST(Ipv4Address, ParseAndFormat) {
  auto a = Ipv4Address::parse("192.168.1.1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->value(), 0xc0a80101u);
  EXPECT_EQ(a->to_string(), "192.168.1.1");
}

TEST(Ipv4Address, Octets) {
  auto a = Ipv4Address::from_octets(10, 20, 30, 40);
  EXPECT_EQ(a.octet(0), 10);
  EXPECT_EQ(a.octet(1), 20);
  EXPECT_EQ(a.octet(2), 30);
  EXPECT_EQ(a.octet(3), 40);
}

TEST(Ipv4Address, ParseRejectsBadInput) {
  EXPECT_FALSE(Ipv4Address::parse("").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Address::parse("256.1.1.1").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.x").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1..2.3").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1234.1.1.1").has_value());
}

TEST(Ipv4Address, PlausibleHost) {
  EXPECT_TRUE(Ipv4Address::parse("8.8.8.8")->is_plausible_host());
  EXPECT_TRUE(Ipv4Address::parse("192.168.1.1")->is_plausible_host());
  EXPECT_FALSE(Ipv4Address::parse("0.0.0.0")->is_plausible_host());
  EXPECT_FALSE(Ipv4Address::parse("127.0.0.1")->is_plausible_host());
  EXPECT_FALSE(Ipv4Address::parse("224.0.0.1")->is_plausible_host());
  EXPECT_FALSE(Ipv4Address::parse("255.255.255.255")->is_plausible_host());
}

TEST(Ipv4Address, Ordering) {
  EXPECT_LT(*Ipv4Address::parse("1.2.3.4"), *Ipv4Address::parse("1.2.3.5"));
  EXPECT_EQ(*Ipv4Address::parse("1.2.3.4"), *Ipv4Address::parse("1.2.3.4"));
}

}  // namespace
}  // namespace xmap::net
