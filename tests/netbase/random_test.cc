#include "netbase/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace xmap::net {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformStaysInBounds) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(Rng, UniformBoundOneIsZero) {
  Rng rng{7};
  EXPECT_EQ(rng.uniform(1), 0u);
  EXPECT_EQ(rng.uniform(0), 0u);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng{11};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values hit
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng{13};
  constexpr int kBuckets = 10, kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i)
    ++counts[rng.uniform(kBuckets)];
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.05);
  }
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng rng{17};
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.unit();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng{19};
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, PickWeightedRespectsWeights) {
  Rng rng{23};
  const double weights[] = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 100000; ++i)
    ++counts[rng.pick_weighted(weights)];
  EXPECT_NEAR(counts[0] / 100000.0, 0.1, 0.01);
  EXPECT_NEAR(counts[1] / 100000.0, 0.3, 0.02);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / 100000.0, 0.6, 0.02);
}

TEST(Rng, PickWeightedAllZeroIsIndexZero) {
  Rng rng{29};
  const double weights[] = {0.0, 0.0};
  EXPECT_EQ(rng.pick_weighted(weights), 0u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent{31};
  Rng child1 = parent.fork(1);
  Rng child2 = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.next() == child2.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Splitmix, KnownVector) {
  // Reference value from the splitmix64 reference implementation, seed 0.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64_next(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64_next(state), 0x6e789e6aa1b965f4ULL);
}

TEST(Mix64, StatelessAndDistinct) {
  EXPECT_EQ(mix64(1), mix64(1));
  EXPECT_NE(mix64(1), mix64(2));
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine64(1, 2), hash_combine64(2, 1));
}

}  // namespace
}  // namespace xmap::net
