#include "netbase/mac.h"

#include <gtest/gtest.h>

#include "netbase/random.h"

namespace xmap::net {
namespace {

TEST(MacAddress, ParseAndFormat) {
  auto m = MacAddress::parse("00:1a:2b:3c:4d:5e");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->to_string(), "00:1a:2b:3c:4d:5e");
  EXPECT_EQ(m->oui(), 0x001a2bu);
}

TEST(MacAddress, ParseUppercase) {
  auto m = MacAddress::parse("AA:BB:CC:DD:EE:FF");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->to_string(), "aa:bb:cc:dd:ee:ff");
}

TEST(MacAddress, ParseRejectsBadInput) {
  EXPECT_FALSE(MacAddress::parse("").has_value());
  EXPECT_FALSE(MacAddress::parse("00:1a:2b:3c:4d").has_value());
  EXPECT_FALSE(MacAddress::parse("00:1a:2b:3c:4d:5e:6f").has_value());
  EXPECT_FALSE(MacAddress::parse("00-1a-2b-3c-4d-5e").has_value());
  EXPECT_FALSE(MacAddress::parse("0g:1a:2b:3c:4d:5e").has_value());
  EXPECT_FALSE(MacAddress::parse("001a2b3c4d5e").has_value());
}

TEST(MacAddress, U64RoundTrip) {
  auto m = *MacAddress::parse("12:34:56:78:9a:bc");
  EXPECT_EQ(m.to_u64(), 0x123456789abcULL);
  EXPECT_EQ(MacAddress::from_u64(0x123456789abcULL), m);
}

TEST(MacAddress, FlagBits) {
  EXPECT_TRUE(MacAddress::from_u64(0x020000000001ULL).is_locally_administered());
  EXPECT_FALSE(MacAddress::from_u64(0x000000000001ULL).is_locally_administered());
  EXPECT_TRUE(MacAddress::from_u64(0x010000000001ULL).is_multicast());
  EXPECT_FALSE(MacAddress::from_u64(0x020000000001ULL).is_multicast());
}

TEST(MacAddress, Eui64KnownVector) {
  // RFC 4291 appendix A example: 34-56-78-9A-BC-DE -> 3656:78ff:fe9a:bcde.
  auto m = *MacAddress::parse("34:56:78:9a:bc:de");
  EXPECT_EQ(m.to_eui64_iid(), 0x365678fffe9abcdeULL);
}

TEST(MacAddress, Eui64RoundTrip) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const MacAddress m = MacAddress::from_u64(rng.next() & 0xffffffffffffULL);
    auto back = MacAddress::from_eui64_iid(m.to_eui64_iid());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, m);
  }
}

TEST(MacAddress, FromEui64RejectsMissingMarker) {
  // A randomized IID without ff:fe in the middle is not EUI-64.
  EXPECT_FALSE(MacAddress::from_eui64_iid(0x123456789abcdef0ULL).has_value());
  EXPECT_FALSE(MacAddress::from_eui64_iid(0).has_value());
  // fffe in the wrong position.
  EXPECT_FALSE(MacAddress::from_eui64_iid(0xfffe000000000000ULL).has_value());
}

TEST(MacAddress, Eui64MarkerPosition) {
  auto m = *MacAddress::parse("00:00:00:00:00:00");
  const std::uint64_t iid = m.to_eui64_iid();
  EXPECT_EQ((iid >> 24) & 0xffff, 0xfffeULL);
  // U/L bit flipped: first octet becomes 0x02.
  EXPECT_EQ(iid >> 56, 0x02ULL);
}

}  // namespace
}  // namespace xmap::net
