#include "netbase/json.h"

#include <gtest/gtest.h>

namespace xmap::net {
namespace {

JsonValue must_parse(std::string_view text) {
  auto result = json_parse(text);
  EXPECT_TRUE(result.value.has_value()) << result.error.to_string();
  return result.value.value_or(JsonValue{});
}

TEST(Json, Scalars) {
  EXPECT_TRUE(must_parse("null").is_null());
  EXPECT_EQ(must_parse("true").as_bool(), true);
  EXPECT_EQ(must_parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(must_parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(must_parse("-3.5").as_number(), -3.5);
  EXPECT_DOUBLE_EQ(must_parse("1e3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(must_parse("2.5E-2").as_number(), 0.025);
  EXPECT_EQ(must_parse("\"hi\"").as_string(), "hi");
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(must_parse(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
  EXPECT_EQ(must_parse(R"("Aé")").as_string(), "A\xc3\xa9");
  EXPECT_EQ(must_parse(R"("中")").as_string(), "\xe4\xb8\xad");
}

TEST(Json, Containers) {
  const auto arr = must_parse("[1, 2, [3, 4], \"x\"]");
  ASSERT_TRUE(arr.is_array());
  ASSERT_EQ(arr.as_array().size(), 4u);
  EXPECT_DOUBLE_EQ(arr.as_array()[0].as_number(), 1);
  EXPECT_TRUE(arr.as_array()[2].is_array());

  const auto obj = must_parse(R"({"a": 1, "b": {"c": true}, "d": []})");
  ASSERT_TRUE(obj.is_object());
  EXPECT_DOUBLE_EQ(obj.find("a")->as_number(), 1);
  EXPECT_TRUE(obj.find("b")->find("c")->as_bool());
  EXPECT_TRUE(obj.find("d")->as_array().empty());
  EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(Json, EmptyContainers) {
  EXPECT_TRUE(must_parse("{}").as_object().empty());
  EXPECT_TRUE(must_parse("[]").as_array().empty());
}

TEST(Json, WhitespaceTolerance) {
  const auto v = must_parse("  {\n\t\"a\" :\r [ 1 , 2 ]\n}  ");
  EXPECT_EQ(v.find("a")->as_array().size(), 2u);
}

TEST(Json, TypedGetters) {
  const auto v = must_parse(R"({"n": 5, "s": "x", "b": true})");
  EXPECT_DOUBLE_EQ(v.number_or("n", 0), 5);
  EXPECT_DOUBLE_EQ(v.number_or("missing", 7), 7);
  EXPECT_DOUBLE_EQ(v.number_or("s", 7), 7);  // wrong type -> fallback
  EXPECT_EQ(v.string_or("s", ""), "x");
  EXPECT_EQ(v.string_or("n", "d"), "d");
  EXPECT_TRUE(v.bool_or("b", false));
  EXPECT_TRUE(v.bool_or("missing", true));
}

struct BadJson {
  const char* text;
};

class JsonRejects : public ::testing::TestWithParam<BadJson> {};

TEST_P(JsonRejects, Rejects) {
  auto result = json_parse(GetParam().text);
  EXPECT_FALSE(result.value.has_value()) << GetParam().text;
  EXPECT_FALSE(result.error.message.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, JsonRejects,
    ::testing::Values(BadJson{""}, BadJson{"{"}, BadJson{"["},
                      BadJson{"{\"a\": }"}, BadJson{"{\"a\" 1}"},
                      BadJson{"{a: 1}"}, BadJson{"[1, 2,]"},
                      BadJson{"[1 2]"}, BadJson{"\"unterminated"},
                      BadJson{"\"bad\\q\""}, BadJson{"\"\\u12g4\""},
                      BadJson{"tru"}, BadJson{"nul"}, BadJson{"-"},
                      BadJson{"1.2.3"}, BadJson{"{} extra"},
                      BadJson{"\"ctrl\x01char\""}));

TEST(Json, ErrorPositionsAreUseful) {
  auto result = json_parse("{\n  \"a\": oops\n}");
  ASSERT_FALSE(result.value.has_value());
  EXPECT_EQ(result.error.line, 2);
  EXPECT_GT(result.error.column, 1);
}

TEST(Json, DeepNestingRejected) {
  std::string evil(100, '[');
  auto result = json_parse(evil);
  EXPECT_FALSE(result.value.has_value());
}

TEST(Json, DumpRoundTrip) {
  const char* doc =
      R"({"arr":[1,2.5,true,null],"nested":{"s":"a\"b"},"z":-3})";
  const auto v = must_parse(doc);
  const auto re = must_parse(v.dump());
  EXPECT_EQ(v, re);
}

TEST(Json, DumpIntegersWithoutDecimalPoint) {
  EXPECT_EQ(JsonValue{42}.dump(), "42");
  EXPECT_EQ(JsonValue{2.5}.dump(), "2.5");
  EXPECT_EQ(JsonValue{"x"}.dump(), "\"x\"");
}

}  // namespace
}  // namespace xmap::net
