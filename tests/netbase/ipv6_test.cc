#include "netbase/ipv6.h"

#include <gtest/gtest.h>

#include "netbase/random.h"

namespace xmap::net {
namespace {

TEST(Ipv6Address, ParseFull) {
  auto a = Ipv6Address::parse("2001:0db8:0000:0000:0000:0000:0000:0001");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "2001:db8::1");
}

TEST(Ipv6Address, ParseCompressed) {
  auto a = Ipv6Address::parse("2001:db8::1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->group(0), 0x2001);
  EXPECT_EQ(a->group(1), 0x0db8);
  EXPECT_EQ(a->group(7), 1);
  for (int i = 2; i < 7; ++i) EXPECT_EQ(a->group(i), 0) << i;
}

TEST(Ipv6Address, ParseAllZeros) {
  auto a = Ipv6Address::parse("::");
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(a->is_unspecified());
  EXPECT_EQ(a->to_string(), "::");
}

TEST(Ipv6Address, ParseLoopback) {
  auto a = Ipv6Address::parse("::1");
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(a->is_loopback());
  EXPECT_EQ(a->to_string(), "::1");
}

TEST(Ipv6Address, ParseTrailingCompression) {
  auto a = Ipv6Address::parse("2001:db8::");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "2001:db8::");
}

TEST(Ipv6Address, ParseEmbeddedIpv4) {
  auto a = Ipv6Address::parse("::ffff:192.168.1.1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->group(5), 0xffff);
  EXPECT_EQ(a->group(6), 0xc0a8);
  EXPECT_EQ(a->group(7), 0x0101);
}

TEST(Ipv6Address, ParseFullWithIpv4Tail) {
  auto a = Ipv6Address::parse("0:0:0:0:0:ffff:10.0.0.1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->group(6), 0x0a00);
  EXPECT_EQ(a->group(7), 0x0001);
}

TEST(Ipv6Address, ParseSevenGroupsWithCompression) {
  auto a = Ipv6Address::parse("1:2:3:4:5:6:7::");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->group(6), 7);
  EXPECT_EQ(a->group(7), 0);
}

struct BadInput {
  const char* text;
  const char* why;
};

class Ipv6ParseRejects : public ::testing::TestWithParam<BadInput> {};

TEST_P(Ipv6ParseRejects, Rejects) {
  EXPECT_FALSE(Ipv6Address::parse(GetParam().text).has_value())
      << GetParam().why;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Ipv6ParseRejects,
    ::testing::Values(
        BadInput{"", "empty"}, BadInput{":", "single colon"},
        BadInput{":::", "triple colon"},
        BadInput{"1:2:3:4:5:6:7", "seven groups, no compression"},
        BadInput{"1:2:3:4:5:6:7:8:9", "nine groups"},
        BadInput{"1:2:3:4:5:6:7:8::", "compression with eight groups"},
        BadInput{"::1::2", "two compressions"},
        BadInput{"12345::", "five hex digits"},
        BadInput{"g::1", "non-hex digit"},
        BadInput{"1:2:3:4:5:6:1.2.3.4.5", "five octets"},
        BadInput{"::256.1.1.1", "octet out of range"},
        BadInput{"::1.2.3", "three octets"},
        BadInput{"1:", "trailing colon"},
        BadInput{"2001:db8::1 ", "trailing space"}));

TEST(Ipv6Address, Rfc5952LeftmostLongestRun) {
  // Two runs of equal length: compress the leftmost.
  auto a = Ipv6Address::parse("2001:0:0:1:0:0:0:1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "2001:0:0:1::1");
  // Longer second run: compress it.
  auto b = Ipv6Address::parse("2001:0:0:1:0:0:0:0");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->to_string(), "2001:0:0:1::");
}

TEST(Ipv6Address, Rfc5952NoSingleGroupCompression) {
  auto a = Ipv6Address::parse("2001:db8:0:1:1:1:1:1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "2001:db8:0:1:1:1:1:1");
}

TEST(Ipv6Address, Rfc5952Lowercase) {
  auto a = Ipv6Address::parse("2001:DB8::ABCD");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "2001:db8::abcd");
}

TEST(Ipv6Address, ValueRoundTrip) {
  auto a = Ipv6Address::parse("2001:db8:1234:5678:9abc:def0:1357:2468");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(Ipv6Address::from_value(a->value()), *a);
  EXPECT_EQ(a->value().hi(), 0x20010db812345678ULL);
  EXPECT_EQ(a->value().lo(), 0x9abcdef013572468ULL);
  EXPECT_EQ(a->prefix64(), 0x20010db812345678ULL);
  EXPECT_EQ(a->iid(), 0x9abcdef013572468ULL);
}

TEST(Ipv6Address, Classification) {
  EXPECT_TRUE(Ipv6Address::parse("ff02::1")->is_multicast());
  EXPECT_TRUE(Ipv6Address::parse("fe80::1")->is_link_local());
  EXPECT_FALSE(Ipv6Address::parse("2001:db8::1")->is_multicast());
  EXPECT_FALSE(Ipv6Address::parse("2001:db8::1")->is_link_local());
  EXPECT_FALSE(Ipv6Address::parse("fec0::1")->is_link_local());
}

TEST(Ipv6Address, RandomRoundTripPropertySweep) {
  Rng rng{99};
  for (int i = 0; i < 2000; ++i) {
    const Ipv6Address a = Ipv6Address::from_value(Uint128{rng.next(), rng.next()});
    auto reparsed = Ipv6Address::parse(a.to_string());
    ASSERT_TRUE(reparsed.has_value()) << a.to_string();
    EXPECT_EQ(*reparsed, a) << a.to_string();
  }
}

TEST(Ipv6Prefix, CanonicalisesHostBits) {
  auto a = Ipv6Address::parse("2001:db8:ffff:ffff::1");
  Ipv6Prefix p{*a, 32};
  EXPECT_EQ(p.to_string(), "2001:db8::/32");
}

TEST(Ipv6Prefix, ParseAndFormat) {
  auto p = Ipv6Prefix::parse("2001:db8::/32");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 32);
  EXPECT_EQ(p->to_string(), "2001:db8::/32");
  EXPECT_FALSE(Ipv6Prefix::parse("2001:db8::").has_value());
  EXPECT_FALSE(Ipv6Prefix::parse("2001:db8::/129").has_value());
  EXPECT_FALSE(Ipv6Prefix::parse("2001:db8::/-1").has_value());
  EXPECT_FALSE(Ipv6Prefix::parse("2001:db8::/x").has_value());
  EXPECT_FALSE(Ipv6Prefix::parse("2001:db8::/64x").has_value());
}

TEST(Ipv6Prefix, ContainsAddress) {
  auto p = *Ipv6Prefix::parse("2001:db8::/32");
  EXPECT_TRUE(p.contains(*Ipv6Address::parse("2001:db8::1")));
  EXPECT_TRUE(p.contains(*Ipv6Address::parse("2001:db8:ffff::1")));
  EXPECT_FALSE(p.contains(*Ipv6Address::parse("2001:db9::1")));
}

TEST(Ipv6Prefix, ContainsPrefix) {
  auto p = *Ipv6Prefix::parse("2001:db8::/32");
  EXPECT_TRUE(p.contains(*Ipv6Prefix::parse("2001:db8:1::/48")));
  EXPECT_TRUE(p.contains(p));
  EXPECT_FALSE(p.contains(*Ipv6Prefix::parse("2001::/16")));
  EXPECT_FALSE(p.contains(*Ipv6Prefix::parse("2001:db9::/48")));
}

TEST(Ipv6Prefix, ZeroLengthContainsEverything) {
  Ipv6Prefix all{Ipv6Address{}, 0};
  EXPECT_TRUE(all.contains(*Ipv6Address::parse("ffff::1")));
  EXPECT_TRUE(all.contains(*Ipv6Prefix::parse("::/0")));
}

TEST(Ipv6Prefix, SubprefixCount) {
  auto p = *Ipv6Prefix::parse("2001:db8::/32");
  EXPECT_EQ(p.subprefix_count(64), Uint128::pow2(32));
  EXPECT_EQ(p.subprefix_count(33), Uint128{2});
  EXPECT_EQ(p.subprefix_count(32), Uint128{1});
  EXPECT_EQ(p.subprefix_count(31), Uint128{});
}

TEST(Ipv6Prefix, NthSubprefix) {
  auto p = *Ipv6Prefix::parse("2001:db8::/32");
  EXPECT_EQ(p.nth_subprefix(64, Uint128{0}).to_string(), "2001:db8::/64");
  EXPECT_EQ(p.nth_subprefix(64, Uint128{1}).to_string(), "2001:db8:0:1::/64");
  EXPECT_EQ(p.nth_subprefix(48, Uint128{0xffff}).to_string(),
            "2001:db8:ffff::/48");
}

TEST(Ipv6Prefix, AddressWithSuffix) {
  auto p = *Ipv6Prefix::parse("2001:db8:0:1::/64");
  EXPECT_EQ(p.address_with_suffix(Uint128{0x1234}).to_string(),
            "2001:db8:0:1::1234");
  // Suffix is masked to the host bits.
  EXPECT_EQ(p.address_with_suffix(Uint128::max()).to_string(),
            "2001:db8:0:1:ffff:ffff:ffff:ffff");
}

TEST(Ipv6Prefix, OrderingAndHash) {
  auto a = *Ipv6Prefix::parse("2001:db8::/32");
  auto b = *Ipv6Prefix::parse("2001:db8::/48");
  EXPECT_LT(a, b);
  EXPECT_NE(std::hash<Ipv6Prefix>{}(a), std::hash<Ipv6Prefix>{}(b));
}

// Property: nth_subprefix enumerates disjoint prefixes covering the parent.
class SubprefixSweep : public ::testing::TestWithParam<int> {};

TEST_P(SubprefixSweep, DisjointAndContained) {
  const int sublen = GetParam();
  auto parent = *Ipv6Prefix::parse("2001:db8::/48");
  const Uint128 n = parent.subprefix_count(sublen);
  ASSERT_TRUE(n.fits_u64());
  Ipv6Prefix prev;
  for (std::uint64_t i = 0; i < n.to_u64(); ++i) {
    Ipv6Prefix sub = parent.nth_subprefix(sublen, Uint128{i});
    EXPECT_TRUE(parent.contains(sub));
    EXPECT_EQ(sub.length(), sublen);
    if (i > 0) {
      EXPECT_FALSE(sub.contains(prev));
      EXPECT_FALSE(prev.contains(sub));
      EXPECT_LT(prev, sub);
    }
    prev = sub;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, SubprefixSweep,
                         ::testing::Values(49, 52, 56, 60));

}  // namespace
}  // namespace xmap::net
