// Property tests for the word-wise Internet checksum and the RFC 1624
// incremental update: both must agree exactly with a naive byte-pair
// reference on every length, alignment and patch sequence.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "netbase/checksum.h"
#include "netbase/random.h"

namespace xmap::net {
namespace {

// Byte-pair RFC 1071 reference: no word tricks, no carry shortcuts.
std::uint16_t naive_checksum(std::span<const std::uint8_t> data) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint64_t>(data[i]) << 8 | data[i + 1];
  }
  if (data.size() % 2 != 0) {
    sum += static_cast<std::uint64_t>(data.back()) << 8;
  }
  while ((sum >> 16) != 0) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

TEST(ChecksumProperty, MatchesNaiveOnEveryLengthAndAlignment) {
  Rng rng{0xc0ffee};
  std::vector<std::uint8_t> buf(640);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next());
  // Every start offset 0..15 (unaligned word loads) crossed with lengths
  // around the 8/32-byte unroll boundaries plus odd tails.
  for (std::size_t offset = 0; offset < 16; ++offset) {
    for (std::size_t len = 0; len <= 80; ++len) {
      const std::span<const std::uint8_t> s{buf.data() + offset, len};
      EXPECT_EQ(internet_checksum(s), naive_checksum(s))
          << "offset=" << offset << " len=" << len;
    }
    const std::span<const std::uint8_t> big{buf.data() + offset,
                                            buf.size() - 16};
    EXPECT_EQ(internet_checksum(big), naive_checksum(big));
  }
}

TEST(ChecksumProperty, SimdPathMatchesReferenceAccumulator) {
  // Lengths chosen to straddle the SIMD dispatch threshold (128 bytes) and
  // its 64-byte block granularity, crossed with unaligned starts and odd
  // tails. The accumulators only have to agree mod 0xffff (and share
  // zeroness) — compare folded and finished forms, plus a chained second
  // region to catch a mis-combined carry-in.
  Rng rng{0xbadcab1e};
  std::vector<std::uint8_t> buf(4096 + 64);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next());
  const std::size_t lens[] = {64,  127, 128, 129, 192, 255,  256, 1279,
                              1280, 1281, 1337, 2048, 4095, 4096};
  for (std::size_t offset = 0; offset < 33; offset += offset < 4 ? 1 : 13) {
    for (const std::size_t len : lens) {
      const std::span<const std::uint8_t> s{buf.data() + offset, len};
      const std::uint32_t fast = checksum_accumulate(s);
      const std::uint32_t ref = checksum_accumulate_reference(s);
      EXPECT_EQ(checksum_fold(fast) % 0xffff, checksum_fold(ref) % 0xffff)
          << "offset=" << offset << " len=" << len;
      EXPECT_EQ(fast == 0, ref == 0) << "offset=" << offset << " len=" << len;
      EXPECT_EQ(checksum_finish(fast), naive_checksum(s))
          << "offset=" << offset << " len=" << len;
      // Chained: feed each accumulator form into a second even-length
      // region and require identical final checksums.
      const std::span<const std::uint8_t> s2{buf.data(), 256};
      EXPECT_EQ(checksum_finish(checksum_accumulate(s2, fast)),
                checksum_finish(checksum_accumulate_reference(s2, ref)))
          << "offset=" << offset << " len=" << len;
    }
  }
  // All-zero data must yield a zero accumulator on both paths (the one
  // congruence class where 0 and 0xffff differ after ~).
  const std::vector<std::uint8_t> zeros(512, 0);
  EXPECT_EQ(checksum_accumulate(zeros), 0u);
  EXPECT_EQ(checksum_accumulate_reference(zeros), 0u);
}

TEST(ChecksumProperty, EvenChunkedAccumulationMatchesWholeBuffer) {
  Rng rng{7};
  std::vector<std::uint8_t> buf(512);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next());
  for (int round = 0; round < 64; ++round) {
    // Random even split points: accumulating even-length chunks must equal
    // one pass (per-call odd-tail padding only applies to odd chunks).
    std::uint32_t acc = 0;
    std::size_t pos = 0;
    while (pos < buf.size()) {
      std::size_t len = 2 * rng.uniform(64);
      len = std::min(len, buf.size() - pos);
      if (len % 2 != 0) --len;
      if (len == 0) len = std::min<std::size_t>(2, buf.size() - pos);
      acc = checksum_accumulate({buf.data() + pos, len}, acc);
      pos += len;
    }
    EXPECT_EQ(checksum_finish(acc), naive_checksum(buf));
  }
}

TEST(ChecksumProperty, IncrementalUpdateMatchesFullRecompute) {
  Rng rng{0xfeed};
  std::vector<std::uint8_t> buf(256);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next());
  std::uint16_t csum = internet_checksum(buf);
  // Long random patch sequence against one running checksum: any drift
  // (lost carry, 0x0000/0xffff confusion) compounds and gets caught.
  for (int round = 0; round < 500; ++round) {
    const std::size_t len = 2 * (1 + rng.uniform(16));
    const std::size_t offset = 2 * rng.uniform((buf.size() - len) / 2 + 1);
    std::vector<std::uint8_t> before(buf.begin() +
                                         static_cast<std::ptrdiff_t>(offset),
                                     buf.begin() +
                                         static_cast<std::ptrdiff_t>(offset +
                                                                     len));
    for (std::size_t i = 0; i < len; ++i) {
      // Bias towards all-zero / all-ones patches to stress the boundary
      // values of one's-complement arithmetic.
      const std::uint64_t coin = rng.uniform(4);
      buf[offset + i] = coin == 0   ? 0x00
                        : coin == 1 ? 0xff
                                    : static_cast<std::uint8_t>(rng.next());
    }
    csum = checksum_update(csum, before,
                           {buf.data() + offset, len});
    ASSERT_EQ(csum, internet_checksum(buf))
        << "round=" << round << " offset=" << offset << " len=" << len;
  }
}

TEST(ChecksumProperty, UpdateIsExactForNonZeroCoverage) {
  // Degenerate-but-legal patches: identical before/after, full-buffer
  // rewrite, minimum-size word.
  std::vector<std::uint8_t> buf{0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc};
  std::uint16_t csum = internet_checksum(buf);
  EXPECT_EQ(checksum_update(csum, buf, buf), csum);

  std::vector<std::uint8_t> after{0x00, 0x01, 0x02, 0x03, 0x04, 0x05};
  csum = checksum_update(csum, buf, after);
  EXPECT_EQ(csum, internet_checksum(after));

  const std::uint8_t old_word[2] = {after[2], after[3]};
  after[2] = 0xff;
  after[3] = 0xfe;
  csum = checksum_update(csum, old_word,
                         {after.data() + 2, 2});
  EXPECT_EQ(csum, internet_checksum(after));
}

}  // namespace
}  // namespace xmap::net
