#include "netbase/checksum.h"

#include <gtest/gtest.h>

#include <vector>

namespace xmap::net {
namespace {

TEST(Checksum, Rfc1071Example) {
  // Classic RFC 1071 worked example: 00 01 f2 03 f4 f5 f6 f7.
  const std::vector<std::uint8_t> data{0x00, 0x01, 0xf2, 0x03,
                                       0xf4, 0xf5, 0xf6, 0xf7};
  // Sum = 0001 + f203 + f4f5 + f6f7 = 2DDF0 -> fold -> DDF2; ~ = 220D.
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, EmptyBuffer) {
  EXPECT_EQ(internet_checksum({}), 0xffff);
}

TEST(Checksum, OddLengthPadsWithZero) {
  const std::vector<std::uint8_t> data{0x01};
  // Word = 0x0100; ~0x0100 = 0xfeff.
  EXPECT_EQ(internet_checksum(data), 0xfeff);
}

TEST(Checksum, VerifyingIncludedChecksumYieldsZero) {
  std::vector<std::uint8_t> data{0x45, 0x00, 0x00, 0x30, 0x44, 0x22,
                                 0x40, 0x00, 0x80, 0x06, 0x00, 0x00,
                                 0x8c, 0x7c, 0x19, 0xac, 0xae, 0x24,
                                 0x1e, 0x2b};
  const std::uint16_t csum = internet_checksum(data);
  data[10] = static_cast<std::uint8_t>(csum >> 8);
  data[11] = static_cast<std::uint8_t>(csum & 0xff);
  EXPECT_EQ(internet_checksum(data), 0);
}

TEST(Checksum, PseudoHeaderDependsOnAddresses) {
  const auto src1 = *Ipv6Address::parse("2001:db8::1");
  const auto src2 = *Ipv6Address::parse("2001:db8::2");
  const auto dst = *Ipv6Address::parse("2001:db8::ff");
  const std::vector<std::uint8_t> l4{0x80, 0x00, 0x00, 0x00, 0x12, 0x34,
                                     0x00, 0x01};
  EXPECT_NE(ipv6_upper_layer_checksum(src1, dst, 58, l4),
            ipv6_upper_layer_checksum(src2, dst, 58, l4));
}

TEST(Checksum, PseudoHeaderDependsOnProtocol) {
  const auto src = *Ipv6Address::parse("2001:db8::1");
  const auto dst = *Ipv6Address::parse("2001:db8::ff");
  const std::vector<std::uint8_t> l4{0x01, 0x02, 0x03, 0x04};
  EXPECT_NE(ipv6_upper_layer_checksum(src, dst, 6, l4),
            ipv6_upper_layer_checksum(src, dst, 17, l4));
}

TEST(Checksum, InsertedChecksumVerifiesToZero) {
  const auto src = *Ipv6Address::parse("fe80::1");
  const auto dst = *Ipv6Address::parse("ff02::1");
  std::vector<std::uint8_t> l4{0x80, 0x00, 0x00, 0x00, 0xab, 0xcd,
                               0x00, 0x07, 0xde, 0xad, 0xbe, 0xef};
  const std::uint16_t csum = ipv6_upper_layer_checksum(src, dst, 58, l4);
  l4[2] = static_cast<std::uint8_t>(csum >> 8);
  l4[3] = static_cast<std::uint8_t>(csum & 0xff);
  EXPECT_EQ(ipv6_upper_layer_checksum(src, dst, 58, l4), 0);
}

TEST(Checksum, AccumulateIsAssociativeAcrossChunks) {
  const std::vector<std::uint8_t> data{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::uint32_t acc = 0;
  acc = checksum_accumulate(std::span{data}.subspan(0, 4), acc);
  acc = checksum_accumulate(std::span{data}.subspan(4), acc);
  EXPECT_EQ(checksum_finish(acc), internet_checksum(data));
}

}  // namespace
}  // namespace xmap::net
