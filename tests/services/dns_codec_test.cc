#include "services/dns_codec.h"

#include <gtest/gtest.h>

namespace xmap::svc {
namespace {

TEST(DnsCodec, QueryRoundTrip) {
  DnsMessage q = make_query(0x1234, "www.example.com", DnsType::kAaaa);
  auto wire = q.encode();
  ASSERT_FALSE(wire.empty());
  auto decoded = DnsMessage::decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->id, 0x1234);
  EXPECT_FALSE(decoded->is_response);
  EXPECT_TRUE(decoded->recursion_desired);
  ASSERT_EQ(decoded->questions.size(), 1u);
  EXPECT_EQ(decoded->questions[0].name, "www.example.com");
  EXPECT_EQ(decoded->questions[0].type, DnsType::kAaaa);
  EXPECT_EQ(decoded->questions[0].klass, DnsClass::kIn);
}

TEST(DnsCodec, VersionBindQuery) {
  DnsMessage q = make_version_query(7);
  auto decoded = DnsMessage::decode(q.encode());
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->questions.size(), 1u);
  EXPECT_EQ(decoded->questions[0].name, "version.bind");
  EXPECT_EQ(decoded->questions[0].type, DnsType::kTxt);
  EXPECT_EQ(decoded->questions[0].klass, DnsClass::kChaos);
}

TEST(DnsCodec, ResponseWithARecord) {
  DnsMessage resp;
  resp.id = 9;
  resp.is_response = true;
  resp.recursion_available = true;
  resp.questions.push_back(DnsQuestion{"a.example", DnsType::kA, DnsClass::kIn});
  resp.answers.push_back(DnsRecord::a("a.example", 0x05010203, 300));
  auto decoded = DnsMessage::decode(resp.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->is_response);
  EXPECT_TRUE(decoded->recursion_available);
  ASSERT_EQ(decoded->answers.size(), 1u);
  EXPECT_EQ(decoded->answers[0].name, "a.example");
  EXPECT_EQ(decoded->answers[0].ttl, 300u);
  ASSERT_EQ(decoded->answers[0].rdata.size(), 4u);
  EXPECT_EQ(decoded->answers[0].rdata[0], 5);
  EXPECT_EQ(decoded->answers[0].rdata[3], 3);
}

TEST(DnsCodec, TxtRecordCarriesText) {
  DnsRecord r = DnsRecord::txt("version.bind", DnsClass::kChaos,
                               "dnsmasq-2.45", 0);
  ASSERT_GE(r.rdata.size(), 13u);
  EXPECT_EQ(r.rdata[0], 12);  // length byte
  EXPECT_EQ(std::string(r.rdata.begin() + 1, r.rdata.end()), "dnsmasq-2.45");
}

TEST(DnsCodec, RcodeRoundTrip) {
  DnsMessage m;
  m.id = 1;
  m.is_response = true;
  m.rcode = DnsRcode::kNxDomain;
  auto decoded = DnsMessage::decode(m.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->rcode, DnsRcode::kNxDomain);
}

TEST(DnsCodec, RootNameEncodes) {
  DnsMessage m;
  m.id = 2;
  m.questions.push_back(DnsQuestion{"", DnsType::kNs, DnsClass::kIn});
  auto decoded = DnsMessage::decode(m.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->questions[0].name, "");
}

TEST(DnsCodec, DecodeRejectsTruncated) {
  EXPECT_FALSE(DnsMessage::decode(std::vector<std::uint8_t>(4)).has_value());
  DnsMessage q = make_query(1, "example.com", DnsType::kA);
  auto wire = q.encode();
  wire.resize(wire.size() - 3);
  EXPECT_FALSE(DnsMessage::decode(wire).has_value());
}

TEST(DnsCodec, DecodeRejectsHostileCounts) {
  std::vector<std::uint8_t> wire(12, 0);
  wire[4] = 0xff;  // qdcount = 0xff00
  EXPECT_FALSE(DnsMessage::decode(wire).has_value());
}

TEST(DnsCodec, DecodeRejectsPointerLoop) {
  // Header + a name that is a compression pointer to itself.
  std::vector<std::uint8_t> wire(12, 0);
  wire[5] = 1;  // one question
  wire.push_back(0xc0);
  wire.push_back(12);  // pointer to offset 12 (itself)
  wire.push_back(0);
  wire.push_back(1);
  wire.push_back(0);
  wire.push_back(1);
  EXPECT_FALSE(DnsMessage::decode(wire).has_value());
}

TEST(DnsCodec, CompressedNameDecodes) {
  // Build a response manually where the answer name points at the question.
  DnsMessage q = make_query(5, "x.y", DnsType::kA);
  auto wire = q.encode();
  // Append one answer: pointer to question name at offset 12.
  wire[7] = 1;  // ancount = 1
  const std::uint8_t answer[] = {0xc0, 12,   0, 1, 0, 1, 0, 0,
                                 0,    60,   0, 4, 1, 2, 3, 4};
  wire.insert(wire.end(), std::begin(answer), std::end(answer));
  auto decoded = DnsMessage::decode(wire);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->answers.size(), 1u);
  EXPECT_EQ(decoded->answers[0].name, "x.y");
}

TEST(DnsCodec, LongLabelRejectedOnEncode) {
  DnsMessage m;
  m.id = 3;
  m.questions.push_back(
      DnsQuestion{std::string(70, 'a'), DnsType::kA, DnsClass::kIn});
  EXPECT_TRUE(m.encode().empty());
}

}  // namespace
}  // namespace xmap::svc
