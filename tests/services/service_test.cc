#include <gtest/gtest.h>

#include <string>

#include "services/dns_codec.h"
#include "services/service.h"
#include "services/service_host.h"

namespace xmap::svc {
namespace {

using net::Ipv6Address;

const Ipv6Address kClient = *Ipv6Address::parse("2001:db8:1::1");
const Ipv6Address kDevice = *Ipv6Address::parse("2001:db8:2::1");

std::string as_text(std::span<const std::uint8_t> data) {
  return std::string{reinterpret_cast<const char*>(data.data()), data.size()};
}

TEST(ServiceMeta, PortsAndTransports) {
  EXPECT_EQ(port_of(ServiceKind::kDns), 53);
  EXPECT_EQ(port_of(ServiceKind::kNtp), 123);
  EXPECT_EQ(port_of(ServiceKind::kFtp), 21);
  EXPECT_EQ(port_of(ServiceKind::kSsh), 22);
  EXPECT_EQ(port_of(ServiceKind::kTelnet), 23);
  EXPECT_EQ(port_of(ServiceKind::kHttp), 80);
  EXPECT_EQ(port_of(ServiceKind::kTls), 443);
  EXPECT_EQ(port_of(ServiceKind::kHttp8080), 8080);
  EXPECT_FALSE(is_tcp(ServiceKind::kDns));
  EXPECT_FALSE(is_tcp(ServiceKind::kNtp));
  for (auto kind : {ServiceKind::kFtp, ServiceKind::kSsh, ServiceKind::kTelnet,
                    ServiceKind::kHttp, ServiceKind::kTls,
                    ServiceKind::kHttp8080}) {
    EXPECT_TRUE(is_tcp(kind)) << service_name(kind);
  }
}

TEST(DnsService, AnswersVersionBind) {
  auto service = make_service(ServiceKind::kDns, {"dnsmasq", "2.45"}, "ZTE");
  auto resp = service->handle_datagram(make_version_query(42).encode());
  ASSERT_TRUE(resp.has_value());
  auto msg = DnsMessage::decode(*resp);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->id, 42);
  EXPECT_TRUE(msg->is_response);
  ASSERT_EQ(msg->answers.size(), 1u);
  const auto& rdata = msg->answers[0].rdata;
  const std::string text(rdata.begin() + 1, rdata.end());
  EXPECT_EQ(text, "dnsmasq-2.45");
}

TEST(DnsService, AnswersARecordAsForwarder) {
  auto service = make_service(ServiceKind::kDns, {"dnsmasq", "2.45"}, "ZTE");
  auto resp =
      service->handle_datagram(make_query(7, "example.com", DnsType::kA).encode());
  ASSERT_TRUE(resp.has_value());
  auto msg = DnsMessage::decode(*resp);
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(msg->recursion_available);  // open forwarder
  ASSERT_EQ(msg->answers.size(), 1u);
  EXPECT_EQ(msg->answers[0].type, DnsType::kA);
  ASSERT_EQ(msg->answers[0].rdata.size(), 4u);
}

TEST(DnsService, StableAnswersForSameName) {
  auto service = make_service(ServiceKind::kDns, {"dnsmasq", "2.45"}, "ZTE");
  auto a = service->handle_datagram(make_query(1, "x.com", DnsType::kA).encode());
  auto b = service->handle_datagram(make_query(2, "x.com", DnsType::kA).encode());
  ASSERT_TRUE(a.has_value() && b.has_value());
  auto ma = DnsMessage::decode(*a), mb = DnsMessage::decode(*b);
  EXPECT_EQ(ma->answers[0].rdata, mb->answers[0].rdata);
}

TEST(DnsService, IgnoresGarbageAndResponses) {
  auto service = make_service(ServiceKind::kDns, {"dnsmasq", "2.45"}, "ZTE");
  EXPECT_FALSE(service->handle_datagram(std::vector<std::uint8_t>{1, 2, 3})
                   .has_value());
  DnsMessage already_response;
  already_response.is_response = true;
  already_response.questions.push_back(
      DnsQuestion{"a", DnsType::kA, DnsClass::kIn});
  EXPECT_FALSE(
      service->handle_datagram(already_response.encode()).has_value());
}

TEST(NtpService, AnswersMode3WithMode4Version4) {
  auto service = make_service(ServiceKind::kNtp, {"ntpd", "4.2.8"}, "Zyxel");
  Bytes req(48, 0);
  req[0] = (4 << 3) | 3;  // version 4, mode 3 (client)
  req[40] = 0xaa;         // transmit timestamp marker
  auto resp = service->handle_datagram(req);
  ASSERT_TRUE(resp.has_value());
  ASSERT_EQ(resp->size(), 48u);
  EXPECT_EQ(((*resp)[0] >> 3) & 0x7, 4);  // version 4
  EXPECT_EQ((*resp)[0] & 0x7, 4);         // mode 4 (server)
  EXPECT_EQ((*resp)[24], 0xaa);           // originate = client transmit
}

TEST(NtpService, Mode6ReadvarCarriesVersionString) {
  auto service = make_service(ServiceKind::kNtp, {"ntpd", "4.2.8"}, "Zyxel");
  Bytes req(12, 0);
  req[0] = (2 << 3) | 6;  // control message
  req[1] = 2;             // READVAR
  req[2] = 0x12;          // sequence
  auto resp = service->handle_datagram(req);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ((*resp)[0] & 0x07, 6);
  EXPECT_EQ((*resp)[1] & 0x80, 0x80);  // response bit
  EXPECT_EQ((*resp)[2], 0x12);
  const std::string text(resp->begin() + 12, resp->end());
  EXPECT_NE(text.find("version=\"ntpd-4.2.8\""), std::string::npos);
}

TEST(NtpService, Mode6NonReadvarIgnored) {
  auto service = make_service(ServiceKind::kNtp, {"ntpd", "4.2.8"}, "Zyxel");
  Bytes req(12, 0);
  req[0] = (2 << 3) | 6;
  req[1] = 1;  // READSTAT, not served
  EXPECT_FALSE(service->handle_datagram(req).has_value());
}

TEST(NtpService, IgnoresNonClientModes) {
  auto service = make_service(ServiceKind::kNtp, {"ntpd", "4.2.8"}, "Zyxel");
  Bytes req(48, 0);
  req[0] = (4 << 3) | 4;  // mode 4: server-to-server, not a client request
  EXPECT_FALSE(service->handle_datagram(req).has_value());
  EXPECT_FALSE(service->handle_datagram(Bytes(20)).has_value());
}

TEST(FtpService, GreetingCarriesSoftwareAndVendor) {
  auto service =
      make_service(ServiceKind::kFtp, {"GNU Inetutils", "1.4.1"}, "Fiberhome");
  const std::string banner = as_text(service->greeting());
  EXPECT_NE(banner.find("220 "), std::string::npos);
  EXPECT_NE(banner.find("Fiberhome"), std::string::npos);
  EXPECT_NE(banner.find("GNU Inetutils-1.4.1"), std::string::npos);
}

TEST(FtpService, UserCommandGetsPasswordPrompt) {
  auto service =
      make_service(ServiceKind::kFtp, {"vsftpd", "2.3.4"}, "D-Link");
  const std::string user = "USER admin\r\n";
  auto resp = service->handle_stream(
      std::vector<std::uint8_t>(user.begin(), user.end()));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(as_text(*resp).substr(0, 3), "331");
}

TEST(SshService, VersionStringFormat) {
  auto service = make_service(ServiceKind::kSsh, {"dropbear", "0.46"}, "ZTE");
  EXPECT_EQ(as_text(service->greeting()), "SSH-2.0-dropbear_0.46\r\n");
}

TEST(TelnetService, LoginPromptWithVendorBanner) {
  auto service =
      make_service(ServiceKind::kTelnet, {"telnetd", ""}, "China Unicom");
  const std::string banner = as_text(service->greeting());
  EXPECT_NE(banner.find("China Unicom"), std::string::npos);
  EXPECT_NE(banner.find("login:"), std::string::npos);
  // IAC negotiation preamble present.
  EXPECT_EQ(service->greeting()[0], 0xff);
}

TEST(HttpService, ServesLoginPageWithServerHeader) {
  auto service =
      make_service(ServiceKind::kHttp, {"micro_httpd", "1.0"}, "TP-Link");
  const std::string get = "GET / HTTP/1.1\r\nHost: x\r\n\r\n";
  auto resp =
      service->handle_stream(std::vector<std::uint8_t>(get.begin(), get.end()));
  ASSERT_TRUE(resp.has_value());
  const std::string text = as_text(*resp);
  EXPECT_EQ(text.substr(0, 15), "HTTP/1.1 200 OK");
  EXPECT_NE(text.find("Server: micro_httpd-1.0"), std::string::npos);
  EXPECT_NE(text.find("Router Login"), std::string::npos);
  EXPECT_NE(text.find("TP-Link"), std::string::npos);
}

TEST(HttpService, IgnoresNonHttp) {
  auto service =
      make_service(ServiceKind::kHttp, {"micro_httpd", "1.0"}, "TP-Link");
  EXPECT_FALSE(
      service->handle_stream(std::vector<std::uint8_t>{0x16, 0x03}).has_value());
}

TEST(TlsService, RespondsToClientHelloWithCertSummary) {
  auto service =
      make_service(ServiceKind::kTls, {"embedded-tls", "1.0"}, "AVM GmbH");
  Bytes hello{0x16, 0x03, 0x01, 0x00, 0x05, 1, 0, 0, 1, 0};
  auto resp = service->handle_stream(hello);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ((*resp)[0], 0x16);
  const std::string text = as_text(*resp);
  EXPECT_NE(text.find("CN=AVM GmbH"), std::string::npos);
  EXPECT_NE(text.find("embedded-tls-1.0"), std::string::npos);
}

TEST(TlsService, IgnoresNonHandshakeBytes) {
  auto service =
      make_service(ServiceKind::kTls, {"embedded-tls", "1.0"}, "AVM");
  EXPECT_FALSE(service->handle_stream(Bytes{'G', 'E', 'T'}).has_value());
}

// ---------------------------------------------------------------------------
// ServiceHost: packet-level behaviour.
// ---------------------------------------------------------------------------

class ServiceHostTest : public ::testing::Test {
 protected:
  ServiceHostTest() {
    host_.bind(make_service(ServiceKind::kDns, {"dnsmasq", "2.45"}, "ZTE"));
    host_.bind(make_service(ServiceKind::kSsh, {"dropbear", "0.46"}, "ZTE"));
    host_.bind(make_service(ServiceKind::kHttp, {"micro_httpd", "1.0"}, "ZTE"));
  }
  ServiceHost host_;
};

TEST_F(ServiceHostTest, BindAndQuery) {
  EXPECT_TRUE(host_.has(ServiceKind::kDns));
  EXPECT_TRUE(host_.has(ServiceKind::kSsh));
  EXPECT_FALSE(host_.has(ServiceKind::kFtp));
  EXPECT_EQ(host_.service_count(), 3u);
  ASSERT_NE(host_.endpoint(53), nullptr);
  EXPECT_EQ(host_.endpoint(53)->software().software, "dnsmasq");
  EXPECT_EQ(host_.endpoint(9999), nullptr);
}

TEST_F(ServiceHostTest, UdpRequestResponse) {
  auto query = make_version_query(3).encode();
  auto packet = pkt::build_udp(kClient, kDevice, 5353, 53, query);
  auto out = host_.handle(packet, kDevice);
  ASSERT_EQ(out.size(), 1u);
  pkt::Ipv6View ip{out[0]};
  EXPECT_EQ(ip.src(), kDevice);
  EXPECT_EQ(ip.dst(), kClient);
  pkt::UdpView udp{ip.payload()};
  ASSERT_TRUE(udp.valid());
  EXPECT_EQ(udp.src_port(), 53);
  EXPECT_EQ(udp.dst_port(), 5353);
  auto msg = DnsMessage::decode(udp.payload());
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(msg->is_response);
}

TEST_F(ServiceHostTest, UdpClosedPortYieldsPortUnreachable) {
  auto packet = pkt::build_udp(kClient, kDevice, 5353, 9999,
                               std::vector<std::uint8_t>{1});
  auto out = host_.handle(packet, kDevice);
  ASSERT_EQ(out.size(), 1u);
  pkt::Ipv6View ip{out[0]};
  pkt::Icmpv6View icmp{ip.payload()};
  EXPECT_EQ(icmp.type(), pkt::Icmpv6Type::kDestUnreachable);
  EXPECT_EQ(icmp.code(),
            static_cast<std::uint8_t>(pkt::UnreachCode::kPortUnreachable));
}

TEST_F(ServiceHostTest, TcpSynToOpenPortGetsSynAck) {
  auto syn = pkt::build_tcp(kClient, kDevice, 40000, 22, 100, 0, pkt::kTcpSyn,
                            65535);
  auto out = host_.handle(syn, kDevice);
  ASSERT_EQ(out.size(), 1u);
  pkt::TcpView tcp{pkt::Ipv6View{out[0]}.payload()};
  EXPECT_EQ(tcp.flags(), pkt::kTcpSyn | pkt::kTcpAck);
  EXPECT_EQ(tcp.ack(), 101u);
  EXPECT_EQ(tcp.src_port(), 22);
}

TEST_F(ServiceHostTest, TcpSynToClosedPortGetsRst) {
  auto syn = pkt::build_tcp(kClient, kDevice, 40000, 8080, 100, 0,
                            pkt::kTcpSyn, 65535);
  auto out = host_.handle(syn, kDevice);
  ASSERT_EQ(out.size(), 1u);
  pkt::TcpView tcp{pkt::Ipv6View{out[0]}.payload()};
  EXPECT_TRUE(tcp.flags() & pkt::kTcpRst);
}

TEST_F(ServiceHostTest, BareAckTriggersGreeting) {
  auto ack =
      pkt::build_tcp(kClient, kDevice, 40000, 22, 101, 1, pkt::kTcpAck, 65535);
  auto out = host_.handle(ack, kDevice);
  ASSERT_EQ(out.size(), 1u);
  pkt::TcpView tcp{pkt::Ipv6View{out[0]}.payload()};
  EXPECT_EQ(as_text(tcp.payload()).substr(0, 8), "SSH-2.0-");
}

TEST_F(ServiceHostTest, BareAckOnSilentServiceGetsNothing) {
  // HTTP has no greeting; a bare ACK produces no packet.
  auto ack =
      pkt::build_tcp(kClient, kDevice, 40000, 80, 101, 1, pkt::kTcpAck, 65535);
  EXPECT_TRUE(host_.handle(ack, kDevice).empty());
}

TEST_F(ServiceHostTest, DataSegmentGetsServiceResponse) {
  const std::string get = "GET / HTTP/1.1\r\n\r\n";
  auto data = pkt::build_tcp(kClient, kDevice, 40000, 80, 101, 1,
                             pkt::kTcpPsh | pkt::kTcpAck, 65535,
                             std::vector<std::uint8_t>(get.begin(), get.end()));
  auto out = host_.handle(data, kDevice);
  ASSERT_EQ(out.size(), 1u);
  pkt::TcpView tcp{pkt::Ipv6View{out[0]}.payload()};
  EXPECT_EQ(as_text(tcp.payload()).substr(0, 8), "HTTP/1.1");
  // The response acknowledges the client's data.
  EXPECT_EQ(tcp.ack(), 101u + get.size());
}

TEST_F(ServiceHostTest, RstIsNeverAnswered) {
  auto rst =
      pkt::build_tcp(kClient, kDevice, 40000, 22, 1, 0, pkt::kTcpRst, 0);
  EXPECT_TRUE(host_.handle(rst, kDevice).empty());
  auto rst_closed =
      pkt::build_tcp(kClient, kDevice, 40000, 7777, 1, 0, pkt::kTcpRst, 0);
  EXPECT_TRUE(host_.handle(rst_closed, kDevice).empty());
}

TEST_F(ServiceHostTest, FinGetsFinAck) {
  auto fin = pkt::build_tcp(kClient, kDevice, 40000, 22, 200, 5,
                            pkt::kTcpFin | pkt::kTcpAck, 65535);
  auto out = host_.handle(fin, kDevice);
  ASSERT_EQ(out.size(), 1u);
  pkt::TcpView tcp{pkt::Ipv6View{out[0]}.payload()};
  EXPECT_TRUE(tcp.flags() & pkt::kTcpFin);
  EXPECT_EQ(tcp.ack(), 201u);
}

TEST_F(ServiceHostTest, CorruptChecksumIgnored) {
  auto query = make_version_query(3).encode();
  auto packet = pkt::build_udp(kClient, kDevice, 5353, 53, query);
  packet.back() ^= 0xff;
  EXPECT_TRUE(host_.handle(packet, kDevice).empty());
}

TEST_F(ServiceHostTest, SynAckSequencesAreDeterministic) {
  auto syn = pkt::build_tcp(kClient, kDevice, 40000, 22, 100, 0, pkt::kTcpSyn,
                            65535);
  auto out1 = host_.handle(syn, kDevice);
  auto out2 = host_.handle(syn, kDevice);
  ASSERT_EQ(out1.size(), 1u);
  ASSERT_EQ(out2.size(), 1u);
  EXPECT_EQ(pkt::TcpView{pkt::Ipv6View{out1[0]}.payload()}.seq(),
            pkt::TcpView{pkt::Ipv6View{out2[0]}.payload()}.seq());
}

}  // namespace
}  // namespace xmap::svc
