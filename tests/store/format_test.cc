// Store format round-trip and corruption robustness.
//
// The loader's contract: a byte-identical round-trip for any record set,
// and a refusal (precise diagnostic, no crash, no partial result) for any
// truncated, bit-flipped or version-skewed file. The corruption tests are
// property-style: flip one bit at many offsets / cut the file at many
// lengths and require every mutation to be rejected.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "store/snapshot.h"
#include "store/writer.h"

namespace xmap::store {
namespace {

using net::Ipv6Address;
using net::Uint128;

Record make_record(std::uint64_t i) {
  Record r;
  r.key = Ipv6Address::from_value(Uint128{0x20010db800000000ULL + i / 7,
                                          i * 0x9e3779b97f4a7c15ULL});
  r.probe_dst = Ipv6Address::from_value(r.key.value() ^ Uint128{0xffff});
  r.kind = static_cast<std::uint8_t>(i % 5);
  r.icmp_code = static_cast<std::uint8_t>(i % 3);
  r.hop_limit = static_cast<std::uint8_t>(i % 64);
  r.flags = i % 11 == 0 ? kFlagLoopCandidate : std::uint8_t{0};
  r.services = static_cast<std::uint16_t>(i % 8);
  r.responses = 1 + i % 4;
  r.first_us = i * 37;
  return r;
}

std::string build_image(int n_records, std::uint32_t block_bytes = 512) {
  StoreBuilder builder{block_bytes};
  const std::uint16_t cisco = builder.vendor_id("cisco");
  const std::uint16_t huawei = builder.vendor_id("huawei");
  for (int i = 0; i < n_records; ++i) {
    Record r = make_record(static_cast<std::uint64_t>(i));
    r.vendor = i % 3 == 0 ? cisco : i % 3 == 1 ? huawei : std::uint16_t{0};
    builder.add(r);
  }
  GeoEntry geo;
  geo.prefix = *net::Ipv6Prefix::parse("2001:db8::/32");
  geo.asn = 64500;
  geo.country = {'D', 'E'};
  geo.as_name = "TEST-AS";
  builder.add_geo(geo);
  builder.set_config_fingerprint(0x1234);
  builder.set_git_sha("deadbeef");
  return builder.serialize();
}

TEST(StoreFormat, RoundTripPreservesEveryRecord) {
  const int kN = 500;
  auto loaded = Snapshot::from_buffer(build_image(kN));
  ASSERT_TRUE(loaded.snapshot) << loaded.error;
  const Snapshot& snap = *loaded.snapshot;
  EXPECT_EQ(snap.record_count(), static_cast<std::uint64_t>(kN));
  EXPECT_EQ(snap.git_sha(), "deadbeef");
  EXPECT_EQ(snap.header().config_fingerprint, 0x1234u);

  // Keys come back strictly increasing through the sequential reader.
  std::uint64_t seen = 0;
  net::Uint128 prev{};
  snap.for_each([&](const Record& r) {
    if (seen > 0) EXPECT_LT(prev, r.key.value());
    prev = r.key.value();
    ++seen;
  });
  EXPECT_EQ(seen, static_cast<std::uint64_t>(kN));
  for (int i = 0; i < kN; ++i) {
    const Record expect = make_record(static_cast<std::uint64_t>(i));
    Record got;
    ASSERT_TRUE(snap.lookup(expect.key, &got)) << "record " << i;
    EXPECT_EQ(got.key, expect.key);
    EXPECT_EQ(got.probe_dst, expect.probe_dst);
    EXPECT_EQ(got.kind, expect.kind);
    EXPECT_EQ(got.icmp_code, expect.icmp_code);
    EXPECT_EQ(got.hop_limit, expect.hop_limit);
    EXPECT_EQ(got.flags, expect.flags);
    EXPECT_EQ(got.services, expect.services);
    EXPECT_EQ(got.responses, expect.responses);
    EXPECT_EQ(got.first_us, expect.first_us);
    const char* name_expect =
        i % 3 == 0 ? "cisco" : i % 3 == 1 ? "huawei" : "";
    EXPECT_EQ(snap.vendor_name(got.vendor), name_expect);
  }

  // Misses on either side of the key space.
  Record out;
  EXPECT_FALSE(snap.lookup(Ipv6Address::from_value(Uint128{0, 1}), &out));
  EXPECT_FALSE(snap.lookup(Ipv6Address::from_value(Uint128::max()), &out));
}

TEST(StoreFormat, SerializationIsInsertionOrderIndependent) {
  StoreBuilder fwd{512}, rev{512};
  for (int i = 0; i < 200; ++i) {
    fwd.add(make_record(static_cast<std::uint64_t>(i)));
  }
  for (int i = 199; i >= 0; --i) {
    rev.add(make_record(static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(fwd.serialize(), rev.serialize());
}

TEST(StoreFormat, DuplicateKeysMergeOrderIndependently) {
  Record a = make_record(1);
  a.responses = 3;
  a.services = 0x1;
  a.first_us = 50;
  Record b = a;
  b.responses = 2;
  b.services = 0x4;
  b.flags = kFlagLoopConfirmed;
  b.first_us = 10;  // earlier: b's first-response fields must win

  StoreBuilder ab{512}, ba{512};
  ab.add(a);
  ab.add(b);
  ba.add(b);
  ba.add(a);
  const std::string img = ab.serialize();
  EXPECT_EQ(img, ba.serialize());

  auto loaded = Snapshot::from_buffer(img);
  ASSERT_TRUE(loaded.snapshot) << loaded.error;
  Record got;
  ASSERT_TRUE(loaded.snapshot->lookup(a.key, &got));
  EXPECT_EQ(got.responses, 5u);
  EXPECT_EQ(got.services, 0x5);
  EXPECT_EQ(got.flags, kFlagLoopConfirmed);
  EXPECT_EQ(got.first_us, 10u);
}

TEST(StoreFormat, EveryTruncationIsRejected) {
  const std::string image = build_image(120);
  // Every prefix of the file (sampled stride to keep runtime sane) must
  // refuse to load — never crash, never load partially.
  for (std::size_t cut = 0; cut < image.size();
       cut += cut < 256 ? 1 : 131) {
    auto loaded = Snapshot::from_buffer(image.substr(0, cut));
    EXPECT_FALSE(loaded.snapshot) << "loaded a " << cut << "-byte prefix of a "
                                  << image.size() << "-byte store";
    EXPECT_FALSE(loaded.error.empty());
  }
  // The diagnostic for a tail-truncated file names the missing end marker.
  auto cut = Snapshot::from_buffer(image.substr(0, image.size() - 4));
  ASSERT_FALSE(cut.snapshot);
  EXPECT_NE(cut.error.find("truncated"), std::string::npos) << cut.error;
}

TEST(StoreFormat, EveryBitFlipIsRejected) {
  const std::string image = build_image(120);
  // Flip one bit at a sampled set of byte offsets covering header, blocks,
  // index, geo, vendor table and trailer. Whole-file + per-block checksums
  // must catch every one.
  for (std::size_t off = 0; off < image.size(); off += 37) {
    for (int bit : {0, 7}) {
      std::string mutated = image;
      mutated[off] = static_cast<char>(mutated[off] ^ (1 << bit));
      auto loaded = Snapshot::from_buffer(std::move(mutated));
      EXPECT_FALSE(loaded.snapshot)
          << "bit " << bit << " at offset " << off << " went undetected";
      EXPECT_FALSE(loaded.error.empty());
    }
  }
}

TEST(StoreFormat, ChecksumMismatchDiagnosticNamesBothValues) {
  std::string image = build_image(120);
  image[kHeaderBytes + 10] =
      static_cast<char>(image[kHeaderBytes + 10] ^ 0x10);
  auto loaded = Snapshot::from_buffer(std::move(image));
  ASSERT_FALSE(loaded.snapshot);
  EXPECT_NE(loaded.error.find("checksum mismatch: stored 0x"),
            std::string::npos)
      << loaded.error;
  EXPECT_NE(loaded.error.find("computed 0x"), std::string::npos)
      << loaded.error;
}

TEST(StoreFormat, VersionMismatchIsPreciselyDiagnosed) {
  std::string image = build_image(10);
  // The version field is the u32 after the 8-byte magic.
  image[8] = 9;
  // parse_header doesn't checksum-protect itself; the whole-file checksum
  // does. Recompute it so ONLY the version disagrees.
  FileHeader hdr;
  std::string err;
  ASSERT_TRUE(parse_header(image.data(), image.size(), &hdr, &err)) << err;
  const std::size_t payload = image.size() - kTrailerBytes;
  const std::uint64_t sum = fnv1a(image.data(), payload);
  std::string trailer;
  put_u64(trailer, sum);
  put_u64(trailer, payload);
  trailer.append(kEndMagic, sizeof kEndMagic);
  image.replace(payload, kTrailerBytes, trailer);

  auto loaded = Snapshot::from_buffer(std::move(image));
  ASSERT_FALSE(loaded.snapshot);
  EXPECT_NE(loaded.error.find("version"), std::string::npos) << loaded.error;
  EXPECT_NE(loaded.error.find("9"), std::string::npos) << loaded.error;
  EXPECT_NE(loaded.error.find("reader supports 1"), std::string::npos)
      << loaded.error;
}

TEST(StoreFormat, EmptyStoreLoadsAndMisses) {
  StoreBuilder builder{512};
  auto loaded = Snapshot::from_buffer(builder.serialize());
  ASSERT_TRUE(loaded.snapshot) << loaded.error;
  EXPECT_EQ(loaded.snapshot->record_count(), 0u);
  Record out;
  EXPECT_FALSE(
      loaded.snapshot->lookup(Ipv6Address::from_value(Uint128{1}), &out));
  EXPECT_EQ(loaded.snapshot->for_each([](const Record&) {}), 0u);
}

TEST(StoreFormat, VarintsRejectOverrunsAndOverlongEncodings) {
  // Overrun: continuation bit set at the end of the buffer.
  const char overrun[] = {static_cast<char>(0x80)};
  std::size_t pos = 0;
  std::uint64_t v64 = 0;
  EXPECT_FALSE(get_varint64(overrun, sizeof overrun, &pos, &v64));
  // Over-long: 11 continuation groups cannot encode a u64.
  std::string overlong(10, static_cast<char>(0x80));
  overlong.push_back(0x01);
  pos = 0;
  EXPECT_FALSE(get_varint64(overlong.data(), overlong.size(), &pos, &v64));
  // Round-trip at the extremes.
  for (std::uint64_t val : {0ULL, 1ULL, 127ULL, 128ULL, ~0ULL}) {
    std::string buf;
    put_varint64(buf, val);
    pos = 0;
    ASSERT_TRUE(get_varint64(buf.data(), buf.size(), &pos, &v64));
    EXPECT_EQ(v64, val);
    EXPECT_EQ(pos, buf.size());
  }
  for (const Uint128 val :
       {Uint128{}, Uint128{127}, Uint128{1, 0}, Uint128::max()}) {
    std::string buf;
    put_varint128(buf, val);
    pos = 0;
    Uint128 v128{};
    ASSERT_TRUE(get_varint128(buf.data(), buf.size(), &pos, &v128));
    EXPECT_EQ(v128, val);
  }
}

TEST(StoreFormat, SkipFieldsAgreesWithDecodeFields) {
  // The lookup fast path must land *pos exactly where the full decode
  // does, for records exercising short and long varint bodies.
  for (std::uint64_t i : {0ULL, 1ULL, 63ULL, 64ULL, 1000ULL, 123456789ULL}) {
    Record r = make_record(i);
    r.responses = i * i + 1;
    r.first_us = ~i;
    std::string block;
    encode_record(block, r, nullptr);

    std::size_t full_pos = 0;
    net::Ipv6Address prev;
    Record decoded;
    ASSERT_TRUE(decode_record(block.data(), block.size(), &full_pos, true,
                              &prev, &decoded));
    EXPECT_EQ(decoded, r);

    std::size_t fast_pos = 0;
    Uint128 key{};
    ASSERT_TRUE(decode_key(block.data(), block.size(), &fast_pos, true, &key));
    EXPECT_EQ(key, r.key.value());
    ASSERT_TRUE(skip_fields(block.data(), block.size(), &fast_pos));
    EXPECT_EQ(fast_pos, full_pos);
  }
}

}  // namespace
}  // namespace xmap::store
