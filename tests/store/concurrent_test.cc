// Concurrent readers over one shared snapshot.
//
// The store's serving model is "validate once, then share read-only":
// after load there is no mutation anywhere on the query path (the LC-trie
// is compiled eagerly at load precisely so no reader triggers a lazy
// compile). This test hammers one Snapshot from many threads mixing every
// query style and checks the answers; it runs under the TSan CI job, where
// any data race in the snapshot, trie or decode path is fatal.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "store/query.h"
#include "store/service.h"
#include "store/snapshot.h"
#include "store/writer.h"

namespace xmap::store {
namespace {

using net::Ipv6Address;
using net::Uint128;

constexpr std::uint64_t kRecords = 20000;
constexpr std::uint64_t kMultiplier = 0x9e3779b97f4a7c15ULL;  // odd: bijective

std::unique_ptr<Snapshot> build_shared_snapshot() {
  StoreBuilder builder{1024};
  const std::uint16_t cisco = builder.vendor_id("cisco");
  for (std::uint64_t g = 0; g < 64; ++g) {
    GeoEntry geo;
    geo.prefix = net::Ipv6Prefix{
        Ipv6Address::from_value(Uint128{0x2400000000000000ULL | (g << 24), 0}),
        40};
    geo.asn = static_cast<std::uint32_t>(g + 1);
    geo.country = {'C', static_cast<char>('A' + g % 26)};
    geo.as_name = "CONC-" + std::to_string(g);
    builder.add_geo(geo);
  }
  for (std::uint64_t i = 0; i < kRecords; ++i) {
    Record r;
    r.key = Ipv6Address::from_value(
        Uint128{0x2400000000000000ULL | ((i % 64) << 24), i * kMultiplier});
    r.probe_dst = r.key;
    r.vendor = i % 2 == 0 ? cisco : std::uint16_t{0};
    r.flags = i % 16 == 0 ? kFlagLoopCandidate : std::uint8_t{0};
    r.responses = 1;
    r.first_us = i;
    builder.add(r);
  }
  auto loaded = Snapshot::from_buffer(builder.serialize());
  EXPECT_TRUE(loaded.snapshot) << loaded.error;
  return std::move(loaded.snapshot);
}

TEST(StoreConcurrent, ManyReadersMixedQueriesRaceFree) {
  auto snap = build_shared_snapshot();
  ASSERT_EQ(snap->record_count(), kRecords);

  constexpr int kThreads = 8;
  std::atomic<bool> start{false};
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) {
      }
      // Point lookups over a thread-specific slice (hits and misses).
      Record out;
      for (std::uint64_t i = static_cast<std::uint64_t>(t); i < kRecords;
           i += kThreads) {
        const Ipv6Address key = Ipv6Address::from_value(Uint128{
            0x2400000000000000ULL | ((i % 64) << 24), i * kMultiplier});
        if (!snap->lookup(key, &out) || out.first_us != i) ++failures;
        const Ipv6Address miss = Ipv6Address::from_value(
            Uint128{0x2400000000000000ULL, i * kMultiplier + 1});
        if (snap->lookup(miss, &out)) ++failures;
        if (snap->attribute(key) == nullptr) ++failures;
      }
      // Aggregation + summary walk the whole store through the trie.
      if (aggregate(*snap, t % 2 == 0 ? GroupBy::kAsn : GroupBy::kVendor)
              .empty()) {
        ++failures;
      }
      if (summarize(*snap).records != kRecords) ++failures;
      // Prefix scans over one geo slice each.
      const net::Ipv6Prefix slice{
          Ipv6Address::from_value(Uint128{
              0x2400000000000000ULL |
                  ((static_cast<std::uint64_t>(t) % 64) << 24),
              0}),
          40};
      if (snap->scan_prefix(slice, [](const Record&) {}) == 0) ++failures;
    });
  }
  start.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0u);
}

TEST(StoreConcurrent, QueryLoadHarnessCountsAreExact) {
  auto snap = build_shared_snapshot();
  QueryLoadOptions options;
  options.threads = 4;
  options.lookups_per_thread = 5000;
  options.seed = 7;
  const QueryLoadResult result = run_query_load(*snap, options);
  EXPECT_EQ(result.lookups, 4u * 5000u);
  EXPECT_GT(result.hits, 0u);
  EXPECT_LT(result.hits, result.lookups);
  EXPECT_GT(result.lookups_per_sec, 0.0);
  // The merged obs counters agree with the harness's own totals.
  const auto* queries = result.metrics.find("store_queries_total", {});
  ASSERT_NE(queries, nullptr);
  EXPECT_EQ(queries->value, result.lookups);
  const auto* hits = result.metrics.find("store_query_hits_total", {});
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->value, result.hits);
  // Deterministic across runs: same options, same hit count.
  const QueryLoadResult again = run_query_load(*snap, options);
  EXPECT_EQ(again.hits, result.hits);
}

}  // namespace
}  // namespace xmap::store
