// The zero-allocation contract for the store's steady-state query path:
// once a snapshot is loaded and validated, point lookups, prefix scans and
// trie attribution perform no global heap allocation — the serving loop
// can run at full rate without touching the allocator. Verified by
// replacing ::operator new with a counting shim (same method as
// tests/sim/alloc_free_scan_test.cc) and asserting a zero delta across the
// measured query loop.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>

#include "store/snapshot.h"
#include "store/writer.h"

namespace {
std::atomic<std::uint64_t> g_new_calls{0};

void* counted_alloc(std::size_t size) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* counted_aligned_alloc(std::size_t size, std::align_val_t align) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  const auto a = static_cast<std::size_t>(align);
  if (posix_memalign(&p, a < sizeof(void*) ? sizeof(void*) : a,
                     size != 0 ? size : 1) != 0) {
    throw std::bad_alloc{};
  }
  return p;
}
}  // namespace

// Replaceable global allocation functions (all throwing/nothrow/aligned
// variants, so nothing in the binary slips past the counter).
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace xmap::store {
namespace {

using net::Ipv6Address;
using net::Uint128;

constexpr std::uint64_t kRecords = 50000;
constexpr std::uint64_t kMultiplier = 0x9e3779b97f4a7c15ULL;

Ipv6Address nth_key(std::uint64_t i) {
  return Ipv6Address::from_value(
      Uint128{0x2600000000000000ULL | ((i % 128) << 16), i * kMultiplier});
}

TEST(StoreAllocFreeQuery, SteadyStateQueriesNeverTouchTheHeap) {
  // Build + load entirely outside the measured window.
  StoreBuilder builder{1024};
  for (std::uint64_t g = 0; g < 128; ++g) {
    GeoEntry geo;
    geo.prefix = net::Ipv6Prefix{
        Ipv6Address::from_value(Uint128{0x2600000000000000ULL | (g << 16), 0}),
        48};
    geo.asn = static_cast<std::uint32_t>(g + 1);
    geo.country = {'A', 'F'};
    geo.as_name = "ALLOC-" + std::to_string(g);
    builder.add_geo(geo);
  }
  for (std::uint64_t i = 0; i < kRecords; ++i) {
    Record r;
    r.key = nth_key(i);
    r.probe_dst = r.key;
    r.responses = 1;
    r.first_us = i;
    builder.add(r);
  }
  auto loaded = Snapshot::from_buffer(builder.serialize());
  ASSERT_TRUE(loaded.snapshot) << loaded.error;
  const Snapshot& snap = *loaded.snapshot;

  // Warm-up pass: exercise every query style once so any lazily-created
  // state (there should be none — the trie compiles at load) exists
  // before counting starts.
  Record out;
  ASSERT_TRUE(snap.lookup(nth_key(0), &out));
  ASSERT_NE(snap.attribute(nth_key(0)), nullptr);
  const net::Ipv6Prefix slice{
      Ipv6Address::from_value(Uint128{0x2600000000000000ULL, 0}), 48};
  (void)snap.scan_prefix(slice, [](const Record&) {});

  const std::uint64_t before = g_new_calls.load(std::memory_order_relaxed);
  std::uint64_t hits = 0, misses = 0, attributed = 0, scanned = 0;
  for (std::uint64_t i = 0; i < kRecords; i += 3) {
    if (snap.lookup(nth_key(i), &out)) ++hits;
    if (!snap.lookup(
            Ipv6Address::from_value(Uint128{0x2600000000000000ULL,
                                            i * kMultiplier + 1}),
            &out)) {
      ++misses;
    }
    if (snap.attribute(nth_key(i)) != nullptr) ++attributed;
  }
  scanned = snap.scan_prefix(slice, [](const Record&) {});
  scanned += snap.for_each([](const Record&) {});
  const std::uint64_t after = g_new_calls.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u)
      << "steady-state query path allocated " << after - before << " times";
  EXPECT_EQ(hits, (kRecords + 2) / 3);
  EXPECT_EQ(misses, (kRecords + 2) / 3);
  EXPECT_EQ(attributed, (kRecords + 2) / 3);
  EXPECT_GT(scanned, kRecords);
}

}  // namespace
}  // namespace xmap::store
