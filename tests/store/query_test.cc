// Query correctness: LC-trie attribution vs the linear reference,
// aggregation vs a flat recomputation, prefix scans and diff semantics.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "store/diff.h"
#include "store/query.h"
#include "store/snapshot.h"
#include "store/writer.h"

namespace xmap::store {
namespace {

using net::Ipv6Address;
using net::Ipv6Prefix;
using net::Uint128;

// Deterministic 64-bit stream (splitmix64).
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

Ipv6Address random_addr(Rng& rng) {
  return Ipv6Address::from_value(Uint128{rng.next(), rng.next()});
}

// Builds a snapshot whose geo section is `prefixes` (asn = index) and whose
// records are `keys`.
std::unique_ptr<Snapshot> make_snapshot(
    const std::vector<Ipv6Prefix>& prefixes,
    const std::vector<Ipv6Address>& keys) {
  StoreBuilder builder{512};
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    GeoEntry geo;
    geo.prefix = prefixes[i];
    geo.asn = static_cast<std::uint32_t>(i + 1);
    geo.country = {static_cast<char>('A' + i % 26), 'X'};
    geo.as_name = "AS-" + std::to_string(i);
    builder.add_geo(geo);
  }
  for (const auto& key : keys) {
    Record r;
    r.key = key;
    r.probe_dst = key;
    r.responses = 1;
    builder.add(r);
  }
  auto loaded = Snapshot::from_buffer(builder.serialize());
  EXPECT_TRUE(loaded.snapshot) << loaded.error;
  return std::move(loaded.snapshot);
}

// The equivalence property: for every probe address, the snapshot's
// compiled-trie attribution equals a reference PrefixMap answering through
// its uncompiled linear walk.
void check_attribution_equivalence(const std::vector<Ipv6Prefix>& prefixes,
                                   const std::vector<Ipv6Address>& probes) {
  auto snap = make_snapshot(prefixes, {});
  net::PrefixMap<std::uint32_t> reference;
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    reference.insert(prefixes[i], static_cast<std::uint32_t>(i + 1));
  }
  for (const auto& probe : probes) {
    const GeoEntry* got = snap->attribute(probe);
    const std::uint32_t* want = reference.lookup_linear(probe);
    if (want == nullptr) {
      EXPECT_EQ(got, nullptr) << probe.to_string();
    } else {
      ASSERT_NE(got, nullptr) << probe.to_string();
      EXPECT_EQ(got->asn, *want) << probe.to_string();
    }
  }
}

TEST(StoreQuery, AttributionMatchesLinearScanOnRandomPrefixes) {
  Rng rng{2024};
  std::vector<Ipv6Prefix> prefixes;
  for (int i = 0; i < 300; ++i) {
    const int len = 8 + static_cast<int>(rng.next() % 57);  // /8../64
    const Uint128 mask = Uint128::max() << (128 - len);
    prefixes.emplace_back(
        Ipv6Address::from_value(random_addr(rng).value() & mask), len);
  }
  std::vector<Ipv6Address> probes;
  for (int i = 0; i < 2000; ++i) probes.push_back(random_addr(rng));
  // Half the probes land inside a random prefix (hits matter too).
  for (int i = 0; i < 2000; ++i) {
    const auto& p = prefixes[rng.next() % prefixes.size()];
    const Uint128 off{rng.next() % 3, rng.next()};
    probes.push_back(Ipv6Address::from_value(p.address().value() | off));
  }
  check_attribution_equivalence(prefixes, probes);
}

TEST(StoreQuery, AttributionMatchesLinearScanOnNestedPrefixes) {
  // A nested chain /16 ⊃ /24 ⊃ ... ⊃ /64 plus siblings: longest match has
  // to pick the deepest cover, and the trie's path compression is under
  // the most pressure.
  Rng rng{7};
  std::vector<Ipv6Prefix> prefixes;
  const Uint128 base{0x20010db800000000ULL, 0};
  for (int len = 16; len <= 64; len += 8) {
    prefixes.emplace_back(Ipv6Address::from_value(base), len);
    // A sibling at each depth, one bit off the chain.
    prefixes.emplace_back(
        Ipv6Address::from_value(base ^ Uint128::pow2(128 - len)), len);
  }
  std::vector<Ipv6Address> probes;
  for (int i = 0; i < 4000; ++i) {
    const Uint128 low{rng.next() % 4, rng.next()};
    probes.push_back(Ipv6Address::from_value(base | low));
  }
  for (int i = 0; i < 500; ++i) probes.push_back(random_addr(rng));
  check_attribution_equivalence(prefixes, probes);
}

TEST(StoreQuery, AttributionMatchesLinearScanOnDensePrefixes) {
  // Dense sweep: every /24 under one /16 (256 siblings), probing every one
  // plus the gaps around the covered space.
  std::vector<Ipv6Prefix> prefixes;
  const std::uint64_t hi_base = 0x2a02000000000000ULL;
  for (std::uint64_t i = 0; i < 256; ++i) {
    prefixes.emplace_back(
        Ipv6Address::from_value(Uint128{hi_base | (i << 40), 0}), 24);
  }
  Rng rng{99};
  std::vector<Ipv6Address> probes;
  for (std::uint64_t i = 0; i < 256; ++i) {
    probes.push_back(Ipv6Address::from_value(
        Uint128{hi_base | (i << 40) | (rng.next() & 0xffffffffffULL),
                rng.next()}));
  }
  for (int i = 0; i < 1000; ++i) probes.push_back(random_addr(rng));
  check_attribution_equivalence(prefixes, probes);
}

TEST(StoreQuery, ScanPrefixVisitsExactlyTheCoveredKeys) {
  Rng rng{5};
  std::vector<Ipv6Address> keys;
  for (int i = 0; i < 3000; ++i) keys.push_back(random_addr(rng));
  auto snap = make_snapshot({}, keys);

  for (int len : {0, 1, 2, 4, 8, 16}) {
    const Uint128 mask =
        len == 0 ? Uint128{} : Uint128::max() << (128 - len);
    const Ipv6Prefix prefix{
        Ipv6Address::from_value(keys[static_cast<std::size_t>(len)].value() &
                                mask),
        len};
    std::set<Uint128> expect;
    for (const auto& key : keys) {
      if (prefix.contains(key)) expect.insert(key.value());
    }
    std::set<Uint128> got;
    const std::uint64_t n = snap->scan_prefix(
        prefix, [&](const Record& r) { got.insert(r.key.value()); });
    EXPECT_EQ(n, expect.size()) << "/" << len;
    EXPECT_EQ(got, expect) << "/" << len;
  }
}

TEST(StoreQuery, AggregationMatchesFlatRecomputation) {
  Rng rng{31};
  StoreBuilder builder{512};
  const std::uint16_t vendors[3] = {0, builder.vendor_id("cisco"),
                                    builder.vendor_id("zte")};
  std::vector<Ipv6Prefix> prefixes;
  for (std::uint64_t i = 0; i < 16; ++i) {
    GeoEntry geo;
    geo.prefix = Ipv6Prefix{
        Ipv6Address::from_value(Uint128{0x2400000000000000ULL | (i << 32), 0}),
        32};
    geo.asn = static_cast<std::uint32_t>(100 + i);
    geo.country = {static_cast<char>('A' + i % 4), 'Q'};
    geo.as_name = "AGG-" + std::to_string(i);
    builder.add_geo(geo);
    prefixes.push_back(geo.prefix);
  }
  std::vector<Record> records;
  for (int i = 0; i < 2000; ++i) {
    Record r;
    const bool inside = rng.next() % 4 != 0;  // 25% unattributed
    r.key = inside ? Ipv6Address::from_value(
                         prefixes[rng.next() % prefixes.size()]
                             .address()
                             .value() |
                         Uint128{rng.next() & 0xffffffffULL, rng.next()})
                   : random_addr(rng);
    r.probe_dst = r.key;
    r.vendor = vendors[rng.next() % 3];
    r.services = static_cast<std::uint16_t>(rng.next() % 16);
    r.flags = static_cast<std::uint8_t>(
        rng.next() % 8 == 0
            ? kFlagLoopCandidate | (rng.next() % 2 ? kFlagLoopConfirmed : 0)
            : 0);
    r.responses = 1 + rng.next() % 5;
    r.first_us = rng.next();
    builder.add(r);
    records.push_back(r);
  }
  auto loaded = Snapshot::from_buffer(builder.serialize());
  ASSERT_TRUE(loaded.snapshot) << loaded.error;
  const Snapshot& snap = *loaded.snapshot;

  // Flat recomputation of the ASN aggregation over the in-memory records
  // (duplicate keys are possible from the random generator; merge like the
  // store does — but the generator's 128-bit keys never collide at n=2000,
  // so a plain map by key is enough).
  std::map<std::string, AggRow> expect;
  std::uint64_t expect_total = 0;
  for (const auto& r : records) {
    const GeoEntry* geo = snap.attribute(r.key);
    const std::string group =
        geo == nullptr ? "unattributed"
                       : "AS" + std::to_string(geo->asn) + " " + geo->as_name;
    AggRow& row = expect[group];
    row.key = group;
    row.records += 1;
    row.loop_candidates += (r.flags & kFlagLoopCandidate) != 0 ? 1 : 0;
    row.loop_confirmed += (r.flags & kFlagLoopConfirmed) != 0 ? 1 : 0;
    row.responses += r.responses;
    ++expect_total;
  }
  ASSERT_EQ(snap.record_count(), expect_total) << "unexpected key collision";

  const auto rows = aggregate(snap, GroupBy::kAsn);
  ASSERT_EQ(rows.size(), expect.size());
  std::uint64_t prev_records = ~0ULL;
  for (const auto& row : rows) {
    auto it = expect.find(row.key);
    ASSERT_NE(it, expect.end()) << row.key;
    EXPECT_EQ(row, it->second) << row.key;
    EXPECT_LE(row.records, prev_records) << "rows not sorted";
    prev_records = row.records;
  }

  // Vendor aggregation: every record lands in exactly one named bucket.
  std::uint64_t vendor_total = 0;
  for (const auto& row : aggregate(snap, GroupBy::kVendor)) {
    vendor_total += row.records;
  }
  EXPECT_EQ(vendor_total, snap.record_count());

  // The summary agrees with a flat distinct-count pass.
  std::set<std::uint32_t> asns, loop_asns;
  std::uint64_t candidates = 0;
  for (const auto& r : records) {
    const GeoEntry* geo = snap.attribute(r.key);
    if (geo != nullptr) asns.insert(geo->asn);
    if ((r.flags & kFlagLoopCandidate) != 0) {
      ++candidates;
      if (geo != nullptr) loop_asns.insert(geo->asn);
    }
  }
  const PeripherySummary sum = summarize(snap);
  EXPECT_EQ(sum.records, snap.record_count());
  EXPECT_EQ(sum.loop_candidates, candidates);
  EXPECT_EQ(sum.asns, asns.size());
  EXPECT_EQ(sum.loop_asns, loop_asns.size());
}

TEST(StoreQuery, DiffClassifiesAddedRemovedChangedUnchanged) {
  Rng rng{13};
  std::vector<Ipv6Address> keys;
  for (int i = 0; i < 400; ++i) keys.push_back(random_addr(rng));

  StoreBuilder before{512}, after{512};
  // keys[0..299] in A; keys[100..399] in B; keys[100..149] change payload.
  for (int i = 0; i < 300; ++i) {
    Record r;
    r.key = keys[static_cast<std::size_t>(i)];
    r.probe_dst = r.key;
    r.responses = 1;
    before.add(r);
  }
  for (int i = 100; i < 400; ++i) {
    Record r;
    r.key = keys[static_cast<std::size_t>(i)];
    r.probe_dst = r.key;
    r.responses = i < 150 ? 7 : 1;  // changed payload for 100..149
    after.add(r);
  }
  auto a = Snapshot::from_buffer(before.serialize());
  auto b = Snapshot::from_buffer(after.serialize());
  ASSERT_TRUE(a.snapshot) << a.error;
  ASSERT_TRUE(b.snapshot) << b.error;

  std::uint64_t sink_calls = 0;
  Uint128 prev{};
  const DiffStats stats =
      diff(*a.snapshot, *b.snapshot, [&](const DiffEntry& e) {
        const Record& keyed =
            e.kind == DiffKind::kRemoved ? e.before : e.after;
        if (sink_calls > 0) {
          EXPECT_LT(prev, keyed.key.value()) << "diff not in key order";
        }
        prev = keyed.key.value();
        ++sink_calls;
      });
  EXPECT_EQ(stats.added, 100u);
  EXPECT_EQ(stats.removed, 100u);
  EXPECT_EQ(stats.changed, 50u);
  EXPECT_EQ(stats.unchanged, 150u);
  EXPECT_EQ(sink_calls, 250u);

  // Diff of a store against itself is all-unchanged.
  const DiffStats self = diff(*a.snapshot, *a.snapshot, nullptr);
  EXPECT_EQ(self.added, 0u);
  EXPECT_EQ(self.removed, 0u);
  EXPECT_EQ(self.changed, 0u);
  EXPECT_EQ(self.unchanged, 300u);
}

}  // namespace
}  // namespace xmap::store
