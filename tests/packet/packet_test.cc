#include "packet/packet.h"

#include <gtest/gtest.h>

#include "netbase/checksum.h"

namespace xmap::pkt {
namespace {

using net::Ipv6Address;

const Ipv6Address kSrc = *Ipv6Address::parse("2001:db8::1");
const Ipv6Address kDst = *Ipv6Address::parse("2001:db8:1234:5678::42");
const Ipv6Address kRouter = *Ipv6Address::parse("2001:db8:1234:5678:0204:8dff:fe12:3456");

TEST(Ipv6Header, BuildAndParse) {
  const std::vector<std::uint8_t> payload{1, 2, 3, 4};
  Bytes p = build_ipv6(kSrc, kDst, kProtoUdp, 77, payload);
  Ipv6View v{p};
  ASSERT_TRUE(v.valid());
  EXPECT_EQ(v.version(), 6);
  EXPECT_EQ(v.payload_length(), 4);
  EXPECT_EQ(v.next_header(), kProtoUdp);
  EXPECT_EQ(v.hop_limit(), 77);
  EXPECT_EQ(v.src(), kSrc);
  EXPECT_EQ(v.dst(), kDst);
  ASSERT_EQ(v.payload().size(), 4u);
  EXPECT_EQ(v.payload()[0], 1);
  EXPECT_EQ(v.payload()[3], 4);
}

TEST(Ipv6Header, InvalidWhenTruncated) {
  Bytes p = build_ipv6(kSrc, kDst, kProtoUdp, 64, std::vector<std::uint8_t>(10));
  p.resize(45);  // payload truncated below declared length
  EXPECT_FALSE(Ipv6View{p}.valid());
  Bytes tiny(20);
  EXPECT_FALSE(Ipv6View{tiny}.valid());
}

TEST(Ipv6Header, InvalidWrongVersion) {
  Bytes p = build_ipv6(kSrc, kDst, kProtoUdp, 64, {});
  p[0] = 0x40;  // IPv4 version nibble
  EXPECT_FALSE(Ipv6View{p}.valid());
}

TEST(EchoRequest, RoundTrip) {
  const std::vector<std::uint8_t> payload{0xde, 0xad};
  Bytes p = build_echo_request(kSrc, kDst, 64, 0x1234, 7, payload);
  Ipv6View ip{p};
  ASSERT_TRUE(ip.valid());
  EXPECT_EQ(ip.next_header(), kProtoIcmpv6);
  Icmpv6View icmp{ip.payload()};
  ASSERT_TRUE(icmp.valid());
  EXPECT_EQ(icmp.type(), Icmpv6Type::kEchoRequest);
  EXPECT_EQ(icmp.code(), 0);
  EXPECT_EQ(icmp.ident(), 0x1234);
  EXPECT_EQ(icmp.seq(), 7);
  ASSERT_EQ(icmp.echo_payload().size(), 2u);
  EXPECT_EQ(icmp.echo_payload()[0], 0xde);
  EXPECT_TRUE(icmp.checksum_ok(ip.src(), ip.dst()));
}

TEST(EchoRequest, CorruptedChecksumDetected) {
  Bytes p = build_echo_request(kSrc, kDst, 64, 1, 1);
  p.back() ^= 0xff;
  Ipv6View ip{p};
  Icmpv6View icmp{ip.payload()};
  EXPECT_FALSE(icmp.checksum_ok(ip.src(), ip.dst()));
}

TEST(EchoReply, MirrorsRequest) {
  const std::vector<std::uint8_t> payload{9, 8, 7};
  Bytes req = build_echo_request(kSrc, kDst, 64, 0xabcd, 3, payload);
  Bytes rep = build_echo_reply(req);
  Ipv6View ip{rep};
  ASSERT_TRUE(ip.valid());
  EXPECT_EQ(ip.src(), kDst);
  EXPECT_EQ(ip.dst(), kSrc);
  Icmpv6View icmp{ip.payload()};
  EXPECT_EQ(icmp.type(), Icmpv6Type::kEchoReply);
  EXPECT_EQ(icmp.ident(), 0xabcd);
  EXPECT_EQ(icmp.seq(), 3);
  ASSERT_EQ(icmp.echo_payload().size(), 3u);
  EXPECT_EQ(icmp.echo_payload()[2], 7);
  EXPECT_TRUE(icmp.checksum_ok(ip.src(), ip.dst()));
}

TEST(Icmpv6Error, DestUnreachableQuotesInvokingPacket) {
  Bytes probe = build_echo_request(kSrc, kDst, 64, 0x55aa, 9);
  Bytes err = build_icmpv6_error(
      kRouter, Icmpv6Type::kDestUnreachable,
      static_cast<std::uint8_t>(UnreachCode::kAddressUnreachable), probe);
  Ipv6View ip{err};
  ASSERT_TRUE(ip.valid());
  EXPECT_EQ(ip.src(), kRouter);
  EXPECT_EQ(ip.dst(), kSrc);  // error goes to the probe's source
  Icmpv6View icmp{ip.payload()};
  ASSERT_TRUE(icmp.valid());
  EXPECT_EQ(icmp.type(), Icmpv6Type::kDestUnreachable);
  EXPECT_EQ(icmp.code(),
            static_cast<std::uint8_t>(UnreachCode::kAddressUnreachable));
  EXPECT_TRUE(icmp.is_error());
  EXPECT_TRUE(icmp.checksum_ok(ip.src(), ip.dst()));

  // The quoted packet parses back to the original probe.
  auto quoted = icmp.invoking_packet();
  ASSERT_EQ(quoted.size(), probe.size());
  Ipv6View orig{quoted};
  ASSERT_TRUE(orig.valid());
  EXPECT_EQ(orig.dst(), kDst);
  Icmpv6View orig_icmp{orig.payload()};
  EXPECT_EQ(orig_icmp.ident(), 0x55aa);
  EXPECT_EQ(orig_icmp.seq(), 9);
}

TEST(Icmpv6Error, TimeExceededType) {
  Bytes probe = build_echo_request(kSrc, kDst, 1, 1, 1);
  Bytes err = build_icmpv6_error(
      kRouter, Icmpv6Type::kTimeExceeded,
      static_cast<std::uint8_t>(TimeExceededCode::kHopLimitExceeded), probe);
  Icmpv6View icmp{Ipv6View{err}.payload()};
  EXPECT_EQ(icmp.type(), Icmpv6Type::kTimeExceeded);
  EXPECT_TRUE(icmp.is_error());
}

TEST(Icmpv6Error, TruncatesToMinimumMtu) {
  // A maximal-size invoking packet must be truncated so the error fits 1280.
  Bytes big = build_echo_request(kSrc, kDst, 64, 1, 1,
                                 std::vector<std::uint8_t>(1400));
  Bytes err = build_icmpv6_error(kRouter, Icmpv6Type::kDestUnreachable, 0, big);
  EXPECT_LE(err.size(), kIpv6MinMtu);
  Ipv6View ip{err};
  Icmpv6View icmp{ip.payload()};
  EXPECT_TRUE(icmp.checksum_ok(ip.src(), ip.dst()));
}

TEST(Udp, BuildAndParse) {
  const std::vector<std::uint8_t> payload{0xca, 0xfe, 0xba, 0xbe};
  Bytes p = build_udp(kSrc, kDst, 4321, 53, payload);
  Ipv6View ip{p};
  ASSERT_TRUE(ip.valid());
  UdpView udp{ip.payload()};
  ASSERT_TRUE(udp.valid());
  EXPECT_EQ(udp.src_port(), 4321);
  EXPECT_EQ(udp.dst_port(), 53);
  EXPECT_EQ(udp.length(), 12);
  ASSERT_EQ(udp.payload().size(), 4u);
  EXPECT_EQ(udp.payload()[0], 0xca);
  EXPECT_TRUE(udp.checksum_ok(ip.src(), ip.dst()));
}

TEST(Udp, CorruptionDetected) {
  Bytes p = build_udp(kSrc, kDst, 4321, 53, std::vector<std::uint8_t>{1, 2});
  p.back() ^= 0x01;
  Ipv6View ip{p};
  EXPECT_FALSE(UdpView{ip.payload()}.checksum_ok(ip.src(), ip.dst()));
}

TEST(Tcp, SynBuildAndParse) {
  Bytes p = build_tcp(kSrc, kDst, 55555, 80, 0x01020304, 0, kTcpSyn, 65535);
  Ipv6View ip{p};
  ASSERT_TRUE(ip.valid());
  TcpView tcp{ip.payload()};
  ASSERT_TRUE(tcp.valid());
  EXPECT_EQ(tcp.src_port(), 55555);
  EXPECT_EQ(tcp.dst_port(), 80);
  EXPECT_EQ(tcp.seq(), 0x01020304u);
  EXPECT_EQ(tcp.flags(), kTcpSyn);
  EXPECT_EQ(tcp.window(), 65535);
  EXPECT_TRUE(tcp.payload().empty());
  EXPECT_TRUE(tcp.checksum_ok(ip.src(), ip.dst()));
}

TEST(Tcp, PayloadAndFlags) {
  const std::vector<std::uint8_t> payload{'G', 'E', 'T'};
  Bytes p = build_tcp(kSrc, kDst, 1, 2, 10, 20, kTcpPsh | kTcpAck, 1000,
                      payload);
  TcpView tcp{Ipv6View{p}.payload()};
  EXPECT_EQ(tcp.flags(), kTcpPsh | kTcpAck);
  EXPECT_EQ(tcp.ack(), 20u);
  ASSERT_EQ(tcp.payload().size(), 3u);
  EXPECT_EQ(tcp.payload()[0], 'G');
}

TEST(HopLimit, DecrementAndFloor) {
  Bytes p = build_echo_request(kSrc, kDst, 2, 1, 1);
  EXPECT_EQ(hop_limit_of(p), 2);
  EXPECT_TRUE(decrement_hop_limit(p));
  EXPECT_EQ(hop_limit_of(p), 1);
  EXPECT_FALSE(decrement_hop_limit(p));  // would hit zero: discard
  set_hop_limit(p, 255);
  EXPECT_EQ(hop_limit_of(p), 255);
}

TEST(Helpers, SrcDstAccessors) {
  Bytes p = build_echo_request(kSrc, kDst, 64, 1, 1);
  EXPECT_EQ(src_of(p), kSrc);
  EXPECT_EQ(dst_of(p), kDst);
}

TEST(Summarize, CoversProtocols) {
  EXPECT_NE(summarize(build_echo_request(kSrc, kDst, 64, 1, 1)).find("icmp6"),
            std::string::npos);
  EXPECT_NE(summarize(build_udp(kSrc, kDst, 1, 53, {})).find("udp"),
            std::string::npos);
  EXPECT_NE(
      summarize(build_tcp(kSrc, kDst, 1, 80, 0, 0, kTcpSyn, 0)).find("tcp"),
      std::string::npos);
  EXPECT_EQ(summarize(Bytes(4)), "<malformed>");
}

}  // namespace
}  // namespace xmap::pkt
