// End-to-end observability through the parallel executor: the serialized
// trace and the deterministic Prometheus export must be byte-identical for
// any --threads value, the stage profile must cover the pipeline, and the
// registry counters must agree with the merged ScanStats.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "engine/executor.h"
#include "obs/metrics.h"
#include "topology/paper_profiles.h"
#include "xmap/results.h"

namespace xmap::engine {
namespace {

const scan::IcmpEchoProbe& shared_module() {
  static const scan::IcmpEchoProbe module{64};
  return module;
}

EngineConfig make_config(int threads, obs::TraceLevel level) {
  EngineConfig cfg;
  cfg.world_specs = topo::paper::bgp_specs(3, 11);
  cfg.vendors = topo::paper::vendor_catalog();
  cfg.build.window_bits = 6;
  cfg.build.seed = 11;
  cfg.module = &shared_module();
  cfg.scan.source = *net::Ipv6Address::parse("2001:500::1");
  cfg.scan.seed = 5;
  cfg.scan.probes_per_sec = 1e6;
  cfg.threads = threads;
  cfg.obs.trace_level = level;
  cfg.obs.metrics = true;
  cfg.obs.profile = true;
  return cfg;
}

struct ObsOutputs {
  std::string trace_jsonl;
  std::string prometheus;
  EngineResult result;
};

ObsOutputs run(int threads, obs::TraceLevel level) {
  ObsOutputs out;
  out.result = run_parallel_scan(make_config(threads, level));
  EXPECT_TRUE(out.result.ok) << out.result.error;
  std::ostringstream trace;
  obs::write_trace_jsonl(trace, out.result.trace);
  out.trace_jsonl = trace.str();
  out.prometheus = obs::prometheus_text(out.result.metrics_snapshot);
  return out;
}

TEST(ExecutorObs, TraceAndMetricsByteIdenticalAcrossThreadCounts) {
  const ObsOutputs one = run(1, obs::TraceLevel::kPacket);
  const ObsOutputs four = run(4, obs::TraceLevel::kPacket);
  ASSERT_FALSE(one.trace_jsonl.empty());
  EXPECT_EQ(one.trace_jsonl, four.trace_jsonl);
  ASSERT_FALSE(one.prometheus.empty());
  EXPECT_EQ(one.prometheus, four.prometheus);
}

TEST(ExecutorObs, CountersAgreeWithScanStats) {
  const ObsOutputs r = run(2, obs::TraceLevel::kScan);
  const auto* sent = r.result.metrics_snapshot.find("probes_sent");
  ASSERT_NE(sent, nullptr);
  EXPECT_EQ(sent->value, r.result.stats.sent);
  const auto* generated = r.result.metrics_snapshot.find("targets_generated");
  ASSERT_NE(generated, nullptr);
  EXPECT_EQ(generated->value, r.result.stats.targets_generated);
  const auto* validated = r.result.metrics_snapshot.find("responses_validated");
  ASSERT_NE(validated, nullptr);
  EXPECT_EQ(validated->value, r.result.stats.validated);
  // The RTT histogram saw every validated response (duplicates included —
  // they are validated responses with a known first-send time too).
  const auto* rtt = r.result.metrics_snapshot.find("icmp_rtt_sim_ns");
  ASSERT_NE(rtt, nullptr);
  ASSERT_TRUE(rtt->histogram.has_value());
  EXPECT_EQ(rtt->histogram->count(), r.result.stats.validated);
}

TEST(ExecutorObs, WallClockGaugeStaysOutOfPrometheus) {
  const ObsOutputs r = run(2, obs::TraceLevel::kOff);
  const auto* peak = r.result.metrics_snapshot.find("engine_queue_depth_peak");
  ASSERT_NE(peak, nullptr);
  EXPECT_TRUE(peak->wall_clock);
  EXPECT_EQ(r.prometheus.find("engine_queue_depth_peak"), std::string::npos);
}

TEST(ExecutorObs, StageProfileCoversThePipeline) {
  const ObsOutputs r = run(2, obs::TraceLevel::kOff);
  const obs::StageProfile& p = r.result.stage_profile;
  EXPECT_FALSE(p.empty());
  // Two workers each built one world replica.
  EXPECT_EQ(p.at(obs::Stage::kBuild).calls, 2u);
  EXPECT_GT(p.at(obs::Stage::kGenerate).calls, 0u);
  EXPECT_GT(p.at(obs::Stage::kSend).calls, 0u);
  EXPECT_EQ(p.at(obs::Stage::kMerge).calls, 1u);
}

TEST(ExecutorObs, DisabledObsLeavesResultEmpty) {
  EngineConfig cfg = make_config(2, obs::TraceLevel::kOff);
  cfg.obs.metrics = false;
  cfg.obs.profile = false;
  const EngineResult result = run_parallel_scan(cfg);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.trace.empty());
  EXPECT_TRUE(result.metrics_snapshot.empty());
  EXPECT_TRUE(result.stage_profile.empty());
}

TEST(ExecutorObs, ScanLevelOmitsPacketEvents) {
  const ObsOutputs r = run(1, obs::TraceLevel::kScan);
  ASSERT_FALSE(r.trace_jsonl.empty());
  EXPECT_EQ(r.trace_jsonl.find("packet_hop"), std::string::npos);
  EXPECT_NE(r.trace_jsonl.find("probe_sent"), std::string::npos);
  const ObsOutputs packet = run(1, obs::TraceLevel::kPacket);
  EXPECT_NE(packet.trace_jsonl.find("packet_hop"), std::string::npos);
}

}  // namespace
}  // namespace xmap::engine
