// Monitor status-line rendering (including the near-zero-elapsed edge
// cases) and the metrics_json() document with its optional observability
// sections.
#include "engine/telemetry.h"

#include <gtest/gtest.h>

#include <string>

namespace xmap::engine {
namespace {

TEST(StatusLine, NearZeroElapsedRendersPlaceholders) {
  scan::ScanProgress progress;
  progress.sent.store(500);
  progress.targets_generated.store(10);
  Monitor monitor{progress, MonitorOptions{nullptr, 250, 100000, 4}};
  // At elapsed ~ 0 a naive implementation divides by (almost) zero and
  // prints absurd rates and ETAs; the line must admit ignorance instead.
  const std::string line = monitor.status_line(false, 0.0);
  EXPECT_NE(line.find("(-- left)"), std::string::npos) << line;
  EXPECT_NE(line.find("(-- avg)"), std::string::npos) << line;
  EXPECT_EQ(line.find("inf"), std::string::npos) << line;
  EXPECT_EQ(line.find("nan"), std::string::npos) << line;
}

TEST(StatusLine, NoProgressYetHasNoEta) {
  scan::ScanProgress progress;  // zero targets generated so far
  Monitor monitor{progress, MonitorOptions{nullptr, 250, 100000, 1}};
  // Plenty of elapsed time but zero progress: extrapolating an ETA from
  // frac == 0 would divide by zero.
  const std::string line = monitor.status_line(false, 10.0);
  EXPECT_NE(line.find("(-- left)"), std::string::npos) << line;
  EXPECT_EQ(line.find("inf"), std::string::npos) << line;
}

TEST(StatusLine, SteadyStateRendersRatesAndEta) {
  scan::ScanProgress progress;
  progress.sent.store(5000);
  progress.validated.store(100);
  progress.targets_generated.store(50000);
  Monitor monitor{progress, MonitorOptions{nullptr, 250, 100000, 2}};
  const std::string line = monitor.status_line(false, 10.0);
  // 50% done in 10s -> 10s left; 5000 sent / 10s = 500 p/s.
  EXPECT_NE(line.find(" 50%"), std::string::npos) << line;
  EXPECT_NE(line.find("(0:10 left)"), std::string::npos) << line;
  EXPECT_NE(line.find("500.0 p/s"), std::string::npos) << line;
  EXPECT_EQ(line.find("--"), std::string::npos) << line;
}

TEST(StatusLine, DuplicatesAppearWhenNonzero) {
  scan::ScanProgress progress;
  progress.sent.store(100);
  progress.validated.store(60);
  progress.duplicates.store(7);
  Monitor monitor{progress, MonitorOptions{nullptr, 250, 0, 1}};
  const std::string with = monitor.status_line(false, 5.0);
  EXPECT_NE(with.find("7 dup"), std::string::npos) << with;
  progress.duplicates.store(0);
  const std::string without = monitor.status_line(false, 5.0);
  EXPECT_EQ(without.find("dup"), std::string::npos) << without;
}

TEST(StatusLine, FinalLineSkipsEta) {
  scan::ScanProgress progress;
  progress.targets_generated.store(10);
  Monitor monitor{progress, MonitorOptions{nullptr, 250, 1000, 1}};
  const std::string line = monitor.status_line(true, 0.0);
  EXPECT_NE(line.find("(done)"), std::string::npos) << line;
  EXPECT_EQ(line.find("left"), std::string::npos) << line;
}

MetricsSummary base_summary() {
  MetricsSummary summary;
  summary.threads = 2;
  summary.wall_seconds = 1.5;
  summary.merged.sent = 10;
  summary.merged.validated = 4;
  summary.per_worker.resize(2);
  summary.worker_errors.resize(2);
  return summary;
}

TEST(MetricsJson, OmitsObsSectionsWhenEmpty) {
  const std::string json = metrics_json(base_summary());
  EXPECT_EQ(json.find("\"metrics\""), std::string::npos);
  EXPECT_EQ(json.find("\"stage_profile\""), std::string::npos);
  EXPECT_NE(json.find("\"per_worker\""), std::string::npos);
}

TEST(MetricsJson, IncludesObsSectionsWhenPresent) {
  MetricsSummary summary = base_summary();
  obs::MetricsShard shard;
  *shard.counter("probes_sent", {}, "help") += 10;
  summary.obs_metrics = obs::merge_shards({&shard});
  summary.stage_profile.at(obs::Stage::kSend).ns = 1200;
  summary.stage_profile.at(obs::Stage::kSend).calls = 3;

  const std::string json = metrics_json(summary);
  EXPECT_NE(json.find("\"metrics\":{\"probes_sent\":10}"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"stage_profile\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"send\":{\"ns\":1200,\"calls\":3}"), std::string::npos)
      << json;
  // The obs sections come before the per-worker array.
  EXPECT_LT(json.find("\"metrics\":"), json.find("\"per_worker\":"));
}

}  // namespace
}  // namespace xmap::engine
