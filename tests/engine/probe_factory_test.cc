// Selector parsing: every malformed suffix must be rejected with a
// descriptive error (regression: std::atoi silently yielded hop limit 0 /
// port 0 for inputs like "icmp_echo:abc" and "tcp_syn:").
#include "engine/probe_factory.h"

#include <gtest/gtest.h>

namespace xmap::engine {
namespace {

TEST(ProbeFactory, BuildsDocumentedModules) {
  EXPECT_EQ(make_probe_module("icmp_echo").module->name(), "icmpv6_echo");
  EXPECT_EQ(make_probe_module("icmp_echo:255").module->name(),
            "icmpv6_echo");
  EXPECT_EQ(make_probe_module("tcp_syn:443").module->name(), "tcp_syn");
  EXPECT_EQ(make_probe_module("udp_dns").module->name(), "udp_dns");
  EXPECT_EQ(make_probe_module("udp_ntp").module->name(), "udp_ntp");
}

TEST(ProbeFactory, HopLimitSuffixIsApplied) {
  auto result = make_probe_module("icmp_echo:32");
  ASSERT_NE(result.module, nullptr);
  EXPECT_EQ(static_cast<scan::IcmpEchoProbe&>(*result.module).hop_limit(),
            32);
}

TEST(ProbeFactory, RejectsMalformedSelectors) {
  for (const char* selector :
       {"icmp_echo:abc", "icmp_echo:", "icmp_echo:0", "icmp_echo:256",
        "icmp_echo:64x", "icmp_echo: 64", "tcp_syn:", "tcp_syn:abc",
        "tcp_syn:0", "tcp_syn:65536", "tcp_syn:80x", "udp_dns:53", "nope",
        ""}) {
    auto result = make_probe_module(selector);
    EXPECT_EQ(result.module, nullptr) << "accepted: " << selector;
    EXPECT_FALSE(result.error.empty()) << selector;
  }
}

TEST(ProbeFactory, ErrorsNameTheSelectorAndConstraint) {
  EXPECT_NE(make_probe_module("icmp_echo:abc").error.find("1..255"),
            std::string::npos);
  EXPECT_NE(make_probe_module("tcp_syn:").error.find("1..65535"),
            std::string::npos);
  // traceroute is a runner, not a bulk module; the error should say so
  // rather than claim the name is unknown.
  EXPECT_NE(make_probe_module("traceroute").error.find("traceroute"),
            std::string::npos);
}

}  // namespace
}  // namespace xmap::engine
