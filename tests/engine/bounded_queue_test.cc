// The executor's only cross-thread channel: FIFO per producer, bounded
// (backpressure), close-then-drain termination.
#include "engine/bounded_queue.h"

#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

namespace xmap::engine {
namespace {

TEST(BoundedQueue, FifoSingleThread) {
  BoundedQueue<int> queue{8};
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.push(i));
  EXPECT_EQ(queue.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    auto v = queue.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueue, ZeroCapacityIsClampedToOne) {
  BoundedQueue<int> queue{0};
  EXPECT_EQ(queue.capacity(), 1u);
}

TEST(BoundedQueue, CloseThenDrain) {
  BoundedQueue<int> queue{4};
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.push(3));  // rejected after close
  EXPECT_EQ(queue.pop(), 1);    // remaining items still drain
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(queue.pop(), std::nullopt);  // then terminal nullopt
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> queue{4};
  std::thread consumer{[&queue] { EXPECT_EQ(queue.pop(), std::nullopt); }};
  queue.close();
  consumer.join();
}

TEST(BoundedQueue, CapacityBlocksProducerUntilConsumed) {
  BoundedQueue<int> queue{2};
  std::atomic<int> pushed{0};
  std::thread producer{[&] {
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(queue.push(i));
      pushed.fetch_add(1);
    }
  }};
  // The producer can get at most `capacity` ahead of the consumer.
  int got = 0;
  while (got < 100) {
    auto v = queue.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, got);
    ++got;
    EXPECT_LE(pushed.load(), got + 2 + 1);  // capacity + one in-flight push
  }
  producer.join();
  EXPECT_EQ(pushed.load(), 100);
}

TEST(BoundedQueue, MultiProducerKeepsPerProducerOrderAndLosesNothing) {
  constexpr int kProducers = 4;
  constexpr int kItems = 2000;
  BoundedQueue<std::pair<int, int>> queue{16};  // small bound: backpressure
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kItems; ++i) {
        ASSERT_TRUE(queue.push({p, i}));
      }
    });
  }
  std::thread closer{[&] {
    for (auto& t : producers) t.join();
    queue.close();
  }};

  std::vector<int> next(kProducers, 0);
  int total = 0;
  while (auto item = queue.pop()) {
    const auto [p, i] = *item;
    EXPECT_EQ(i, next[static_cast<std::size_t>(p)]++);  // FIFO per producer
    ++total;
  }
  closer.join();
  EXPECT_EQ(total, kProducers * kItems);
  EXPECT_EQ(std::accumulate(next.begin(), next.end(), 0),
            kProducers * kItems);
}

}  // namespace
}  // namespace xmap::engine
