// Integration tests for the parallel scan executor: shard completeness
// (no gaps, no double-probing), run-to-run determinism, exact stats
// merging, cap distribution, and monitor telemetry.
#include "engine/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "topology/paper_profiles.h"
#include "xmap/results.h"

namespace xmap::engine {
namespace {

const net::Ipv6Address kScannerAddr = *net::Ipv6Address::parse("2001:500::1");
const net::Ipv6Prefix kVantagePrefix =
    *net::Ipv6Prefix::parse("2001:500::/48");

const scan::IcmpEchoProbe& shared_module() {
  static const scan::IcmpEchoProbe module{64};
  return module;
}

EngineConfig make_config(int threads) {
  EngineConfig cfg;
  cfg.world_specs = topo::paper::isp_specs();
  cfg.vendors = topo::paper::vendor_catalog();
  cfg.build.window_bits = 8;
  cfg.build.seed = 42;
  cfg.module = &shared_module();
  cfg.scan.source = kScannerAddr;
  cfg.scan.seed = 7;
  cfg.scan.probes_per_sec = 1e6;
  cfg.threads = threads;
  return cfg;
}

std::set<std::string> hop_set(const scan::ResultCollector& collector) {
  std::set<std::string> out;
  for (const auto& hop : collector.last_hops()) {
    out.insert(hop.address.to_string());
  }
  return out;
}

// The unsharded single-thread reference: the classic SimChannelScanner
// driven directly, exactly as the pre-engine tool path does.
struct Baseline {
  std::set<std::string> hops;
  std::set<std::string> aliased;
  scan::ScanStats stats;
};

Baseline classic_single_thread_scan() {
  sim::Network net{42};
  topo::BuildConfig bcfg;
  bcfg.window_bits = 8;
  bcfg.seed = 42;
  auto internet = topo::build_internet(net, topo::paper::isp_specs(),
                                       topo::paper::vendor_catalog(), bcfg);
  scan::ScanConfig cfg;
  for (const auto& isp : internet.isps) {
    cfg.targets.push_back(
        scan::TargetSpec{isp.scan_base, isp.window_lo, isp.window_hi});
  }
  cfg.source = kScannerAddr;
  cfg.seed = 7;
  cfg.probes_per_sec = 1e6;
  auto* scanner =
      net.make_node<scan::SimChannelScanner>(cfg, shared_module());
  const int iface =
      topo::attach_vantage(net, internet, scanner, kVantagePrefix);
  scanner->set_iface(iface);
  scan::ResultCollector collector;
  scanner->on_response(
      [&collector](const scan::ProbeResponse& r, sim::SimTime) {
        collector.add(r);
      });
  scanner->start();
  net.run();

  Baseline baseline;
  baseline.hops = hop_set(collector);
  for (const auto& hop : collector.aliased()) {
    baseline.aliased.insert(hop.address.to_string());
  }
  baseline.stats = scanner->stats();
  return baseline;
}

// Satellite requirement: for N in {2, 3, 8}, the union over all N worker
// shards equals the unsharded single-thread scan — no gaps, and the summed
// probe count proves no slot was probed twice.
TEST(ParallelExecutor, ShardCompletenessAcrossWorkerCounts) {
  const Baseline baseline = classic_single_thread_scan();
  ASSERT_GT(baseline.hops.size(), 500u);

  for (int threads : {2, 3, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    auto result = run_parallel_scan(make_config(threads));
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(hop_set(result.collector), baseline.hops);
    std::set<std::string> aliased;
    for (const auto& hop : result.collector.aliased()) {
      aliased.insert(hop.address.to_string());
    }
    EXPECT_EQ(aliased, baseline.aliased);
    // Partition, not duplication: the workers together sent exactly the
    // single-thread probe count and enumerated the same target total.
    EXPECT_EQ(result.stats.sent, baseline.stats.sent);
    EXPECT_EQ(result.stats.targets_generated,
              baseline.stats.targets_generated);
  }
}

// Satellite requirement: per-worker stats sum exactly to the single-thread
// totals (the simulator is lossless at default link parameters).
TEST(ParallelExecutor, WorkerStatsSumToSingleThreadTotals) {
  const Baseline baseline = classic_single_thread_scan();
  auto result = run_parallel_scan(make_config(4));
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.workers.size(), 4u);

  scan::ScanStats summed;
  for (const auto& worker : result.workers) summed += worker.stats;
  EXPECT_EQ(summed, result.stats);
  EXPECT_EQ(summed.sent, baseline.stats.sent);
  EXPECT_EQ(summed.targets_generated, baseline.stats.targets_generated);
  EXPECT_EQ(summed.received, baseline.stats.received);
  EXPECT_EQ(summed.validated, baseline.stats.validated);
  EXPECT_EQ(summed.discarded, baseline.stats.discarded);
  EXPECT_EQ(summed.blocked, baseline.stats.blocked);
}

std::string records_fingerprint(const EngineResult& result) {
  std::ostringstream out;
  for (const auto& record : result.records) {
    out << record.response.responder.to_string() << '|'
        << record.response.probe_dst.to_string() << '|' << record.when << '|'
        << record.worker << '\n';
  }
  return out.str();
}

// Acceptance: for a fixed seed, the merged result is byte-identical across
// runs for every thread count, and every thread count agrees with the
// single-thread set.
TEST(ParallelExecutor, DeterministicAcrossRunsAndThreadCounts) {
  const Baseline baseline = classic_single_thread_scan();
  for (int threads : {1, 2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    auto first = run_parallel_scan(make_config(threads));
    auto second = run_parallel_scan(make_config(threads));
    ASSERT_TRUE(first.ok && second.ok);
    EXPECT_EQ(records_fingerprint(first), records_fingerprint(second));
    EXPECT_EQ(first.stats, second.stats);
    EXPECT_EQ(hop_set(first.collector), baseline.hops);
  }
}

TEST(ParallelExecutor, MaxProbesIsAGlobalCap) {
  auto cfg = make_config(3);
  cfg.scan.max_probes = 10;
  auto result = run_parallel_scan(cfg);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.stats.sent, 10u);

  // Caps smaller than the worker count leave the surplus workers idle.
  cfg.threads = 8;
  cfg.scan.max_probes = 3;
  result = run_parallel_scan(cfg);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.stats.sent, 3u);
}

TEST(ParallelExecutor, ComposesWithMachineLevelShards) {
  // Machine shard s of 2, each with 2 workers: the union over both machine
  // shards must equal the whole scan (worker shards nest inside).
  const Baseline baseline = classic_single_thread_scan();
  std::set<std::string> all_hops;
  std::uint64_t sent = 0;
  for (int machine_shard = 0; machine_shard < 2; ++machine_shard) {
    auto cfg = make_config(2);
    cfg.scan.shard = machine_shard;
    cfg.scan.shards = 2;
    auto result = run_parallel_scan(cfg);
    ASSERT_TRUE(result.ok) << result.error;
    auto hops = hop_set(result.collector);
    all_hops.insert(hops.begin(), hops.end());
    sent += result.stats.sent;
  }
  EXPECT_EQ(sent, baseline.stats.sent);
  // Aliased responders can fall below threshold inside one machine shard,
  // so compare against the union of hops and aliased.
  std::set<std::string> expected = baseline.hops;
  expected.insert(baseline.aliased.begin(), baseline.aliased.end());
  for (const auto& hop : all_hops) {
    EXPECT_TRUE(expected.count(hop)) << "unexpected responder " << hop;
  }
  for (const auto& hop : baseline.hops) {
    EXPECT_TRUE(all_hops.count(hop)) << "lost responder " << hop;
  }
}

TEST(ParallelExecutor, MonitorEmitsStatusLinesAndJsonSummary) {
  std::ostringstream status;
  auto cfg = make_config(2);
  cfg.status_out = &status;
  cfg.status_interval_ms = 10;
  auto result = run_parallel_scan(cfg);
  ASSERT_TRUE(result.ok) << result.error;

  const std::string text = status.str();
  // At least the initial and the final status line, plus the JSON object.
  EXPECT_NE(text.find("send:"), std::string::npos) << text;
  EXPECT_NE(text.find("workers: 2/2 done"), std::string::npos) << text;
  EXPECT_NE(text.find("(done)"), std::string::npos) << text;
  EXPECT_NE(text.find("\"threads\":2"), std::string::npos) << text;
  EXPECT_NE(text.find("\"per_worker\":["), std::string::npos) << text;
  // The snapshot the caller gets is the same one written to the stream.
  EXPECT_NE(text.find(result.metrics), std::string::npos);
  EXPECT_EQ(result.metrics.find("{"), 0u);
}

TEST(ParallelExecutor, RejectsBadConfigs) {
  auto cfg = make_config(0);
  EXPECT_FALSE(run_parallel_scan(cfg).ok);  // threads < 1

  cfg = make_config(2);
  cfg.module = nullptr;
  EXPECT_FALSE(run_parallel_scan(cfg).ok);

  cfg = make_config(2);
  cfg.scan.shard = 3;
  cfg.scan.shards = 2;
  EXPECT_FALSE(run_parallel_scan(cfg).ok);

  cfg = make_config(2);
  cfg.world_specs.clear();
  EXPECT_FALSE(run_parallel_scan(cfg).ok);
}

TEST(ParallelExecutor, TinyQueueStillCompletesViaBackpressure) {
  auto cfg = make_config(4);
  cfg.queue_capacity = 1;  // maximum backpressure
  auto result = run_parallel_scan(cfg);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(hop_set(result.collector),
            classic_single_thread_scan().hops);
}

// Acceptance: with a fault plan installed, the merged record stream is
// identical for every thread count — fault fates are keyed by packet and
// time, not by worker call order.
TEST(ParallelExecutor, FaultsPreserveThreadCountDeterminism) {
  auto faulted = [](int threads) {
    auto cfg = make_config(threads);
    cfg.faults.access.loss = 0.2;
    cfg.faults.access.burst.rate_per_sec = 3.0;
    cfg.faults.access.burst.mean_ms = 60.0;
    cfg.faults.access.duplicate = 0.05;
    cfg.faults.access.corrupt = 0.02;
    cfg.faults.access.jitter_ms = 1.0;
    cfg.faults.silent.fraction = 0.05;
    cfg.scan.retries = 2;
    return run_parallel_scan(cfg);
  };
  auto reference = faulted(1);
  ASSERT_TRUE(reference.ok) << reference.error;
  EXPECT_GT(reference.stats.retransmits, 0u);
  const std::string expect = records_fingerprint(reference);
  for (int threads : {2, 5}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    auto result = faulted(threads);
    ASSERT_TRUE(result.ok) << result.error;
    // record.worker differs by construction; compare response streams.
    std::ostringstream a, b;
    for (const auto& r : reference.records) {
      a << r.response.responder.to_string() << '|'
        << r.response.probe_dst.to_string() << '|' << r.when << '\n';
    }
    for (const auto& r : result.records) {
      b << r.response.responder.to_string() << '|'
        << r.response.probe_dst.to_string() << '|' << r.when << '\n';
    }
    EXPECT_EQ(a.str(), b.str());
    // Stats invariants hold in aggregate too.
    EXPECT_EQ(result.stats.sent, reference.stats.sent);
    EXPECT_EQ(result.stats.validated, reference.stats.validated);
    EXPECT_EQ(result.stats.corrupted, reference.stats.corrupted);
    EXPECT_EQ(result.stats.duplicates, reference.stats.duplicates);
    EXPECT_EQ(result.stats.validated + result.stats.discarded +
                  result.stats.corrupted + result.stats.late,
              result.stats.received);
  }
  (void)expect;
}

// A probe module that throws on the first make_probe call that observes the
// trigger flag — exactly one worker hits it, the rest scan normally.
class ThrowingProbe final : public scan::ProbeModule {
 public:
  [[nodiscard]] std::string name() const override { return "throwing"; }
  [[nodiscard]] pkt::Bytes make_probe(const net::Ipv6Address& src,
                                      const net::Ipv6Address& target,
                                      std::uint64_t seed) const override {
    if (!armed_.test_and_set()) {
      throw std::runtime_error("injected probe-module failure");
    }
    return inner_.make_probe(src, target, seed);
  }
  [[nodiscard]] std::optional<scan::ProbeResponse> classify(
      const pkt::Bytes& packet, const net::Ipv6Address& src,
      std::uint64_t seed) const override {
    return inner_.classify(packet, src, seed);
  }

 private:
  scan::IcmpEchoProbe inner_{64};
  mutable std::atomic_flag armed_ = ATOMIC_FLAG_INIT;
};

// Satellite requirement: a throwing worker is contained — no
// std::terminate, a structured per-worker error, failed_workers surfaced in
// the result and the metrics JSON, and the remaining workers finish.
TEST(ParallelExecutor, WorkerExceptionIsContainedAndReported) {
  ThrowingProbe module;
  std::ostringstream status;
  auto cfg = make_config(4);
  cfg.module = &module;
  cfg.status_out = &status;
  auto result = run_parallel_scan(cfg);
  ASSERT_TRUE(result.ok) << result.error;

  EXPECT_EQ(result.failed_workers, 1);
  int failed = 0;
  for (const auto& worker : result.workers) {
    if (worker.failed) {
      ++failed;
      EXPECT_NE(worker.error.find("injected probe-module failure"),
                std::string::npos)
          << worker.error;
    } else {
      EXPECT_TRUE(worker.error.empty());
      EXPECT_GT(worker.stats.sent, 0u);  // survivors completed their shards
    }
  }
  EXPECT_EQ(failed, 1);

  const std::string text = status.str();
  EXPECT_NE(text.find("\"workers_failed\":1"), std::string::npos) << text;
  EXPECT_NE(text.find("injected probe-module failure"), std::string::npos)
      << text;
  EXPECT_NE(text.find("FAILED"), std::string::npos) << text;
}

}  // namespace
}  // namespace xmap::engine
