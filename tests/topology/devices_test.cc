// Behavioural tests for the device models — these encode the RFC 4443 /
// RFC 7084 behaviours the paper's discovery technique and loop attack rely
// on, exercised over the event-driven network with real packets.
#include <gtest/gtest.h>

#include "services/service.h"
#include "topology/devices.h"

namespace xmap::topo {
namespace {

using net::Ipv6Address;
using net::Ipv6Prefix;

Ipv6Prefix pfx(const char* text) { return *Ipv6Prefix::parse(text); }
Ipv6Address addr(const char* text) { return *Ipv6Address::parse(text); }

// Captures everything it receives.
class Probe : public sim::Node {
 public:
  void receive(pkt::Bytes packet, int) override {
    received.push_back(packet);
  }
  void emit(int iface, pkt::Bytes p) { send(iface, std::move(p)); }
  std::vector<pkt::Bytes> received;

  // Convenience: parse of the i-th received packet.
  [[nodiscard]] pkt::Icmpv6View icmp(std::size_t i) const {
    return pkt::Icmpv6View{pkt::Ipv6View{received[i]}.payload()};
  }
};

const Ipv6Address kScanner = addr("2001:500::1");

// -------------------------- CPE fixture ------------------------------------

struct CpeWorld {
  sim::Network net{7};
  Probe* probe;
  CpeRouter* cpe;
  int probe_iface;

  explicit CpeWorld(CpeRouter::Config cfg) {
    probe = net.make_node<Probe>();
    cpe = net.make_node<CpeRouter>(cfg);
    auto att = net.connect(probe->id(), cpe->id());
    probe_iface = att.iface_a;
  }

  void send_probe(const Ipv6Address& dst, std::uint8_t hop_limit = 64) {
    probe->emit(probe_iface,
                pkt::build_echo_request(kScanner, dst, hop_limit, 1, 1));
    net.run();
  }
};

CpeRouter::Config patched_cpe() {
  CpeRouter::Config cfg;
  cfg.wan_prefix = pfx("2001:db8:1234:5678::/64");
  cfg.wan_address = addr("2001:db8:1234:5678::ab");
  cfg.lan_prefix = pfx("2001:db8:4321:8760::/60");
  cfg.subnet_prefix = pfx("2001:db8:4321:8765::/64");
  return cfg;
}

CpeRouter::Config vulnerable_cpe() {
  CpeRouter::Config cfg = patched_cpe();
  cfg.loop_wan = true;
  cfg.loop_lan = true;
  return cfg;
}

TEST(CpeRouter, EchoToWanAddressGetsReply) {
  CpeWorld w{patched_cpe()};
  w.send_probe(addr("2001:db8:1234:5678::ab"));
  ASSERT_EQ(w.probe->received.size(), 1u);
  EXPECT_EQ(w.probe->icmp(0).type(), pkt::Icmpv6Type::kEchoReply);
  EXPECT_EQ(w.cpe->counters().echo_replies_sent, 1u);
}

TEST(CpeRouter, NxAddressInSubnetYieldsAddressUnreachableFromWanAddress) {
  // THE core discovery behaviour: a probe to a nonexistent host inside the
  // advertised subnet exposes the CPE's WAN address.
  CpeWorld w{patched_cpe()};
  w.send_probe(addr("2001:db8:4321:8765::dead"));
  ASSERT_EQ(w.probe->received.size(), 1u);
  pkt::Ipv6View ip{w.probe->received[0]};
  EXPECT_EQ(ip.src(), addr("2001:db8:1234:5678::ab"));  // WAN address!
  EXPECT_EQ(w.probe->icmp(0).type(), pkt::Icmpv6Type::kDestUnreachable);
  EXPECT_EQ(w.probe->icmp(0).code(),
            static_cast<std::uint8_t>(pkt::UnreachCode::kAddressUnreachable));
}

TEST(CpeRouter, UnreachableQuotesInvokingProbe) {
  CpeWorld w{patched_cpe()};
  const auto target = addr("2001:db8:4321:8765::dead");
  w.send_probe(target);
  ASSERT_EQ(w.probe->received.size(), 1u);
  pkt::Ipv6View quoted{w.probe->icmp(0).invoking_packet()};
  ASSERT_TRUE(quoted.valid());
  EXPECT_EQ(quoted.dst(), target);
  EXPECT_EQ(quoted.src(), kScanner);
}

TEST(CpeRouter, PatchedNotUsedPrefixYieldsNoRoute) {
  CpeWorld w{patched_cpe()};
  w.send_probe(addr("2001:db8:4321:8769::1"));  // delegated but not assigned
  ASSERT_EQ(w.probe->received.size(), 1u);
  EXPECT_EQ(w.probe->icmp(0).type(), pkt::Icmpv6Type::kDestUnreachable);
  EXPECT_EQ(w.probe->icmp(0).code(),
            static_cast<std::uint8_t>(pkt::UnreachCode::kNoRoute));
  EXPECT_EQ(w.cpe->counters().forwarded, 0u);
}

TEST(CpeRouter, PatchedNxWanAddressYieldsAddressUnreachable) {
  CpeWorld w{patched_cpe()};
  w.send_probe(addr("2001:db8:1234:5678::ffff"));
  ASSERT_EQ(w.probe->received.size(), 1u);
  EXPECT_EQ(w.probe->icmp(0).code(),
            static_cast<std::uint8_t>(pkt::UnreachCode::kAddressUnreachable));
}

TEST(CpeRouter, VulnerableNotUsedPrefixBouncesToDefaultRoute) {
  // The Section VI flaw: the packet comes straight back out of the WAN with
  // the hop limit decremented, instead of an unreachable error.
  CpeWorld w{vulnerable_cpe()};
  w.send_probe(addr("2001:db8:4321:8769::1"), 33);
  ASSERT_EQ(w.probe->received.size(), 1u);
  pkt::Ipv6View ip{w.probe->received[0]};
  EXPECT_EQ(ip.next_header(), pkt::kProtoIcmpv6);
  pkt::Icmpv6View icmp{ip.payload()};
  EXPECT_EQ(icmp.type(), pkt::Icmpv6Type::kEchoRequest);  // the probe itself
  EXPECT_EQ(ip.hop_limit(), 32);  // decremented once
  EXPECT_EQ(w.cpe->counters().forwarded, 1u);
}

TEST(CpeRouter, VulnerableNxWanAddressBouncesToo) {
  CpeWorld w{vulnerable_cpe()};
  w.send_probe(addr("2001:db8:1234:5678::ffff"), 33);
  ASSERT_EQ(w.probe->received.size(), 1u);
  EXPECT_EQ(pkt::Ipv6View{w.probe->received[0]}.hop_limit(), 32);
}

TEST(CpeRouter, HopLimitOneYieldsTimeExceeded) {
  CpeWorld w{vulnerable_cpe()};
  w.send_probe(addr("2001:db8:4321:8769::1"), 1);
  ASSERT_EQ(w.probe->received.size(), 1u);
  EXPECT_EQ(w.probe->icmp(0).type(), pkt::Icmpv6Type::kTimeExceeded);
  pkt::Ipv6View ip{w.probe->received[0]};
  EXPECT_EQ(ip.src(), addr("2001:db8:1234:5678::ab"));
}

TEST(CpeRouter, LoopCapStopsForwardingAFlow) {
  CpeRouter::Config cfg = vulnerable_cpe();
  cfg.loop_cap = 3;
  CpeWorld w{cfg};
  // Same flow (same src/dst) probed repeatedly: forwarded only 3 times.
  for (int i = 0; i < 6; ++i) {
    w.send_probe(addr("2001:db8:4321:8769::1"), 50);
  }
  EXPECT_EQ(w.cpe->counters().forwarded, 3u);
  EXPECT_EQ(w.probe->received.size(), 3u);
}

TEST(CpeRouter, LoopCapIsPerFlow) {
  CpeRouter::Config cfg = vulnerable_cpe();
  cfg.loop_cap = 2;
  CpeWorld w{cfg};
  for (int i = 0; i < 4; ++i) w.send_probe(addr("2001:db8:4321:8769::1"), 50);
  for (int i = 0; i < 4; ++i) w.send_probe(addr("2001:db8:4321:8769::2"), 50);
  EXPECT_EQ(w.cpe->counters().forwarded, 4u);  // 2 per flow
}

TEST(CpeRouter, InstallUnreachableRoutesFixesTheFlaw) {
  CpeWorld w{vulnerable_cpe()};
  w.cpe->install_unreachable_routes();
  w.send_probe(addr("2001:db8:4321:8769::1"), 33);
  ASSERT_EQ(w.probe->received.size(), 1u);
  EXPECT_EQ(w.probe->icmp(0).type(), pkt::Icmpv6Type::kDestUnreachable);
  EXPECT_EQ(w.cpe->counters().forwarded, 0u);
}

TEST(CpeRouter, ExistingLanHostSwallowedWhenNoLanSegment) {
  CpeRouter::Config cfg = patched_cpe();
  CpeWorld w{cfg};
  w.cpe->add_lan_host(addr("2001:db8:4321:8765::77"));
  w.send_probe(addr("2001:db8:4321:8765::77"));
  EXPECT_TRUE(w.probe->received.empty());  // delivered, host not simulated
  EXPECT_EQ(w.cpe->counters().delivered_local, 1u);
}

TEST(CpeRouter, ForwardsToRealLanHost) {
  CpeRouter::Config cfg = patched_cpe();
  sim::Network net{9};
  auto* probe = net.make_node<Probe>();
  auto* cpe = net.make_node<CpeRouter>(cfg);
  auto wan = net.connect(probe->id(), cpe->id());
  auto* host = net.make_node<LanHost>(addr("2001:db8:4321:8765::77"));
  auto lan = net.connect(cpe->id(), host->id());
  cpe->set_lan_iface(lan.iface_a);
  cpe->add_lan_host(host->address());

  probe->emit(wan.iface_a,
              pkt::build_echo_request(kScanner, host->address(), 64, 1, 1));
  net.run();
  // Echo reply comes back from the LAN host through the CPE.
  ASSERT_EQ(probe->received.size(), 1u);
  EXPECT_EQ(pkt::Ipv6View{probe->received[0]}.src(), host->address());
  EXPECT_EQ(host->counters().echo_replies_sent, 1u);
}

TEST(CpeRouter, NeverAnswersIcmpErrorWithError) {
  CpeWorld w{patched_cpe()};
  // Deliver a Time Exceeded aimed at a nonexistent subnet address.
  auto inner = pkt::build_echo_request(kScanner, addr("2001:db8::1"), 64, 1, 1);
  auto err = pkt::build_icmpv6_error(addr("2001:db8:ffff::1"),
                                     pkt::Icmpv6Type::kTimeExceeded, 0, inner);
  // Rewrite destination to the CPE's nonexistent subnet space.
  pkt::Bytes crafted = pkt::build_ipv6(
      addr("2001:db8:ffff::1"), addr("2001:db8:4321:8765::dead"),
      pkt::kProtoIcmpv6, 64, pkt::Ipv6View{err}.payload());
  w.probe->emit(w.probe_iface, crafted);
  w.net.run();
  EXPECT_TRUE(w.probe->received.empty());
}

TEST(CpeRouter, IcmpErrorsAreRateLimited) {
  CpeRouter::Config cfg = patched_cpe();
  cfg.icmp_rate_per_sec = 10;
  cfg.icmp_burst = 5;
  CpeWorld w{cfg};
  // 50 instantaneous probes: only the burst gets errors.
  for (int i = 0; i < 50; ++i) {
    w.probe->emit(w.probe_iface,
                  pkt::build_echo_request(
                      kScanner, addr("2001:db8:4321:8765::dead"), 64, 1,
                      static_cast<std::uint16_t>(i)));
  }
  w.net.run();
  EXPECT_EQ(w.probe->received.size(), 5u);
}

TEST(CpeRouter, ServicesReachableOnWanAddress) {
  CpeRouter::Config cfg = patched_cpe();
  CpeWorld w{cfg};
  w.cpe->services().bind(svc::make_service(svc::ServiceKind::kSsh,
                                           {"dropbear", "0.46"}, "ZTE"));
  w.probe->emit(w.probe_iface,
                pkt::build_tcp(kScanner, addr("2001:db8:1234:5678::ab"), 40000,
                               22, 1, 0, pkt::kTcpSyn, 65535));
  w.net.run();
  ASSERT_EQ(w.probe->received.size(), 1u);
  pkt::TcpView tcp{pkt::Ipv6View{w.probe->received[0]}.payload()};
  EXPECT_EQ(tcp.flags(), pkt::kTcpSyn | pkt::kTcpAck);
}

TEST(CpeRouter, MulticastAndLinkLocalDropped) {
  CpeWorld w{patched_cpe()};
  w.send_probe(addr("ff02::1"));
  w.send_probe(addr("fe80::1"));
  EXPECT_TRUE(w.probe->received.empty());
  EXPECT_EQ(w.cpe->counters().dropped, 2u);
}

// -------------------------- UE fixture -------------------------------------

struct UeWorld {
  sim::Network net{11};
  Probe* probe;
  UeDevice* ue;
  int probe_iface;

  UeWorld() {
    UeDevice::Config cfg;
    cfg.ue_prefix = pfx("2001:db8:abcd:ef12::/64");
    cfg.ue_address = addr("2001:db8:abcd:ef12::99");
    probe = net.make_node<Probe>();
    ue = net.make_node<UeDevice>(cfg);
    auto att = net.connect(probe->id(), ue->id());
    probe_iface = att.iface_a;
  }

  void send_probe(const Ipv6Address& dst) {
    probe->emit(probe_iface, pkt::build_echo_request(kScanner, dst, 64, 1, 1));
    net.run();
  }
};

TEST(UeDevice, AnswersEchoOnOwnAddress) {
  UeWorld w;
  w.send_probe(addr("2001:db8:abcd:ef12::99"));
  ASSERT_EQ(w.probe->received.size(), 1u);
  EXPECT_EQ(w.probe->icmp(0).type(), pkt::Icmpv6Type::kEchoReply);
}

TEST(UeDevice, NxAddressInUePrefixYieldsUnreachableFromUeAddress) {
  UeWorld w;
  w.send_probe(addr("2001:db8:abcd:ef12::dead"));
  ASSERT_EQ(w.probe->received.size(), 1u);
  EXPECT_EQ(pkt::Ipv6View{w.probe->received[0]}.src(),
            addr("2001:db8:abcd:ef12::99"));
  EXPECT_EQ(w.probe->icmp(0).type(), pkt::Icmpv6Type::kDestUnreachable);
  EXPECT_EQ(w.probe->icmp(0).code(),
            static_cast<std::uint8_t>(pkt::UnreachCode::kAddressUnreachable));
}

TEST(UeDevice, DoesNotForwardForeignTraffic) {
  UeWorld w;
  w.send_probe(addr("2001:db8:ffff::1"));
  EXPECT_TRUE(w.probe->received.empty());
  EXPECT_EQ(w.ue->counters().dropped, 1u);
}

TEST(UeDevice, NeverAnswersErrorWithError) {
  UeWorld w;
  auto inner = pkt::build_echo_request(kScanner, addr("2001:db8::1"), 64, 1, 1);
  auto err = pkt::build_ipv6(
      kScanner, addr("2001:db8:abcd:ef12::dead"), pkt::kProtoIcmpv6, 64,
      pkt::Ipv6View{pkt::build_icmpv6_error(kScanner,
                                            pkt::Icmpv6Type::kTimeExceeded, 0,
                                            inner)}
          .payload());
  w.probe->emit(w.probe_iface, err);
  w.net.run();
  EXPECT_TRUE(w.probe->received.empty());
}

// -------------------------- Router -----------------------------------------

struct RouterWorld {
  sim::Network net{13};
  Probe* probe;
  Router* router;
  Probe* downstream;
  int probe_iface;
  int router_down_iface;

  explicit RouterWorld(RouteAction no_route = RouteAction::kBlackhole) {
    Router::Config cfg;
    cfg.address = addr("2001:db8::1");
    cfg.no_route_action = no_route;
    probe = net.make_node<Probe>();
    router = net.make_node<Router>(cfg);
    downstream = net.make_node<Probe>();
    auto up = net.connect(probe->id(), router->id());
    probe_iface = up.iface_a;
    auto down = net.connect(router->id(), downstream->id());
    router_down_iface = down.iface_a;
  }
};

TEST(Router, ForwardsAlongLongestMatch) {
  RouterWorld w;
  w.router->table().add_forward(pfx("2001:db8:1::/48"), w.router_down_iface);
  w.probe->emit(w.probe_iface, pkt::build_echo_request(
                                   kScanner, addr("2001:db8:1::5"), 64, 1, 1));
  w.net.run();
  ASSERT_EQ(w.downstream->received.size(), 1u);
  EXPECT_EQ(pkt::Ipv6View{w.downstream->received[0]}.hop_limit(), 63);
}

TEST(Router, UnreachableRouteGeneratesNoRouteError) {
  RouterWorld w;
  w.router->table().add_unreachable(pfx("2001:db8:dead::/48"));
  w.probe->emit(w.probe_iface, pkt::build_echo_request(
                                   kScanner, addr("2001:db8:dead::1"), 64, 1, 1));
  w.net.run();
  ASSERT_EQ(w.probe->received.size(), 1u);
  pkt::Icmpv6View icmp{pkt::Ipv6View{w.probe->received[0]}.payload()};
  EXPECT_EQ(icmp.type(), pkt::Icmpv6Type::kDestUnreachable);
  EXPECT_EQ(icmp.code(), static_cast<std::uint8_t>(pkt::UnreachCode::kNoRoute));
}

TEST(Router, NoRoutePolicyBlackholeIsSilent) {
  RouterWorld w{RouteAction::kBlackhole};
  w.probe->emit(w.probe_iface, pkt::build_echo_request(
                                   kScanner, addr("9999::1"), 64, 1, 1));
  w.net.run();
  EXPECT_TRUE(w.probe->received.empty());
}

TEST(Router, NoRoutePolicyUnreachableAnswers) {
  RouterWorld w{RouteAction::kUnreachable};
  w.probe->emit(w.probe_iface, pkt::build_echo_request(
                                   kScanner, addr("9999::1"), 64, 1, 1));
  w.net.run();
  ASSERT_EQ(w.probe->received.size(), 1u);
  EXPECT_EQ(pkt::Ipv6View{w.probe->received[0]}.src(), addr("2001:db8::1"));
}

TEST(Router, HopLimitExpiryGeneratesTimeExceeded) {
  RouterWorld w;
  w.router->table().add_forward(pfx("2001:db8:1::/48"), w.router_down_iface);
  w.probe->emit(w.probe_iface, pkt::build_echo_request(
                                   kScanner, addr("2001:db8:1::5"), 1, 1, 1));
  w.net.run();
  ASSERT_EQ(w.probe->received.size(), 1u);
  pkt::Icmpv6View icmp{pkt::Ipv6View{w.probe->received[0]}.payload()};
  EXPECT_EQ(icmp.type(), pkt::Icmpv6Type::kTimeExceeded);
  EXPECT_TRUE(w.downstream->received.empty());
}

TEST(Router, AnswersEchoOnOwnAddress) {
  RouterWorld w;
  w.probe->emit(w.probe_iface,
                pkt::build_echo_request(kScanner, addr("2001:db8::1"), 64, 1, 1));
  w.net.run();
  ASSERT_EQ(w.probe->received.size(), 1u);
  pkt::Icmpv6View icmp{pkt::Ipv6View{w.probe->received[0]}.payload()};
  EXPECT_EQ(icmp.type(), pkt::Icmpv6Type::kEchoReply);
}

// -------------------------- Full loop across ISP + CPE ---------------------

TEST(RoutingLoop, PacketPingPongsUntilHopLimitExhausts) {
  sim::Network net{17};
  auto* probe = net.make_node<Probe>();

  Router::Config isp_cfg;
  isp_cfg.address = addr("2001:db8::1");
  auto* isp = net.make_node<Router>(isp_cfg);

  CpeRouter::Config cpe_cfg = vulnerable_cpe();
  auto* cpe = net.make_node<CpeRouter>(cpe_cfg);

  auto up = net.connect(isp->id(), probe->id());
  auto down = net.connect(isp->id(), cpe->id());
  isp->table().add_default(up.iface_a);
  isp->table().add_forward(cpe_cfg.wan_prefix, down.iface_a);
  isp->table().add_forward(cpe_cfg.lan_prefix, down.iface_a);

  // Attacker packet with hop limit 255 to a not-used address.
  probe->emit(up.iface_b, pkt::build_echo_request(
                              kScanner, addr("2001:db8:4321:8769::1"), 255, 7,
                              7));
  net.run();

  // The ISP<->CPE link carried the packet (255 - n) times in total, n being
  // the hops before the ISP (here 1: the ISP itself decrements first).
  const auto& stats = net.link_stats(down.link);
  EXPECT_GT(stats.packets_total(), 200u);  // amplification factor > 200
  // The loop ends with a Time Exceeded back to the source.
  ASSERT_FALSE(probe->received.empty());
  pkt::Icmpv6View icmp{pkt::Ipv6View{probe->received.back()}.payload()};
  EXPECT_EQ(icmp.type(), pkt::Icmpv6Type::kTimeExceeded);
}

TEST(RoutingLoop, PatchedCpeKillsTheLoopImmediately) {
  sim::Network net{19};
  auto* probe = net.make_node<Probe>();
  Router::Config isp_cfg;
  isp_cfg.address = addr("2001:db8::1");
  auto* isp = net.make_node<Router>(isp_cfg);
  CpeRouter::Config cpe_cfg = patched_cpe();
  auto* cpe = net.make_node<CpeRouter>(cpe_cfg);
  auto up = net.connect(isp->id(), probe->id());
  auto down = net.connect(isp->id(), cpe->id());
  isp->table().add_default(up.iface_a);
  isp->table().add_forward(cpe_cfg.lan_prefix, down.iface_a);

  probe->emit(up.iface_b, pkt::build_echo_request(
                              kScanner, addr("2001:db8:4321:8769::1"), 255, 7,
                              7));
  net.run();
  EXPECT_LE(net.link_stats(down.link).packets_total(), 2u);
  ASSERT_EQ(probe->received.size(), 1u);
  pkt::Icmpv6View icmp{pkt::Ipv6View{probe->received[0]}.payload()};
  EXPECT_EQ(icmp.type(), pkt::Icmpv6Type::kDestUnreachable);
  EXPECT_EQ(icmp.code(), static_cast<std::uint8_t>(pkt::UnreachCode::kNoRoute));
}

TEST(IcmpRateLimiterUnit, RefillsOverTime) {
  IcmpRateLimiter limiter{100, 2};  // 100/s, burst 2
  EXPECT_TRUE(limiter.allow(0));
  EXPECT_TRUE(limiter.allow(0));
  EXPECT_FALSE(limiter.allow(0));
  EXPECT_EQ(limiter.suppressed(), 1u);
  // 10ms later one token has refilled.
  EXPECT_TRUE(limiter.allow(10 * sim::kMillisecond));
  EXPECT_FALSE(limiter.allow(10 * sim::kMillisecond));
}

TEST(IcmpRateLimiterUnit, ZeroRateMeansUnlimited) {
  IcmpRateLimiter limiter{0};
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(limiter.allow(0));
  // Unlimited mode never counts suppressions.
  EXPECT_EQ(limiter.suppressed(), 0u);
}

TEST(IcmpRateLimiterUnit, IdleRefillIsCappedAtBurst) {
  IcmpRateLimiter limiter{1000, 3};
  // Exhaust the bucket, then go idle for an hour: the bucket must refill to
  // the burst size, not to an hour's worth of tokens.
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(limiter.allow(0));
  EXPECT_FALSE(limiter.allow(0));
  const sim::SimTime later = 3600 * sim::kSecond;
  int granted = 0;
  while (limiter.allow(later)) ++granted;
  EXPECT_EQ(granted, 3);
}

TEST(IcmpRateLimiterUnit, RefillBoundaryIsExact) {
  IcmpRateLimiter limiter{100, 1};  // one token per 10ms
  EXPECT_TRUE(limiter.allow(0));
  // 9.99ms: fractionally under one token — still limited.
  EXPECT_FALSE(limiter.allow(9990 * sim::kMicrosecond));
  // The earlier partial refill is retained; 10us later the token completes.
  EXPECT_TRUE(limiter.allow(10 * sim::kMillisecond));
}

TEST(IcmpRateLimiterUnit, SuppressedCountsEveryDenialUnderSustainedLoad) {
  IcmpRateLimiter limiter{10, 1};  // 10/s
  std::uint64_t granted = 0;
  // 1000 arrivals over one second at 1ms spacing against a 10/s limiter.
  for (int i = 0; i < 1000; ++i) {
    if (limiter.allow(static_cast<sim::SimTime>(i) * sim::kMillisecond)) {
      ++granted;
    }
  }
  EXPECT_EQ(granted + limiter.suppressed(), 1000u);
  // Sustained throughput converges on the configured rate (burst of 1).
  EXPECT_GE(granted, 10u);
  EXPECT_LE(granted, 12u);
}

}  // namespace
}  // namespace xmap::topo
