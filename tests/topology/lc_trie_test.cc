// Property tests for the compiled LC-trie lookup path in PrefixMap: for any
// prefix set and any address, lookup() (skip/stride walk over the compiled
// index) must return exactly what lookup_linear() (the plain one-bit-per-step
// binary-trie walk) returns.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "netbase/ipv6.h"
#include "netbase/random.h"
#include "topology/prefix_map.h"

namespace xmap::topo {
namespace {

using net::Ipv6Address;
using net::Ipv6Prefix;
using net::Rng;
using net::Uint128;

Ipv6Address random_addr(Rng& rng) {
  return Ipv6Address::from_value(Uint128{rng.next(), rng.next()});
}

// Checks lookup() against lookup_linear() on `probes` random addresses plus
// one address inside every inserted prefix (mutated around the prefix
// boundary so both just-inside and just-outside bit patterns occur).
void expect_equivalent(const PrefixMap<int>& map,
                       const std::vector<Ipv6Prefix>& prefixes, Rng& rng,
                       int probes) {
  for (int i = 0; i < probes; ++i) {
    const Ipv6Address a = random_addr(rng);
    const int* fast = map.lookup(a);
    const int* ref = map.lookup_linear(a);
    ASSERT_EQ(fast == nullptr, ref == nullptr) << a.to_string();
    if (ref != nullptr) {
      ASSERT_EQ(*fast, *ref) << a.to_string();
    }
  }
  for (const auto& p : prefixes) {
    Uint128 v = p.address().value();
    // Randomise host bits below the prefix, then flip one bit at a random
    // depth — sometimes inside the prefix (leaves it), sometimes below.
    for (int b = 0; b < 128 - p.length(); ++b) {
      v.set_bit(b, rng.uniform(2) == 1);
    }
    if (p.length() > 0) {
      const int flip = static_cast<int>(rng.uniform(128));
      v.set_bit(127 - flip, !v.bit(127 - flip));
    }
    const Ipv6Address a = Ipv6Address::from_value(v);
    const int* fast = map.lookup(a);
    const int* ref = map.lookup_linear(a);
    ASSERT_EQ(fast == nullptr, ref == nullptr) << a.to_string();
    if (ref != nullptr) {
      ASSERT_EQ(*fast, *ref) << a.to_string();
    }
  }
}

TEST(LcTrie, EmptyMapMatchesNothing) {
  PrefixMap<int> map;
  Rng rng{1};
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(map.lookup(random_addr(rng)), nullptr);
  }
}

TEST(LcTrie, DefaultRouteOnly) {
  PrefixMap<int> map;
  map.insert(Ipv6Prefix{}, 42);
  Rng rng{2};
  for (int i = 0; i < 64; ++i) {
    const int* v = map.lookup(random_addr(rng));
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, 42);
  }
}

TEST(LcTrie, DenseSequentialPrefixes) {
  // Sibling-dense region: /64s counting up from a common /48, the shape
  // level compression flattens into wide strides.
  PrefixMap<int> map;
  std::vector<Ipv6Prefix> prefixes;
  const Uint128 base{0x2001'0db8'0001'0000, 0};
  for (int i = 0; i < 256; ++i) {
    Uint128 v = base;
    v = Uint128{v.hi() + static_cast<std::uint64_t>(i), v.lo()};
    const Ipv6Prefix p{Ipv6Address::from_value(v), 64};
    map.insert(p, i);
    prefixes.push_back(p);
  }
  Rng rng{3};
  expect_equivalent(map, prefixes, rng, 512);
}

TEST(LcTrie, SparseDeepPrefixes) {
  // Random /128 hosts: long valueless chains that exercise skip strings,
  // including skips longer than 64 bits (which must split across nodes).
  PrefixMap<int> map;
  std::vector<Ipv6Prefix> prefixes;
  Rng rng{4};
  for (int i = 0; i < 128; ++i) {
    const Ipv6Prefix p{random_addr(rng), 128};
    map.insert(p, i);
    prefixes.push_back(p);
  }
  expect_equivalent(map, prefixes, rng, 512);
}

TEST(LcTrie, NestedPrefixChains) {
  // Values at several depths along the same path: stride jumps must pick up
  // the deepest covering value via the pushed slots.
  PrefixMap<int> map;
  std::vector<Ipv6Prefix> prefixes;
  Rng rng{5};
  map.insert(Ipv6Prefix{}, -100);
  prefixes.push_back(Ipv6Prefix{});
  for (int i = 0; i < 64; ++i) {
    const Ipv6Address a = random_addr(rng);
    for (int len : {8, 16, 24, 37, 48, 64, 96, 128}) {
      const Ipv6Prefix p{a, len};
      map.insert(p, i * 1000 + len);
      prefixes.push_back(p);
    }
  }
  expect_equivalent(map, prefixes, rng, 512);
}

TEST(LcTrie, RandomMixedLengths) {
  PrefixMap<int> map;
  std::vector<Ipv6Prefix> prefixes;
  Rng rng{6};
  for (int i = 0; i < 400; ++i) {
    const int len = static_cast<int>(rng.uniform(129));
    const Ipv6Prefix p{random_addr(rng), len};
    map.insert(p, i);
    prefixes.push_back(p);
  }
  expect_equivalent(map, prefixes, rng, 1024);
}

TEST(LcTrie, MutationInvalidatesCompiledIndex) {
  PrefixMap<int> map;
  Rng rng{7};
  const Ipv6Prefix p1{*Ipv6Address::parse("2001:db8::"), 32};
  const Ipv6Prefix p2{*Ipv6Address::parse("2001:db8:1::"), 48};
  const Ipv6Address inside = *Ipv6Address::parse("2001:db8:1::42");

  map.insert(p1, 1);
  ASSERT_NE(map.lookup(inside), nullptr);  // compiles lazily here
  EXPECT_EQ(*map.lookup(inside), 1);

  map.insert(p2, 2);  // must invalidate and recompile
  ASSERT_NE(map.lookup(inside), nullptr);
  EXPECT_EQ(*map.lookup(inside), 2);

  ASSERT_TRUE(map.erase(p2));
  ASSERT_NE(map.lookup(inside), nullptr);
  EXPECT_EQ(*map.lookup(inside), 1);

  ASSERT_TRUE(map.erase(p1));
  EXPECT_EQ(map.lookup(inside), nullptr);
}

TEST(LcTrie, EagerCompileMatchesLazy) {
  PrefixMap<int> map;
  std::vector<Ipv6Prefix> prefixes;
  Rng rng{8};
  for (int i = 0; i < 100; ++i) {
    const Ipv6Prefix p{random_addr(rng),
                       static_cast<int>(rng.uniform(129))};
    map.insert(p, i);
    prefixes.push_back(p);
  }
  map.compile();  // pre-share path: index built before any lookup
  expect_equivalent(map, prefixes, rng, 256);
}

}  // namespace
}  // namespace xmap::topo
