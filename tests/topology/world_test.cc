// World-selector resolution (shared by tools/xmap_sim and the engine).
#include "topology/world.h"

#include <gtest/gtest.h>

#include "topology/paper_profiles.h"

namespace xmap::topo {
namespace {

WorldResult resolve(const std::string& selector, std::uint64_t seed = 1) {
  return resolve_world(selector, seed, paper::vendor_catalog());
}

TEST(ResolveWorld, PaperYieldsTheFifteenCalibratedBlocks) {
  auto result = resolve("paper");
  ASSERT_TRUE(result.specs.has_value()) << result.error;
  EXPECT_EQ(result.specs->size(), 15u);
}

TEST(ResolveWorld, BgpCountIsParsedStrictly) {
  auto result = resolve("bgp:25");
  ASSERT_TRUE(result.specs.has_value()) << result.error;
  EXPECT_EQ(result.specs->size(), 25u);

  for (const char* bad :
       {"bgp:", "bgp:abc", "bgp:0", "bgp:-3", "bgp:12x", "bgp:100001"}) {
    auto rejected = resolve(bad);
    EXPECT_FALSE(rejected.specs.has_value()) << "accepted: " << bad;
    EXPECT_NE(rejected.error.find(bad), std::string::npos) << rejected.error;
  }
}

TEST(ResolveWorld, BgpIsDeterministicPerSeed) {
  auto a = resolve("bgp:10", 7);
  auto b = resolve("bgp:10", 7);
  ASSERT_TRUE(a.specs && b.specs);
  ASSERT_EQ(a.specs->size(), b.specs->size());
  for (std::size_t i = 0; i < a.specs->size(); ++i) {
    EXPECT_EQ((*a.specs)[i].name, (*b.specs)[i].name);
    EXPECT_EQ((*a.specs)[i].block_base, (*b.specs)[i].block_base);
  }
}

TEST(ResolveWorld, MissingFileIsAnError) {
  auto result = resolve("file:/nonexistent/world.json");
  EXPECT_FALSE(result.specs.has_value());
  EXPECT_FALSE(result.error.empty());
}

TEST(ResolveWorld, UnknownSelectorNamesTheGrammar) {
  auto result = resolve("mars");
  ASSERT_FALSE(result.specs.has_value());
  EXPECT_NE(result.error.find("mars"), std::string::npos);
  EXPECT_NE(result.error.find("bgp:<n>"), std::string::npos);
}

}  // namespace
}  // namespace xmap::topo
