#include "topology/spec_loader.h"

#include <gtest/gtest.h>

#include "topology/paper_profiles.h"

namespace xmap::topo {
namespace {

constexpr const char* kGoodDoc = R"({
  "blocks": [
    {
      "name": "ExampleNet",
      "block_base": "3fff:abc::",
      "country": "DE",
      "network": "Broadband",
      "asn": 64500,
      "delegated_len": 60,
      "density": 0.25,
      "wan_inside_lan_fraction": 0.1,
      "iid_weights": [0.2, 0.01, 0.02, 0.05, 0.72],
      "vendors": {"ZTE": 0.5, "Huawei": 0.3, "AVM GmbH": 0.2},
      "unallocated": "unreachable",
      "service_scale": 0.5,
      "loop_scale": 0.4
    },
    {
      "name": "MiniMobile",
      "block_base": "3fff:abd::",
      "ue_model": true,
      "vendors": {"Apple": 1}
    }
  ]
})";

TEST(SpecLoader, LoadsFullDocument) {
  auto result = load_specs_from_json(kGoodDoc, paper::vendor_catalog());
  ASSERT_TRUE(result.specs.has_value()) << result.error;
  ASSERT_EQ(result.specs->size(), 2u);

  const IspSpec& a = (*result.specs)[0];
  EXPECT_EQ(a.name, "ExampleNet");
  EXPECT_EQ(a.country, "DE");
  EXPECT_EQ(a.asn, 64500u);
  EXPECT_EQ(a.delegated_len, 60);
  EXPECT_FALSE(a.ue_model);
  EXPECT_DOUBLE_EQ(a.density, 0.25);
  EXPECT_DOUBLE_EQ(a.wan_inside_lan_fraction, 0.1);
  EXPECT_DOUBLE_EQ(a.iid_weights[0], 0.2);
  EXPECT_DOUBLE_EQ(a.iid_weights[4], 0.72);
  ASSERT_EQ(a.vendor_mix.size(), 3u);
  EXPECT_EQ(a.unallocated, RouteAction::kUnreachable);
  EXPECT_DOUBLE_EQ(a.service_scale, 0.5);

  const IspSpec& b = (*result.specs)[1];
  EXPECT_EQ(b.name, "MiniMobile");
  EXPECT_TRUE(b.ue_model);
  EXPECT_EQ(b.delegated_len, 64);  // default
  EXPECT_EQ(b.unallocated, RouteAction::kBlackhole);  // default
}

TEST(SpecLoader, LoadedSpecsBuildAndScan) {
  auto result = load_specs_from_json(kGoodDoc, paper::vendor_catalog());
  ASSERT_TRUE(result.specs.has_value());
  sim::Network net{3};
  BuildConfig cfg;
  cfg.window_bits = 6;
  cfg.seed = 3;
  auto internet =
      build_internet(net, *result.specs, paper::vendor_catalog(), cfg);
  EXPECT_EQ(internet.isps.size(), 2u);
  EXPECT_GT(internet.total_devices(), 10u);
  // The loaded world is fully functional: geo resolves, devices exist.
  for (const auto& isp : internet.isps) {
    for (const auto& dev : isp.devices) {
      ASSERT_NE(internet.geo.lookup(dev.address), nullptr);
    }
  }
}

struct BadDoc {
  const char* doc;
  const char* expect_fragment;  // must appear in the error
};

class SpecLoaderRejects : public ::testing::TestWithParam<BadDoc> {};

TEST_P(SpecLoaderRejects, Rejects) {
  auto result =
      load_specs_from_json(GetParam().doc, paper::vendor_catalog());
  ASSERT_FALSE(result.specs.has_value()) << GetParam().doc;
  EXPECT_NE(result.error.find(GetParam().expect_fragment), std::string::npos)
      << "error was: " << result.error;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SpecLoaderRejects,
    ::testing::Values(
        BadDoc{"{", "JSON"},
        BadDoc{"[]", "top level"},
        BadDoc{"{}", "blocks"},
        BadDoc{R"({"blocks": []})", "empty"},
        BadDoc{R"({"blocks": [1]})", "must be an object"},
        BadDoc{R"({"blocks": [{"block_base": "3fff::",
                               "vendors": {"ZTE": 1}}]})",
               "name"},
        BadDoc{R"({"blocks": [{"name": "X", "block_base": "nope",
                               "vendors": {"ZTE": 1}}]})",
               "block_base"},
        BadDoc{R"({"blocks": [{"name": "X", "block_base": "3fff::",
                               "delegated_len": 61,
                               "vendors": {"ZTE": 1}}]})",
               "delegated_len"},
        BadDoc{R"({"blocks": [{"name": "X", "block_base": "3fff::",
                               "density": 2, "vendors": {"ZTE": 1}}]})",
               "density"},
        BadDoc{R"({"blocks": [{"name": "X", "block_base": "3fff::",
                               "iid_weights": [1, 2],
                               "vendors": {"ZTE": 1}}]})",
               "iid_weights"},
        BadDoc{R"({"blocks": [{"name": "X", "block_base": "3fff::"}]})",
               "vendors"},
        BadDoc{R"({"blocks": [{"name": "X", "block_base": "3fff::",
                               "vendors": {"NoSuchVendor": 1}}]})",
               "unknown vendor"},
        BadDoc{R"({"blocks": [{"name": "X", "block_base": "3fff::",
                               "vendors": {"ZTE": 0}}]})",
               "positive weight"},
        BadDoc{R"({"blocks": [{"name": "X", "block_base": "3fff::",
                               "unallocated": "dropit",
                               "vendors": {"ZTE": 1}}]})",
               "unallocated"}));

TEST(SpecLoader, FileRoundTrip) {
  const std::string path = "/tmp/xmap_spec_test.json";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(kGoodDoc, f);
    std::fclose(f);
  }
  auto result = load_specs_from_file(path, paper::vendor_catalog());
  EXPECT_TRUE(result.specs.has_value()) << result.error;
  auto missing = load_specs_from_file("/tmp/definitely-not-here-42.json",
                                      paper::vendor_catalog());
  EXPECT_FALSE(missing.specs.has_value());
  EXPECT_NE(missing.error.find("cannot open"), std::string::npos);
}

constexpr const char* kMinimalBlock = R"(
  "blocks": [{"name": "N", "block_base": "3fff::", "vendors": {"ZTE": 1}}])";

TEST(SpecLoader, NoFaultsObjectMeansNoPlan) {
  auto result = load_specs_from_json(std::string{"{"} + kMinimalBlock + "}",
                                     paper::vendor_catalog());
  ASSERT_TRUE(result.specs.has_value()) << result.error;
  EXPECT_FALSE(result.faults.has_value());
}

TEST(SpecLoader, ParsesFullFaultPlan) {
  const std::string doc = std::string{"{"} + kMinimalBlock + R"(,
    "faults": {
      "seed": 9,
      "access": {
        "loss": 0.02,
        "burst": {"rate_per_sec": 2, "mean_ms": 80, "loss": 0.9},
        "duplicate": 0.01, "corrupt": 0.005, "jitter_ms": 3,
        "flap": {"period_ms": 2000, "down_ms": 200, "fraction": 0.3}
      },
      "core": {"loss": 0.001},
      "silent": {"fraction": 0.05, "start_ms": 100, "duration_ms": 500}
    }
  })";
  auto result = load_specs_from_json(doc, paper::vendor_catalog());
  ASSERT_TRUE(result.specs.has_value()) << result.error;
  ASSERT_TRUE(result.faults.has_value());
  const sim::FaultPlan& plan = *result.faults;
  EXPECT_EQ(plan.seed, 9u);
  EXPECT_DOUBLE_EQ(plan.access.loss, 0.02);
  EXPECT_DOUBLE_EQ(plan.access.burst.rate_per_sec, 2);
  EXPECT_DOUBLE_EQ(plan.access.burst.mean_ms, 80);
  EXPECT_DOUBLE_EQ(plan.access.burst.loss, 0.9);
  EXPECT_DOUBLE_EQ(plan.access.duplicate, 0.01);
  EXPECT_DOUBLE_EQ(plan.access.corrupt, 0.005);
  EXPECT_DOUBLE_EQ(plan.access.jitter_ms, 3);
  EXPECT_DOUBLE_EQ(plan.access.flap.period_ms, 2000);
  EXPECT_DOUBLE_EQ(plan.access.flap.down_ms, 200);
  EXPECT_DOUBLE_EQ(plan.access.flap.fraction, 0.3);
  EXPECT_DOUBLE_EQ(plan.core.loss, 0.001);
  EXPECT_DOUBLE_EQ(plan.other.loss, 0);
  EXPECT_DOUBLE_EQ(plan.silent.fraction, 0.05);
  EXPECT_DOUBLE_EQ(plan.silent.start_ms, 100);
  EXPECT_DOUBLE_EQ(plan.silent.duration_ms, 500);
  EXPECT_TRUE(plan.any());
}

TEST(SpecLoader, RejectsBadFaultPlans) {
  auto bad = [&](const char* faults) {
    const std::string doc = std::string{"{"} + kMinimalBlock +
                            ", \"faults\": " + faults + "}";
    return load_specs_from_json(doc, paper::vendor_catalog());
  };
  EXPECT_FALSE(bad("[]").specs.has_value());
  EXPECT_FALSE(bad(R"({"access": {"loss": 1.5}})").specs.has_value());
  EXPECT_FALSE(bad(R"({"access": {"burst": {"rate_per_sec": -1}}})")
                   .specs.has_value());
  EXPECT_FALSE(
      bad(R"({"core": {"flap": {"period_ms": 100, "down_ms": 200}}})")
          .specs.has_value());
  EXPECT_FALSE(bad(R"({"silent": {"fraction": 2}})").specs.has_value());
}

TEST(SpecLoader, NoObsObjectMeansNoConfig) {
  auto result = load_specs_from_json(std::string{"{"} + kMinimalBlock + "}",
                                     paper::vendor_catalog());
  ASSERT_TRUE(result.specs.has_value()) << result.error;
  EXPECT_FALSE(result.obs.has_value());
}

TEST(SpecLoader, ParsesObsSection) {
  const std::string doc = std::string{"{"} + kMinimalBlock + R"(,
    "obs": {"trace_level": "packet", "metrics": true, "profile": true}
  })";
  auto result = load_specs_from_json(doc, paper::vendor_catalog());
  ASSERT_TRUE(result.specs.has_value()) << result.error;
  ASSERT_TRUE(result.obs.has_value());
  EXPECT_EQ(result.obs->trace_level, obs::TraceLevel::kPacket);
  EXPECT_TRUE(result.obs->metrics);
  EXPECT_TRUE(result.obs->profile);

  // Partial object: unspecified fields keep their defaults.
  const std::string partial = std::string{"{"} + kMinimalBlock + R"(,
    "obs": {"metrics": true}
  })";
  auto partial_result = load_specs_from_json(partial, paper::vendor_catalog());
  ASSERT_TRUE(partial_result.obs.has_value());
  EXPECT_EQ(partial_result.obs->trace_level, obs::TraceLevel::kOff);
  EXPECT_TRUE(partial_result.obs->metrics);
  EXPECT_FALSE(partial_result.obs->profile);
}

TEST(SpecLoader, RejectsBadObsSection) {
  auto bad = [&](const char* obs_json) {
    const std::string doc =
        std::string{"{"} + kMinimalBlock + ", \"obs\": " + obs_json + "}";
    return load_specs_from_json(doc, paper::vendor_catalog());
  };
  EXPECT_FALSE(bad("[]").specs.has_value());
  EXPECT_FALSE(bad(R"({"trace_level": "verbose"})").specs.has_value());
}

}  // namespace
}  // namespace xmap::topo
