#include "topology/builder.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "topology/paper_profiles.h"

namespace xmap::topo {
namespace {

using net::Ipv6Address;
using net::Ipv6Prefix;

BuildConfig small_config() {
  BuildConfig cfg;
  cfg.window_bits = 8;  // 256 slots per block: fast tests
  cfg.seed = 42;
  return cfg;
}

TEST(VendorCatalog, LooksSane) {
  const auto& catalog = paper::vendor_catalog();
  EXPECT_GT(catalog.size(), 35u);
  std::unordered_set<std::uint32_t> ouis;
  std::unordered_set<std::string> names;
  for (const auto& v : catalog) {
    EXPECT_FALSE(v.name.empty());
    EXPECT_TRUE(ouis.insert(v.oui).second) << "duplicate OUI " << v.name;
    EXPECT_TRUE(names.insert(v.name).second) << "duplicate name " << v.name;
    for (const auto& dep : v.services) {
      EXPECT_GE(dep.probability, 0.0);
      EXPECT_LE(dep.probability, 1.0);
      EXPECT_FALSE(dep.software.empty());
    }
  }
  EXPECT_GE(paper::vendor_id("ZTE"), 0);
  EXPECT_GE(paper::vendor_id("Apple"), 0);
  EXPECT_EQ(paper::vendor_id("NoSuchVendor"), -1);
}

TEST(IspSpecs, FifteenBlocksMatchingTableI) {
  const auto specs = paper::isp_specs();
  ASSERT_EQ(specs.size(), 15u);
  int len56 = 0, len60 = 0, len64 = 0;
  for (const auto& s : specs) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_FALSE(s.vendor_mix.empty());
    for (const auto& [id, w] : s.vendor_mix) {
      ASSERT_GE(id, 0) << s.name << " has an unknown vendor";
      EXPECT_GT(w, 0.0);
    }
    if (s.delegated_len == 56) ++len56;
    if (s.delegated_len == 60) ++len60;
    if (s.delegated_len == 64) ++len64;
  }
  // Table I: four /56 blocks, four /60 blocks, seven /64 blocks.
  EXPECT_EQ(len56, 4);
  EXPECT_EQ(len60, 4);
  EXPECT_EQ(len64, 7);
}

class BuiltWorld : public ::testing::Test {
 protected:
  BuiltWorld()
      : internet_(build_internet(net_, paper::isp_specs(),
                                 paper::vendor_catalog(), small_config())) {}

  sim::Network net_{42};
  BuiltInternet internet_;
};

TEST_F(BuiltWorld, AllIspsBuilt) {
  EXPECT_EQ(internet_.isps.size(), 15u);
  EXPECT_GT(internet_.total_devices(), 200u);
  for (const auto& isp : internet_.isps) {
    EXPECT_NE(isp.router, nullptr);
    EXPECT_LE(isp.devices.size(), 256u);
  }
}

TEST_F(BuiltWorld, SlotsAreUniqueAndInsideScanWindow) {
  for (const auto& isp : internet_.isps) {
    std::unordered_set<Ipv6Prefix> slots;
    for (const auto& dev : isp.devices) {
      EXPECT_EQ(dev.slot.length(), isp.spec.delegated_len);
      EXPECT_TRUE(isp.scan_base.contains(dev.slot))
          << dev.slot.to_string() << " outside " << isp.scan_base.to_string();
      EXPECT_TRUE(slots.insert(dev.slot).second)
          << "duplicate slot " << dev.slot.to_string();
    }
  }
}

TEST_F(BuiltWorld, DeviceAddressesMatchTheirWanPrefix) {
  for (const auto& isp : internet_.isps) {
    for (const auto& dev : isp.devices) {
      EXPECT_TRUE(dev.wan_prefix.contains(dev.address))
          << dev.address.to_string() << " not in "
          << dev.wan_prefix.to_string();
    }
  }
}

TEST_F(BuiltWorld, Eui64DevicesCarryVendorOui) {
  int eui_count = 0;
  for (const auto& isp : internet_.isps) {
    for (const auto& dev : isp.devices) {
      if (dev.iid_style != net::IidStyle::kEui64) {
        EXPECT_FALSE(dev.mac.has_value());
        continue;
      }
      ++eui_count;
      ASSERT_TRUE(dev.mac.has_value());
      const auto* vendor_name = internet_.oui.lookup(dev.mac->oui());
      ASSERT_NE(vendor_name, nullptr);
      EXPECT_EQ(*vendor_name, internet_.vendor(dev.vendor).name);
      // The IID embedded in the device address recovers the MAC.
      auto recovered = net::MacAddress::from_eui64_iid(dev.address.iid());
      ASSERT_TRUE(recovered.has_value());
      EXPECT_EQ(*recovered, *dev.mac);
    }
  }
  EXPECT_GT(eui_count, 20);
}

TEST_F(BuiltWorld, IidStylesMatchAddresses) {
  for (const auto& isp : internet_.isps) {
    for (const auto& dev : isp.devices) {
      EXPECT_EQ(net::classify_iid(dev.address.iid()), dev.iid_style);
    }
  }
}

TEST_F(BuiltWorld, GeoDbResolvesEveryDeviceToItsIsp) {
  for (const auto& isp : internet_.isps) {
    for (const auto& dev : isp.devices) {
      const GeoInfo* geo = internet_.geo.lookup(dev.address);
      // Devices with separate WAN /64 live in the wan_pool half, still
      // inside the ISP block.
      ASSERT_NE(geo, nullptr) << dev.address.to_string();
      EXPECT_EQ(geo->asn, isp.spec.asn);
      EXPECT_EQ(geo->country, isp.spec.country);
    }
  }
}

TEST_F(BuiltWorld, UeModelIspsContainUeDevices) {
  int ue_devices = 0;
  for (const auto& isp : internet_.isps) {
    for (const auto& dev : isp.devices) {
      if (dev.device_class == DeviceClass::kUe && !dev.separate_wan) {
        ++ue_devices;
        EXPECT_TRUE(isp.spec.ue_model) << isp.spec.name;
        EXPECT_FALSE(dev.loop_wan);
        EXPECT_FALSE(dev.loop_lan);
      }
    }
  }
  EXPECT_GT(ue_devices, 50);
}

TEST_F(BuiltWorld, ProbeElicitsUnreachableEndToEnd) {
  // End-to-end smoke test of the discovery mechanism across the full built
  // topology: probe one allocated slot through the core.
  class Collector : public sim::Node {
   public:
    void receive(pkt::Bytes packet, int) override {
      received.push_back(packet);
    }
    void emit(int iface, pkt::Bytes p) { send(iface, std::move(p)); }
    std::vector<pkt::Bytes> received;
  };
  auto* collector = net_.make_node<Collector>();
  const auto vantage = *Ipv6Prefix::parse("2001:500::/48");
  const int iface = attach_vantage(net_, internet_, collector, vantage);

  const auto& isp = internet_.isps[0];  // Reliance Jio
  ASSERT_FALSE(isp.devices.empty());
  const auto& dev = isp.devices[0];
  const Ipv6Address probe_dst =
      dev.slot.address_with_suffix(net::Uint128{0xdeadbeefcafeULL});
  const Ipv6Address src = *Ipv6Address::parse("2001:500::1");
  collector->emit(iface, pkt::build_echo_request(src, probe_dst, 64, 1, 1));
  net_.run();

  ASSERT_FALSE(collector->received.empty());
  pkt::Ipv6View ip{collector->received[0]};
  pkt::Icmpv6View icmp{ip.payload()};
  // Either the periphery answered unreachable (patched / NX) or the probe
  // address happened to be the device address (echo reply) — for the
  // chosen suffix a collision is essentially impossible.
  EXPECT_EQ(icmp.type(), pkt::Icmpv6Type::kDestUnreachable);
  EXPECT_EQ(ip.src(), dev.address);
}

TEST(Builder, DeterministicForSameSeed) {
  sim::Network net_a{1}, net_b{1};
  const auto cfg = small_config();
  auto a = build_internet(net_a, paper::isp_specs(), paper::vendor_catalog(),
                          cfg);
  auto b = build_internet(net_b, paper::isp_specs(), paper::vendor_catalog(),
                          cfg);
  ASSERT_EQ(a.total_devices(), b.total_devices());
  for (std::size_t i = 0; i < a.isps.size(); ++i) {
    ASSERT_EQ(a.isps[i].devices.size(), b.isps[i].devices.size());
    for (std::size_t j = 0; j < a.isps[i].devices.size(); ++j) {
      EXPECT_EQ(a.isps[i].devices[j].address, b.isps[i].devices[j].address);
      EXPECT_EQ(a.isps[i].devices[j].vendor, b.isps[i].devices[j].vendor);
      EXPECT_EQ(a.isps[i].devices[j].loop_lan, b.isps[i].devices[j].loop_lan);
    }
  }
}

TEST(Builder, DifferentSeedsDiffer) {
  sim::Network net_a{1}, net_b{2};
  auto cfg_a = small_config();
  auto cfg_b = small_config();
  cfg_b.seed = 43;
  auto a = build_internet(net_a, paper::isp_specs(), paper::vendor_catalog(),
                          cfg_a);
  auto b = build_internet(net_b, paper::isp_specs(), paper::vendor_catalog(),
                          cfg_b);
  int diffs = 0;
  const std::size_t n =
      std::min(a.isps[0].devices.size(), b.isps[0].devices.size());
  for (std::size_t j = 0; j < n; ++j) {
    if (a.isps[0].devices[j].address != b.isps[0].devices[j].address) ++diffs;
  }
  EXPECT_GT(diffs, 0);
}

TEST(Builder, PlacementSeedRenumbersWithoutChangingIdentities) {
  auto build = [](std::uint64_t placement) {
    auto net = std::make_unique<sim::Network>(1);
    auto cfg = small_config();
    cfg.placement_seed = placement;
    auto world = build_internet(*net, paper::isp_specs(),
                                paper::vendor_catalog(), cfg);
    return std::pair{std::move(net), std::move(world)};
  };
  auto [net_a, a] = build(111);
  auto [net_b, b] = build(222);
  ASSERT_EQ(a.total_devices(), b.total_devices());

  std::size_t same_slot = 0, same_addr = 0, total = 0;
  for (std::size_t i = 0; i < a.isps.size(); ++i) {
    ASSERT_EQ(a.isps[i].devices.size(), b.isps[i].devices.size());
    for (std::size_t j = 0; j < a.isps[i].devices.size(); ++j) {
      const auto& da = a.isps[i].devices[j];
      const auto& db = b.isps[i].devices[j];
      // Identity is invariant...
      EXPECT_EQ(da.vendor, db.vendor);
      EXPECT_EQ(da.iid_style, db.iid_style);
      EXPECT_EQ(da.mac.has_value(), db.mac.has_value());
      if (da.mac) {
        EXPECT_EQ(*da.mac, *db.mac);
      }
      EXPECT_EQ(da.loop_wan, db.loop_wan);
      EXPECT_EQ(da.loop_lan, db.loop_lan);
      EXPECT_EQ(da.services.size(), db.services.size());
      // ...while placement moves.
      ++total;
      same_slot += da.slot == db.slot ? 1 : 0;
      same_addr += da.address == db.address ? 1 : 0;
    }
  }
  ASSERT_GT(total, 100u);
  EXPECT_LT(same_slot, total / 50);  // essentially everyone moved
  EXPECT_LT(same_addr, total / 50);
}

TEST(Builder, BgpSpecsGenerateDistinctBlocks) {
  const auto specs = paper::bgp_specs(64, 7);
  ASSERT_EQ(specs.size(), 64u);
  std::unordered_set<std::string> blocks;
  std::unordered_set<std::string> countries;
  for (const auto& s : specs) {
    EXPECT_TRUE(blocks.insert(s.block_base.to_string()).second);
    countries.insert(s.country);
    EXPECT_EQ(s.delegated_len, 48);
  }
  EXPECT_GT(countries.size(), 8u);
}

TEST(Builder, BgpWorldBuildsAndResolvesGeo) {
  sim::Network net{5};
  BuildConfig cfg;
  cfg.window_bits = 4;
  cfg.seed = 5;
  auto world = build_internet(net, paper::bgp_specs(32, 7),
                              paper::vendor_catalog(), cfg);
  EXPECT_EQ(world.isps.size(), 32u);
  EXPECT_GT(world.total_devices(), 30u);
  for (const auto& isp : world.isps) {
    for (const auto& dev : isp.devices) {
      const GeoInfo* geo = world.geo.lookup(dev.address);
      ASSERT_NE(geo, nullptr);
      EXPECT_EQ(geo->country, isp.spec.country);
    }
  }
}

}  // namespace
}  // namespace xmap::topo
