// Unit tests for two device behaviours added for calibration fidelity:
// per-flow infra error sourcing (Router::ErrorSource::kPerFlowInfra) and
// periphery ICMP filtering (the §VII mitigation switch).
#include <gtest/gtest.h>

#include <set>

#include "topology/devices.h"

namespace xmap::topo {
namespace {

using net::Ipv6Address;
using net::Ipv6Prefix;

class Probe : public sim::Node {
 public:
  void receive(pkt::Bytes packet, int) override {
    received.push_back(packet);
  }
  void emit(int iface, pkt::Bytes p) { send(iface, std::move(p)); }
  std::vector<pkt::Bytes> received;
};

struct InfraWorld {
  sim::Network net{808};
  Probe* probe;
  Router* router;
  int probe_iface;

  explicit InfraWorld(double answer_fraction, net::IidStyle style,
                      int pool_64s = 4) {
    Router::Config cfg;
    cfg.address = *Ipv6Address::parse("2001:db9::1");
    cfg.no_route_action = RouteAction::kUnreachable;
    cfg.error_source = Router::ErrorSource::kPerFlowInfra;
    cfg.infra_pool = *Ipv6Prefix::parse("2001:db9:ffff:ff00::/56");
    cfg.infra_pool_64s = pool_64s;
    cfg.infra_iid_style = style;
    cfg.infra_oui = 0xb0dc99;
    cfg.unreachable_answer_fraction = answer_fraction;
    probe = net.make_node<Probe>();
    router = net.make_node<Router>(cfg);
    auto att = net.connect(probe->id(), router->id());
    probe_iface = att.iface_a;
  }

  void send_probe(std::uint64_t n) {
    const auto src = *Ipv6Address::parse("2001:500::1");
    const auto base = *Ipv6Prefix::parse("2001:db9:aaaa::/48");
    probe->emit(probe_iface,
                pkt::build_echo_request(
                    src, base.address_with_suffix(net::Uint128{n}), 64, 1, 1));
    net.run();
  }
};

TEST(PerFlowInfra, SourcesComeFromThePoolNotTheRouter) {
  InfraWorld world{1.0, net::IidStyle::kRandomized};
  std::set<Ipv6Address> sources;
  for (std::uint64_t i = 0; i < 64; ++i) world.send_probe(i);
  ASSERT_EQ(world.probe->received.size(), 64u);
  const auto pool = *Ipv6Prefix::parse("2001:db9:ffff:ff00::/56");
  std::set<std::uint64_t> pool64s;
  for (const auto& packet : world.probe->received) {
    const auto src = pkt::Ipv6View{packet}.src();
    EXPECT_NE(src, world.router->address());
    EXPECT_TRUE(pool.contains(src)) << src.to_string();
    sources.insert(src);
    pool64s.insert(src.prefix64());
  }
  EXPECT_GT(sources.size(), 50u);  // per-flow: nearly one source per probe
  EXPECT_LE(pool64s.size(), 4u);   // but confined to the configured /64 pool
}

TEST(PerFlowInfra, DeterministicPerDestination) {
  InfraWorld world{1.0, net::IidStyle::kRandomized};
  world.send_probe(7);
  world.send_probe(7);
  ASSERT_EQ(world.probe->received.size(), 2u);
  EXPECT_EQ(pkt::Ipv6View{world.probe->received[0]}.src(),
            pkt::Ipv6View{world.probe->received[1]}.src());
}

TEST(PerFlowInfra, Eui64StyleCarriesConfiguredOui) {
  InfraWorld world{1.0, net::IidStyle::kEui64};
  world.send_probe(1);
  ASSERT_EQ(world.probe->received.size(), 1u);
  const auto src = pkt::Ipv6View{world.probe->received[0]}.src();
  auto mac = net::MacAddress::from_eui64_iid(src.iid());
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->oui(), 0xb0dc99u);
}

TEST(PerFlowInfra, AnswerFractionIsPartialAndDeterministic) {
  InfraWorld world{0.3, net::IidStyle::kRandomized};
  for (std::uint64_t i = 0; i < 200; ++i) world.send_probe(i);
  const auto answered = world.probe->received.size();
  EXPECT_GT(answered, 30u);
  EXPECT_LT(answered, 90u);  // ~30% of 200
  // Re-probing the same destinations gives the same subset.
  InfraWorld world2{0.3, net::IidStyle::kRandomized};
  for (std::uint64_t i = 0; i < 200; ++i) world2.send_probe(i);
  EXPECT_EQ(world2.probe->received.size(), answered);
}

TEST(IcmpFilter, FilteredCpeIsInvisible) {
  sim::Network net{9};
  auto* probe = net.make_node<Probe>();
  CpeRouter::Config cfg;
  cfg.wan_prefix = *Ipv6Prefix::parse("2001:db9:1:1::/64");
  cfg.wan_address = *Ipv6Address::parse("2001:db9:1:1::5");
  cfg.lan_prefix = *Ipv6Prefix::parse("2001:db9:2::/60");
  cfg.subnet_prefix = *Ipv6Prefix::parse("2001:db9:2::/64");
  auto* cpe = net.make_node<CpeRouter>(cfg);
  auto att = net.connect(probe->id(), cpe->id());

  cpe->set_icmp_filtered(true);
  const auto src = *Ipv6Address::parse("2001:500::1");
  // Echo to the device itself: silently dropped.
  probe->emit(att.iface_a,
              pkt::build_echo_request(src, cfg.wan_address, 64, 1, 1));
  // NX address in the subnet: no unreachable either.
  probe->emit(att.iface_a,
              pkt::build_echo_request(
                  src, *Ipv6Address::parse("2001:db9:2::dead"), 64, 1, 2));
  net.run();
  EXPECT_TRUE(probe->received.empty());

  // Unfiltered again: both answers come back.
  cpe->set_icmp_filtered(false);
  probe->emit(att.iface_a,
              pkt::build_echo_request(src, cfg.wan_address, 64, 1, 3));
  probe->emit(att.iface_a,
              pkt::build_echo_request(
                  src, *Ipv6Address::parse("2001:db9:2::dead"), 64, 1, 4));
  net.run();
  EXPECT_EQ(probe->received.size(), 2u);
}

TEST(IcmpFilter, FilteredUeIsInvisible) {
  sim::Network net{11};
  auto* probe = net.make_node<Probe>();
  UeDevice::Config cfg;
  cfg.ue_prefix = *Ipv6Prefix::parse("2001:db9:5:5::/64");
  cfg.ue_address = *Ipv6Address::parse("2001:db9:5:5::9");
  auto* ue = net.make_node<UeDevice>(cfg);
  auto att = net.connect(probe->id(), ue->id());
  ue->set_icmp_filtered(true);
  const auto src = *Ipv6Address::parse("2001:500::1");
  probe->emit(att.iface_a,
              pkt::build_echo_request(src, cfg.ue_address, 64, 1, 1));
  probe->emit(att.iface_a,
              pkt::build_echo_request(
                  src, *Ipv6Address::parse("2001:db9:5:5::dead"), 64, 1, 2));
  net.run();
  EXPECT_TRUE(probe->received.empty());
}

TEST(IcmpFilter, FilteredCpeStillServesApplications) {
  // Filtering ping does not turn off the exposed services — the two
  // mitigations are independent, as the paper treats them.
  sim::Network net{13};
  auto* probe = net.make_node<Probe>();
  CpeRouter::Config cfg;
  cfg.wan_prefix = *Ipv6Prefix::parse("2001:db9:1:1::/64");
  cfg.wan_address = *Ipv6Address::parse("2001:db9:1:1::5");
  cfg.lan_prefix = *Ipv6Prefix::parse("2001:db9:2::/60");
  cfg.subnet_prefix = *Ipv6Prefix::parse("2001:db9:2::/64");
  auto* cpe = net.make_node<CpeRouter>(cfg);
  cpe->services().bind(svc::make_service(svc::ServiceKind::kSsh,
                                         {"dropbear", "0.46"}, "ZTE"));
  auto att = net.connect(probe->id(), cpe->id());
  cpe->set_icmp_filtered(true);
  probe->emit(att.iface_a,
              pkt::build_tcp(*Ipv6Address::parse("2001:500::1"),
                             cfg.wan_address, 40000, 22, 1, 0, pkt::kTcpSyn,
                             65535));
  net.run();
  ASSERT_EQ(probe->received.size(), 1u);
  pkt::TcpView tcp{pkt::Ipv6View{probe->received[0]}.payload()};
  EXPECT_EQ(tcp.flags(), pkt::kTcpSyn | pkt::kTcpAck);
}

}  // namespace
}  // namespace xmap::topo
