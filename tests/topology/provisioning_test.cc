// Provisioning-plane tests: NDP RS/RA and DHCPv6-PD codecs, the ISP-side
// Provisioner, the CPE client state machine, and full equivalence between
// a direct-configured world and a protocol-provisioned one.
#include <gtest/gtest.h>

#include "analysis/pipeline.h"
#include "topology/dhcpv6.h"
#include "topology/ndp.h"
#include "topology/paper_profiles.h"
#include "topology/provisioning.h"

namespace xmap::topo {
namespace {

using net::Ipv6Address;
using net::Ipv6Prefix;

// ---------------------------- NDP codec -------------------------------------

TEST(Ndp, RouterSolicitBuildAndDetect) {
  const auto src = *Ipv6Address::parse("fe80::abcd");
  auto rs = build_router_solicit(src);
  pkt::Ipv6View ip{rs};
  ASSERT_TRUE(ip.valid());
  EXPECT_EQ(ip.src(), src);
  EXPECT_EQ(ip.dst(), all_routers_address());
  EXPECT_EQ(ip.hop_limit(), 255);
  EXPECT_TRUE(is_router_solicit(ip.payload()));
  EXPECT_FALSE(parse_router_advert(ip.payload()).has_value());
  pkt::Icmpv6View icmp{ip.payload()};
  EXPECT_TRUE(icmp.checksum_ok(ip.src(), ip.dst()));
}

TEST(Ndp, RouterAdvertRoundTrip) {
  RouterAdvertisement ra;
  ra.cur_hop_limit = 64;
  ra.managed = false;
  ra.other_config = true;
  ra.router_lifetime = 1234;
  PrefixInformation pi;
  pi.prefix = *Ipv6Prefix::parse("2001:db9:1:2::/64");
  pi.valid_lifetime = 1000;
  pi.preferred_lifetime = 500;
  ra.prefixes.push_back(pi);
  PrefixInformation pi2;
  pi2.prefix = *Ipv6Prefix::parse("2001:db9:ffff::/64");
  pi2.autonomous = false;
  ra.prefixes.push_back(pi2);

  const auto src = *Ipv6Address::parse("fe80::1");
  const auto dst = *Ipv6Address::parse("fe80::2");
  auto packet = build_router_advert(src, dst, ra);
  pkt::Ipv6View ip{packet};
  ASSERT_TRUE(ip.valid());
  auto parsed = parse_router_advert(ip.payload());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->router_lifetime, 1234);
  EXPECT_TRUE(parsed->other_config);
  EXPECT_FALSE(parsed->managed);
  ASSERT_EQ(parsed->prefixes.size(), 2u);
  EXPECT_EQ(parsed->prefixes[0].prefix.to_string(), "2001:db9:1:2::/64");
  EXPECT_EQ(parsed->prefixes[0].valid_lifetime, 1000u);
  EXPECT_TRUE(parsed->prefixes[0].autonomous);
  EXPECT_FALSE(parsed->prefixes[1].autonomous);
}

TEST(Ndp, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_router_advert(std::vector<std::uint8_t>(4)).has_value());
  // RA header with a truncated option.
  std::vector<std::uint8_t> bad(16, 0);
  bad[0] = kIcmpv6RouterAdvert;
  bad.push_back(3);
  bad.push_back(4);  // claims 32 bytes, but nothing follows
  EXPECT_FALSE(parse_router_advert(bad).has_value());
  // Zero-length option.
  std::vector<std::uint8_t> zero(16, 0);
  zero[0] = kIcmpv6RouterAdvert;
  zero.push_back(3);
  zero.push_back(0);
  EXPECT_FALSE(parse_router_advert(zero).has_value());
}

// ---------------------------- DHCPv6 codec ----------------------------------

TEST(Dhcpv6, SolicitRoundTrip) {
  Dhcpv6Message msg;
  msg.type = Dhcpv6MsgType::kSolicit;
  msg.transaction_id = 0xabcdef;
  msg.client_duid = 0x1122334455667788ULL;
  auto decoded = Dhcpv6Message::decode(msg.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, Dhcpv6MsgType::kSolicit);
  EXPECT_EQ(decoded->transaction_id, 0xabcdefu);
  EXPECT_EQ(decoded->client_duid, 0x1122334455667788ULL);
  EXPECT_FALSE(decoded->delegated_prefix.has_value());
}

TEST(Dhcpv6, ReplyWithDelegationRoundTrip) {
  Dhcpv6Message msg;
  msg.type = Dhcpv6MsgType::kReply;
  msg.transaction_id = 7;
  msg.client_duid = 42;
  msg.server_duid = 99;
  msg.delegated_prefix = *Ipv6Prefix::parse("2001:db9:4321:8760::/60");
  msg.valid_lifetime = 5000;
  msg.preferred_lifetime = 2500;
  auto decoded = Dhcpv6Message::decode(msg.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, Dhcpv6MsgType::kReply);
  EXPECT_EQ(decoded->server_duid, 99u);
  ASSERT_TRUE(decoded->delegated_prefix.has_value());
  EXPECT_EQ(decoded->delegated_prefix->to_string(),
            "2001:db9:4321:8760::/60");
  EXPECT_EQ(decoded->valid_lifetime, 5000u);
}

TEST(Dhcpv6, DecodeRejectsBadInput) {
  EXPECT_FALSE(Dhcpv6Message::decode(std::vector<std::uint8_t>(2)).has_value());
  std::vector<std::uint8_t> bad_type{9, 0, 0, 1};
  EXPECT_FALSE(Dhcpv6Message::decode(bad_type).has_value());
  // Truncated option.
  Dhcpv6Message msg;
  msg.delegated_prefix = *Ipv6Prefix::parse("2001:db9::/60");
  auto wire = msg.encode();
  wire.resize(wire.size() - 5);
  EXPECT_FALSE(Dhcpv6Message::decode(wire).has_value());
}

// ------------------------- end-to-end provisioning --------------------------

struct ProvisionWorld {
  sim::Network net{808};
  Router* isp;
  CpeRouter* cpe;
  Provisioner provisioner;

  ProvisionWorld(bool with_delegation) {
    Router::Config rcfg;
    rcfg.address = *Ipv6Address::parse("2001:db9::1");
    isp = net.make_node<Router>(rcfg);

    CpeRouter::Config blank;
    blank.wan_prefix = Ipv6Prefix{Ipv6Address{}, 128};
    blank.lan_prefix = Ipv6Prefix{Ipv6Address{}, 128};
    blank.subnet_prefix = Ipv6Prefix{Ipv6Address{}, 128};
    cpe = net.make_node<CpeRouter>(blank);

    const auto att = net.connect(isp->id(), cpe->id());
    Provisioner::Offer offer;
    offer.wan_prefix = *Ipv6Prefix::parse("2001:db9:1234:5678::/64");
    if (with_delegation) {
      offer.delegated = *Ipv6Prefix::parse("2001:db9:4321:8760::/60");
    }
    provisioner.set_offer(att.iface_a, offer);
    isp->set_provisioner(&provisioner);
    isp->table().add_forward(offer.wan_prefix, att.iface_a);
    if (offer.delegated) isp->table().add_forward(*offer.delegated, att.iface_a);
  }
};

TEST(Provisioning, FullSlaacPlusPdExchange) {
  ProvisionWorld world{true};
  world.cpe->begin_provisioning(CpeRouter::ProvisionParams{0xabcd, 5});
  world.net.run();
  ASSERT_TRUE(world.cpe->provisioned());
  EXPECT_EQ(world.cpe->config().wan_prefix.to_string(),
            "2001:db9:1234:5678::/64");
  EXPECT_EQ(world.cpe->config().wan_address.to_string(),
            "2001:db9:1234:5678::abcd");
  EXPECT_EQ(world.cpe->config().lan_prefix.to_string(),
            "2001:db9:4321:8760::/60");
  EXPECT_EQ(world.cpe->config().subnet_prefix.to_string(),
            "2001:db9:4321:8765::/64");
}

TEST(Provisioning, SlaacOnlySubscriber) {
  ProvisionWorld world{false};
  world.cpe->begin_provisioning(CpeRouter::ProvisionParams{0x99, 0});
  world.net.run();
  ASSERT_TRUE(world.cpe->provisioned());
  EXPECT_EQ(world.cpe->config().wan_address.to_string(),
            "2001:db9:1234:5678::99");
  // Nothing delegated: the LAN anchors match nothing.
  EXPECT_EQ(world.cpe->config().lan_prefix.length(), 128);
}

TEST(Provisioning, ProvisionedCpeAnswersDiscoveryProbes) {
  ProvisionWorld world{true};
  world.cpe->begin_provisioning(CpeRouter::ProvisionParams{0xabcd, 5});
  world.net.run();

  // Probe a nonexistent address in the acquired subnet through the ISP.
  class Probe : public sim::Node {
   public:
    void receive(pkt::Bytes packet, int) override {
      received.push_back(packet);
    }
    void emit(int iface, pkt::Bytes p) { send(iface, std::move(p)); }
    std::vector<pkt::Bytes> received;
  };
  auto* probe = world.net.make_node<Probe>();
  const auto up = world.net.connect(probe->id(), world.isp->id());
  world.isp->table().add_forward(*Ipv6Prefix::parse("2001:500::/48"),
                                 up.iface_b);
  probe->emit(up.iface_a,
              pkt::build_echo_request(*Ipv6Address::parse("2001:500::1"),
                                      *Ipv6Address::parse(
                                          "2001:db9:4321:8765::dead"),
                                      64, 1, 1));
  world.net.run();
  ASSERT_EQ(probe->received.size(), 1u);
  EXPECT_EQ(pkt::Ipv6View{probe->received[0]}.src(),
            *Ipv6Address::parse("2001:db9:1234:5678::abcd"));
}

TEST(Provisioning, ProvisionerIgnoresUnknownInterfaces) {
  Provisioner provisioner;
  provisioner.set_offer(0, Provisioner::Offer{
                               *Ipv6Prefix::parse("2001:db9::/64"), {}});
  bool emitted = false;
  auto rs = build_router_solicit(*Ipv6Address::parse("fe80::5"));
  EXPECT_FALSE(provisioner.maybe_handle(
      rs, /*iface=*/7, [&](int, pkt::Bytes) { emitted = true; }));
  EXPECT_FALSE(emitted);
  EXPECT_TRUE(provisioner.maybe_handle(
      rs, /*iface=*/0, [&](int, pkt::Bytes) { emitted = true; }));
  EXPECT_TRUE(emitted);
}

// --------------- world-level equivalence: direct vs provisioned -------------

TEST(Provisioning, ProvisionedWorldMatchesDirectWorldDiscovery) {
  auto run_discovery = [](bool provision) {
    sim::Network net{4242};
    BuildConfig cfg;
    cfg.window_bits = 7;
    cfg.seed = 4242;
    cfg.provision_via_protocols = provision;
    auto internet = build_internet(net, paper::isp_specs(),
                                   paper::vendor_catalog(), cfg);
    const int indices[] = {5, 10, 12};  // AT&T, CN Telecom, CN Mobile
    auto result = ana::run_discovery_scan(net, internet, indices, {});
    std::vector<std::string> addrs;
    for (const auto& hop : result.last_hops) {
      addrs.push_back(hop.address.to_string());
    }
    std::sort(addrs.begin(), addrs.end());
    return addrs;
  };

  const auto direct = run_discovery(false);
  const auto provisioned = run_discovery(true);
  ASSERT_GT(direct.size(), 40u);
  EXPECT_EQ(direct, provisioned)
      << "protocol-acquired configuration must be indistinguishable from "
         "direct configuration";
}

TEST(Provisioning, ProvisionedWorldCpesReportDone) {
  sim::Network net{11};
  BuildConfig cfg;
  cfg.window_bits = 6;
  cfg.seed = 11;
  cfg.provision_via_protocols = true;
  auto internet = build_internet(net, paper::isp_specs(),
                                 paper::vendor_catalog(), cfg);
  EXPECT_FALSE(internet.provisioners.empty());
  int cpes = 0, done = 0;
  for (const auto& isp : internet.isps) {
    for (const auto& dev : isp.devices) {
      auto* cpe = dynamic_cast<CpeRouter*>(net.node(dev.node));
      if (cpe == nullptr) continue;
      ++cpes;
      if (cpe->provisioned()) {
        ++done;
        EXPECT_EQ(cpe->config().wan_address, dev.address);
      }
    }
  }
  EXPECT_GT(cpes, 30);
  EXPECT_EQ(done, cpes);
}

}  // namespace
}  // namespace xmap::topo
