#include "topology/prefix_map.h"

#include <gtest/gtest.h>

#include <map>

#include "netbase/random.h"
#include "topology/routing_table.h"

namespace xmap::topo {
namespace {

using net::Ipv6Address;
using net::Ipv6Prefix;

Ipv6Prefix pfx(const char* text) { return *Ipv6Prefix::parse(text); }
Ipv6Address addr(const char* text) { return *Ipv6Address::parse(text); }

TEST(PrefixMap, EmptyLookupIsNull) {
  PrefixMap<int> map;
  EXPECT_EQ(map.lookup(addr("2001:db8::1")), nullptr);
  EXPECT_TRUE(map.empty());
}

TEST(PrefixMap, ExactAndLongestMatch) {
  PrefixMap<int> map;
  map.insert(pfx("2001:db8::/32"), 1);
  map.insert(pfx("2001:db8:1::/48"), 2);
  map.insert(pfx("2001:db8:1:2::/64"), 3);
  EXPECT_EQ(*map.lookup(addr("2001:db8:ffff::1")), 1);
  EXPECT_EQ(*map.lookup(addr("2001:db8:1:ffff::1")), 2);
  EXPECT_EQ(*map.lookup(addr("2001:db8:1:2::1")), 3);
  EXPECT_EQ(map.lookup(addr("2001:db9::1")), nullptr);
  EXPECT_EQ(map.size(), 3u);
}

TEST(PrefixMap, DefaultRouteMatchesEverything) {
  PrefixMap<int> map;
  map.insert(Ipv6Prefix{}, 99);
  EXPECT_EQ(*map.lookup(addr("::1")), 99);
  EXPECT_EQ(*map.lookup(addr("ffff:ffff::1")), 99);
}

TEST(PrefixMap, InsertReplacesValue) {
  PrefixMap<int> map;
  map.insert(pfx("2001:db8::/32"), 1);
  map.insert(pfx("2001:db8::/32"), 2);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(*map.lookup(addr("2001:db8::1")), 2);
}

TEST(PrefixMap, ExactLookup) {
  PrefixMap<int> map;
  map.insert(pfx("2001:db8::/32"), 1);
  EXPECT_NE(map.exact(pfx("2001:db8::/32")), nullptr);
  EXPECT_EQ(map.exact(pfx("2001:db8::/33")), nullptr);
  EXPECT_EQ(map.exact(pfx("2001:db8::/31")), nullptr);
}

TEST(PrefixMap, Erase) {
  PrefixMap<int> map;
  map.insert(pfx("2001:db8::/32"), 1);
  map.insert(pfx("2001:db8:1::/48"), 2);
  EXPECT_TRUE(map.erase(pfx("2001:db8:1::/48")));
  EXPECT_FALSE(map.erase(pfx("2001:db8:1::/48")));
  EXPECT_EQ(map.size(), 1u);
  // Covering /32 still matches.
  EXPECT_EQ(*map.lookup(addr("2001:db8:1::1")), 1);
}

TEST(PrefixMap, Host128Routes) {
  PrefixMap<int> map;
  map.insert(pfx("2001:db8::1/128"), 7);
  EXPECT_EQ(*map.lookup(addr("2001:db8::1")), 7);
  EXPECT_EQ(map.lookup(addr("2001:db8::2")), nullptr);
}

TEST(PrefixMap, ForEachVisitsAllWithCorrectPrefixes) {
  PrefixMap<int> map;
  map.insert(pfx("2001:db8::/32"), 1);
  map.insert(pfx("2001:db8:1::/48"), 2);
  map.insert(pfx("::/0"), 0);
  std::map<std::string, int> seen;
  map.for_each([&seen](const Ipv6Prefix& p, int v) {
    seen[p.to_string()] = v;
  });
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen["::/0"], 0);
  EXPECT_EQ(seen["2001:db8::/32"], 1);
  EXPECT_EQ(seen["2001:db8:1::/48"], 2);
}

// Differential test: trie lookup agrees with a naive longest-match scan.
TEST(PrefixMap, MatchesNaiveImplementationOnRandomData) {
  net::Rng rng{321};
  PrefixMap<int> map;
  std::vector<std::pair<Ipv6Prefix, int>> entries;
  for (int i = 0; i < 300; ++i) {
    const int len = static_cast<int>(rng.uniform(65));
    const Ipv6Address a =
        Ipv6Address::from_value(net::Uint128{rng.next(), rng.next()});
    const Ipv6Prefix p{a, len};
    // Skip duplicate prefixes: insert() replaces, naive scan would need the
    // same dedup logic.
    bool dup = false;
    for (const auto& [q, v] : entries) dup = dup || q == p;
    if (dup) continue;
    map.insert(p, i);
    entries.emplace_back(p, i);
  }
  for (int i = 0; i < 2000; ++i) {
    const Ipv6Address probe =
        Ipv6Address::from_value(net::Uint128{rng.next(), rng.next()});
    const int* got = map.lookup(probe);
    // Naive: best (longest) matching prefix wins.
    const int* want = nullptr;
    int best_len = -1;
    for (const auto& [p, v] : entries) {
      if (p.contains(probe) && p.length() > best_len) {
        best_len = p.length();
        want = &v;
      }
    }
    if (want == nullptr) {
      EXPECT_EQ(got, nullptr);
    } else {
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(*got, *want);
    }
  }
}

TEST(RoutingTable, AddLookupHelpers) {
  RoutingTable table;
  table.add_forward(pfx("2001:db8::/32"), 3);
  table.add_unreachable(pfx("2001:db8:dead::/48"));
  table.add_default(0);
  EXPECT_EQ(table.size(), 3u);

  const Route* r = table.lookup(addr("2001:db8::1"));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->action, RouteAction::kForward);
  EXPECT_EQ(r->iface, 3);

  r = table.lookup(addr("2001:db8:dead::1"));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->action, RouteAction::kUnreachable);

  r = table.lookup(addr("9999::1"));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->action, RouteAction::kForward);
  EXPECT_EQ(r->iface, 0);
}

TEST(RoutingTable, RemoveAndEnumerate) {
  RoutingTable table;
  table.add_forward(pfx("2001:db8::/32"), 1);
  table.add_forward(pfx("2001:db8:1::/48"), 2);
  EXPECT_TRUE(table.remove(pfx("2001:db8:1::/48")));
  EXPECT_FALSE(table.remove(pfx("2001:db8:1::/48")));
  const auto routes = table.routes();
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_EQ(routes[0].prefix.to_string(), "2001:db8::/32");
}

}  // namespace
}  // namespace xmap::topo
