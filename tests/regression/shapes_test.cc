// Regression tests for the paper's headline shapes — fast, small-window
// versions of the bench harnesses, asserting the *orderings and contrasts*
// the reproduction is accountable for (EXPERIMENTS.md documents the full
// runs). If calibration drift ever breaks a paper shape, this suite fails.
#include <gtest/gtest.h>

#include "analysis/pipeline.h"
#include "loopattack/attack_lab.h"
#include "topology/paper_profiles.h"

namespace xmap {
namespace {

using net::Ipv6Address;

struct ShapeWorld {
  sim::Network net{2026};
  topo::BuiltInternet internet;

  ShapeWorld() : internet([&] {
      topo::BuildConfig cfg;
      cfg.window_bits = 10;
      cfg.seed = 2026;
      return topo::build_internet(net, topo::paper::isp_specs(),
                                  topo::paper::vendor_catalog(), cfg);
    }()) {}

  double same_fraction(int isp) {
    const int idx[] = {isp};
    auto result = ana::run_discovery_scan(net, internet, idx, {});
    std::uint64_t same = 0;
    for (const auto& hop : result.last_hops) {
      if (hop.same_prefix64()) ++same;
    }
    return result.last_hops.empty()
               ? 0
               : static_cast<double>(same) /
                     static_cast<double>(result.last_hops.size());
  }

  double eui_fraction(int isp) {
    const int idx[] = {isp};
    auto result = ana::run_discovery_scan(net, internet, idx, {});
    auto hist = ana::iid_histogram(result.last_hops);
    return hist.total == 0 ? 0
                           : static_cast<double>(
                                 hist.of(net::IidStyle::kEui64)) /
                                 static_cast<double>(hist.total);
  }

  double loop_rate(int isp) {
    const auto& devices = internet.isps[static_cast<std::size_t>(isp)].devices;
    if (devices.empty()) return 0;
    std::uint64_t vulnerable = 0;
    for (const auto& dev : devices) {
      if (dev.loop_wan || dev.loop_lan) ++vulnerable;
    }
    return static_cast<double>(vulnerable) /
           static_cast<double>(devices.size());
  }
};

// ISP indices (paper_profiles order).
constexpr int kJio = 0, kBharti = 2, kComcast = 4, kAttBroadband = 5,
              kAttMobile = 8, kTelecom = 10, kUnicom = 11, kCnMobile = 12;

TEST(PaperShapes, Table2SameDiffContrast) {
  ShapeWorld world;
  // /64-delegation blocks are same-dominated; CPE blocks diff-dominated.
  EXPECT_GT(world.same_fraction(kJio), 0.9);
  EXPECT_GT(world.same_fraction(kBharti), 0.9);
  EXPECT_LT(world.same_fraction(kAttBroadband), 0.1);
  EXPECT_LT(world.same_fraction(kTelecom), 0.1);
}

TEST(PaperShapes, Table2EuiOrdering) {
  ShapeWorld world;
  const double comcast = world.eui_fraction(kComcast);
  const double unicom = world.eui_fraction(kUnicom);
  const double jio = world.eui_fraction(kJio);
  // Paper: Comcast ~95% > Unicom ~53% > Jio ~1.4%.
  EXPECT_GT(comcast, unicom);
  EXPECT_GT(unicom, jio);
  EXPECT_GT(comcast, 0.7);
  EXPECT_LT(jio, 0.15);
}

TEST(PaperShapes, Table11LoopConcentration) {
  ShapeWorld world;
  // CN broadband is the loop hotspot; US mobile is clean; India is thin.
  EXPECT_GT(world.loop_rate(kUnicom), world.loop_rate(kJio));
  EXPECT_GT(world.loop_rate(kCnMobile), 0.2);
  EXPECT_DOUBLE_EQ(world.loop_rate(kAttMobile), 0.0);
  EXPECT_LT(world.loop_rate(kJio), 0.05);
}

TEST(PaperShapes, Table7ServiceExposureOrdering) {
  ShapeWorld world;
  auto exposure = [&world](int isp) {
    const int idx[] = {isp};
    auto discovery = ana::run_discovery_scan(world.net, world.internet, idx, {});
    std::vector<Ipv6Address> targets;
    for (const auto& hop : discovery.last_hops) targets.push_back(hop.address);
    auto grabs = ana::grab_services(world.net, world.internet, targets, {});
    std::unordered_set<Ipv6Address> any;
    for (const auto& grab : grabs) {
      if (grab.alive) any.insert(grab.target);
    }
    return targets.empty() ? 0.0
                           : static_cast<double>(any.size()) /
                                 static_cast<double>(targets.size());
  };
  // Paper Table VII: CN Mobile broadband (57.5%) >> CN Unicom (24.6%)
  // >> Jio (0.9%).
  const double cn_mobile = exposure(kCnMobile);
  const double cn_unicom = exposure(kUnicom);
  const double jio = exposure(kJio);
  EXPECT_GT(cn_mobile, cn_unicom);
  EXPECT_GT(cn_unicom, jio);
  EXPECT_GT(cn_mobile, 0.35);
  EXPECT_LT(jio, 0.1);
}

TEST(PaperShapes, Section6AmplificationHeadlines) {
  atk::AttackLab lab{atk::AttackLabConfig{}};
  const auto plain = lab.attack(255);
  EXPECT_GT(plain.amplification(), 200.0);  // the >200x claim
  const auto spoofed = lab.attack(255, 1, false, true);
  EXPECT_GT(spoofed.amplification(), plain.amplification() * 1.5);  // ~2x
  lab.patch_cpe();
  EXPECT_LE(lab.attack(255).access_link_packets, 2u);  // mitigation kills it
}

TEST(PaperShapes, Table12AllTestedRoutersVulnerable) {
  int vulnerable = 0;
  // Sample the fleet (the full matrix runs in attack_lab_test).
  const auto& models = atk::case_study_models();
  for (std::size_t i = 0; i < models.size(); i += 7) {
    const auto row = atk::test_router_model(models[i]);
    if (row.wan_loop_observed || row.lan_loop_observed) ++vulnerable;
  }
  EXPECT_EQ(vulnerable, static_cast<int>((models.size() + 6) / 7));
}

TEST(PaperShapes, Table1DelegationLengthsRecoverable) {
  ShapeWorld world;
  // One block per delegated length (full sweep in table01 bench).
  const struct {
    int isp;
    int expect;
  } cases[] = {{kJio, 64}, {kAttBroadband, 60}, {kComcast, 56}};
  for (const auto& c : cases) {
    auto result = ana::infer_subnet_length(world.net, world.internet, c.isp, {});
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.inferred_len, c.expect);
  }
}

TEST(PaperShapes, DiscoveryCostIsOneProbePerDelegationPerParity) {
  ShapeWorld world;
  const int idx[] = {kAttBroadband};
  auto result = ana::run_discovery_scan(world.net, world.internet, idx, {});
  EXPECT_EQ(result.stats.sent, 2u * 1024u);  // 2 parities x 2^10 slots
  const std::size_t truth =
      world.internet.isps[kAttBroadband].devices.size();
  EXPECT_GE(result.last_hops.size(), truth * 9 / 10);  // finds the periphery
}

}  // namespace
}  // namespace xmap
