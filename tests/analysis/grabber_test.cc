#include "analysis/service_grabber.h"

#include <gtest/gtest.h>

#include "analysis/report.h"
#include "topology/builder.h"
#include "topology/paper_profiles.h"

namespace xmap::ana {
namespace {

using net::Ipv6Address;

// ---------------------- parse_banner unit tests ----------------------------

GrabResult make_result(svc::ServiceKind kind, std::string banner) {
  GrabResult r;
  r.kind = kind;
  r.banner = std::move(banner);
  return r;
}

TEST(ParseBanner, Dns) {
  auto r = make_result(svc::ServiceKind::kDns, "dnsmasq-2.45");
  parse_banner(r);
  EXPECT_TRUE(r.alive);
  ASSERT_TRUE(r.software.has_value());
  EXPECT_EQ(r.software->software, "dnsmasq");
  EXPECT_EQ(r.software->version, "2.45");
}

TEST(ParseBanner, Ssh) {
  auto r = make_result(svc::ServiceKind::kSsh, "SSH-2.0-dropbear_0.46\r\n");
  parse_banner(r);
  EXPECT_TRUE(r.alive);
  ASSERT_TRUE(r.software.has_value());
  EXPECT_EQ(r.software->software, "dropbear");
  EXPECT_EQ(r.software->version, "0.46");
}

TEST(ParseBanner, SshRejectsGarbage) {
  auto r = make_result(svc::ServiceKind::kSsh, "HTTP/1.1 200 OK");
  parse_banner(r);
  EXPECT_FALSE(r.alive);
}

TEST(ParseBanner, Ftp) {
  auto r = make_result(
      svc::ServiceKind::kFtp,
      "220 Fiberhome FTP server (GNU Inetutils-1.4.1) ready.\r\n");
  parse_banner(r);
  EXPECT_TRUE(r.alive);
  EXPECT_EQ(r.vendor_hint, "Fiberhome");
  ASSERT_TRUE(r.software.has_value());
  EXPECT_EQ(r.software->software, "GNU Inetutils");
  EXPECT_EQ(r.software->version, "1.4.1");
}

TEST(ParseBanner, TelnetStripsIacAndFindsVendor) {
  std::string banner{"\xff\xfd\x18\xff\xfd\x20"};
  banner += "China Unicom login: ";
  auto r = make_result(svc::ServiceKind::kTelnet, banner);
  parse_banner(r);
  EXPECT_TRUE(r.alive);
  EXPECT_EQ(r.vendor_hint, "China Unicom");
}

TEST(ParseBanner, HttpManagementPage) {
  auto r = make_result(
      svc::ServiceKind::kHttp,
      "HTTP/1.1 200 OK\r\nServer: micro_httpd-1.0\r\n\r\n"
      "<html><head><title>TP-Link Router Login</title></head></html>");
  parse_banner(r);
  EXPECT_TRUE(r.alive);
  EXPECT_TRUE(r.management_page);
  EXPECT_EQ(r.vendor_hint, "TP-Link");
  ASSERT_TRUE(r.software.has_value());
  EXPECT_EQ(r.software->software, "micro_httpd");
}

TEST(ParseBanner, Tls) {
  auto r = make_result(svc::ServiceKind::kTls,
                       "\x16\x03\x03..CERT CN=AVM GmbH ISSUER=embedded-tls-1.2"
                       " CIPHER=TLS_RSA_WITH_AES_128_CBC_SHA");
  parse_banner(r);
  EXPECT_TRUE(r.alive);
  EXPECT_EQ(r.vendor_hint, "AVM GmbH");
  ASSERT_TRUE(r.software.has_value());
  EXPECT_EQ(r.software->software, "embedded-tls");
  EXPECT_EQ(r.software->version, "1.2");
}

TEST(ParseBanner, Ntp) {
  auto r = make_result(svc::ServiceKind::kNtp, "4");
  parse_banner(r);
  EXPECT_TRUE(r.alive);
  ASSERT_TRUE(r.software.has_value());
  EXPECT_EQ(r.software->software, "ntpd");
}

TEST(ParseBanner, EmptyBannerIsDead) {
  for (svc::ServiceKind kind : svc::kAllServices) {
    auto r = make_result(kind, "");
    parse_banner(r);
    EXPECT_FALSE(r.alive) << svc::service_name(kind);
  }
}

// ---------------------- end-to-end grabs over the sim ----------------------

class GrabberWorld : public ::testing::Test {
 protected:
  GrabberWorld() {
    // One hand-built CPE with a known service set.
    topo::CpeRouter::Config cfg;
    cfg.wan_prefix = *net::Ipv6Prefix::parse("3fff:aaa:0:1::/64");
    cfg.wan_address = *Ipv6Address::parse("3fff:aaa:0:1::99");
    cfg.lan_prefix = *net::Ipv6Prefix::parse("3fff:aaa:1::/60");
    cfg.subnet_prefix = *net::Ipv6Prefix::parse("3fff:aaa:1::/64");
    cpe_ = net_.make_node<topo::CpeRouter>(cfg);
    cpe_->services().bind(
        svc::make_service(svc::ServiceKind::kDns, {"dnsmasq", "2.45"}, "ZTE"));
    cpe_->services().bind(svc::make_service(svc::ServiceKind::kSsh,
                                            {"dropbear", "0.46"}, "ZTE"));
    cpe_->services().bind(svc::make_service(svc::ServiceKind::kHttp,
                                            {"micro_httpd", "1.0"}, "ZTE"));
    cpe_->services().bind(svc::make_service(svc::ServiceKind::kFtp,
                                            {"GNU Inetutils", "1.4.1"}, "ZTE"));

    ServiceGrabber::Config gcfg;
    gcfg.source = *Ipv6Address::parse("2001:500::2");
    grabber_ = net_.make_node<ServiceGrabber>(gcfg);
    auto att = net_.connect(grabber_->id(), cpe_->id());
    grabber_->set_iface(att.iface_a);
  }

  sim::Network net_{55};
  topo::CpeRouter* cpe_;
  ServiceGrabber* grabber_;
};

TEST_F(GrabberWorld, GrabsAllServicesOfOneDevice) {
  const Ipv6Address target = *Ipv6Address::parse("3fff:aaa:0:1::99");
  for (svc::ServiceKind kind : svc::kAllServices) {
    grabber_->enqueue(target, kind);
  }
  grabber_->start();
  net_.run();

  const auto& results = grabber_->results();
  ASSERT_EQ(results.size(), 8u);

  int alive = 0;
  for (const auto& r : results) {
    switch (r.kind) {
      case svc::ServiceKind::kDns:
        EXPECT_TRUE(r.alive);
        ASSERT_TRUE(r.software.has_value());
        EXPECT_EQ(r.software->full(), "dnsmasq-2.45");
        break;
      case svc::ServiceKind::kSsh:
        EXPECT_TRUE(r.alive);
        ASSERT_TRUE(r.software.has_value());
        EXPECT_EQ(r.software->full(), "dropbear-0.46");
        break;
      case svc::ServiceKind::kHttp:
        EXPECT_TRUE(r.alive);
        EXPECT_TRUE(r.management_page);
        EXPECT_EQ(r.vendor_hint, "ZTE");
        break;
      case svc::ServiceKind::kFtp:
        EXPECT_TRUE(r.alive);
        EXPECT_EQ(r.vendor_hint, "ZTE");
        break;
      default:
        EXPECT_FALSE(r.alive) << svc::service_name(r.kind);
        EXPECT_FALSE(r.port_open) << svc::service_name(r.kind);
    }
    if (r.alive) ++alive;
  }
  EXPECT_EQ(alive, 4);
}

TEST_F(GrabberWorld, ClosedUdpPortNotAlive) {
  const Ipv6Address target = *Ipv6Address::parse("3fff:aaa:0:1::99");
  grabber_->enqueue(target, svc::ServiceKind::kNtp);
  grabber_->start();
  net_.run();
  ASSERT_EQ(grabber_->results().size(), 1u);
  EXPECT_FALSE(grabber_->results()[0].port_open);
  EXPECT_FALSE(grabber_->results()[0].alive);
}

TEST_F(GrabberWorld, UnresponsiveTargetTimesOut) {
  const Ipv6Address target = *Ipv6Address::parse("3fff:aaa:1::77");  // no host
  grabber_->enqueue(target, svc::ServiceKind::kHttp);
  grabber_->start();
  net_.run();
  ASSERT_EQ(grabber_->results().size(), 1u);
  EXPECT_FALSE(grabber_->results()[0].port_open);
}

TEST(ReportUtils, CounterTopAndPercent) {
  Counter counter;
  counter.add("a", 5);
  counter.add("b", 10);
  counter.add("c", 1);
  counter.add("a", 5);
  EXPECT_EQ(counter.get("a"), 10u);
  EXPECT_EQ(counter.total(), 21u);
  EXPECT_EQ(counter.distinct(), 3u);
  const auto top = counter.top(2);
  ASSERT_EQ(top.size(), 2u);
  // a and b tie at 10; key order breaks the tie.
  EXPECT_EQ(top[0].first, "a");
  EXPECT_EQ(top[1].first, "b");
  EXPECT_DOUBLE_EQ(percent(1, 4), 25.0);
  EXPECT_DOUBLE_EQ(percent(1, 0), 0.0);
}

}  // namespace
}  // namespace xmap::ana
