#include "analysis/alias_detection.h"

#include <gtest/gtest.h>

#include "analysis/pipeline.h"
#include "topology/paper_profiles.h"

namespace xmap::ana {
namespace {

using net::Ipv6Address;

// A world where two ISP blocks carry aliased prefixes among the devices.
struct AliasWorld {
  sim::Network net{606};
  topo::BuiltInternet internet;

  AliasWorld() : internet([&] {
      auto specs = topo::paper::isp_specs();
      specs[5].aliased_slots = 3;   // AT&T broadband
      specs[10].aliased_slots = 2;  // CN Telecom
      topo::BuildConfig cfg;
      cfg.window_bits = 8;
      cfg.seed = 606;
      return topo::build_internet(net, specs, topo::paper::vendor_catalog(),
                                  cfg);
    }()) {}
};

TEST(AliasDetection, BuilderPlantsAliasedPrefixes) {
  AliasWorld world;
  EXPECT_EQ(world.internet.isps[5].aliased_prefixes.size(), 3u);
  EXPECT_EQ(world.internet.isps[10].aliased_prefixes.size(), 2u);
  EXPECT_TRUE(world.internet.isps[0].aliased_prefixes.empty());
}

TEST(AliasDetection, AliasedSlotsInflateDiscoveryWithEchoReplies) {
  AliasWorld world;
  const int idx[] = {5};
  auto discovery = run_discovery_scan(world.net, world.internet, idx, {});
  // Each probe into an aliased slot yields an echo reply from the probed
  // address; with two parities, each aliased slot contributes up to two
  // fake "last hops".
  std::uint64_t echo_hops = 0;
  for (const auto& hop : discovery.last_hops) {
    if (hop.first_kind == scan::ResponseKind::kEchoReply) ++echo_hops;
  }
  EXPECT_GE(echo_hops, 3u);
}

TEST(AliasDetection, DetectsExactlyThePlantedPrefixes) {
  AliasWorld world;
  const int idx[] = {5, 10};
  auto discovery = run_discovery_scan(world.net, world.internet, idx, {});
  std::vector<Ipv6Address> candidates;
  for (const auto& hop : discovery.last_hops) {
    candidates.push_back(hop.address);
  }

  auto aliased =
      detect_aliased_prefixes(world.net, world.internet, candidates, {});

  // Ground truth: the planted slots' /64s that were actually probed. For a
  // /56 or /60 delegation the probe lands in one /64 of the slot; that /64
  // must be flagged.
  std::unordered_set<std::uint64_t> truth;
  for (int i : idx) {
    for (const auto& prefix :
         world.internet.isps[static_cast<std::size_t>(i)].aliased_prefixes) {
      // any /64 inside the slot that appeared among candidates
      for (const auto& addr : candidates) {
        if (prefix.contains(addr)) truth.insert(addr.prefix64());
      }
    }
  }
  EXPECT_EQ(aliased.aliased_prefix64, truth);
  EXPECT_GT(aliased.aliased_prefix64.size(), 0u);
}

TEST(AliasDetection, PeripheryPrefixesAreNotFlagged) {
  AliasWorld world;
  const int idx[] = {5, 10};
  auto discovery = run_discovery_scan(world.net, world.internet, idx, {});
  std::vector<Ipv6Address> candidates;
  for (const auto& hop : discovery.last_hops) candidates.push_back(hop.address);
  auto aliased =
      detect_aliased_prefixes(world.net, world.internet, candidates, {});

  // No real device WAN /64 may be flagged: a periphery answers unreachable,
  // not echo, for its spare addresses.
  for (int i : idx) {
    for (const auto& dev :
         world.internet.isps[static_cast<std::size_t>(i)].devices) {
      EXPECT_EQ(aliased.aliased_prefix64.count(dev.address.prefix64()), 0u)
          << dev.address.to_string();
    }
  }
}

TEST(AliasDetection, StripAliasedRemovesOnlyFakeHops) {
  AliasWorld world;
  const int idx[] = {5};
  auto discovery = run_discovery_scan(world.net, world.internet, idx, {});
  std::vector<Ipv6Address> candidates;
  for (const auto& hop : discovery.last_hops) candidates.push_back(hop.address);
  auto aliased =
      detect_aliased_prefixes(world.net, world.internet, candidates, {});
  auto cleaned = strip_aliased(discovery.last_hops, aliased);

  ASSERT_LT(cleaned.size(), discovery.last_hops.size());
  // Every remaining hop is a genuine device (or infra responder).
  std::unordered_set<Ipv6Address> devices;
  for (const auto& dev : world.internet.isps[5].devices) {
    devices.insert(dev.address);
  }
  std::uint64_t device_hops = 0;
  for (const auto& hop : cleaned) {
    EXPECT_NE(hop.first_kind, scan::ResponseKind::kEchoReply);
    device_hops += devices.count(hop.address);
  }
  EXPECT_EQ(device_hops, devices.size());
}

TEST(AliasDetection, EmptyCandidatesIsCheap) {
  AliasWorld world;
  auto aliased = detect_aliased_prefixes(world.net, world.internet, {}, {});
  EXPECT_EQ(aliased.probes_sent, 0u);
  EXPECT_TRUE(aliased.aliased_prefix64.empty());
}

}  // namespace
}  // namespace xmap::ana
