// Pipeline integration tests: discovery, IID analysis, vendor recovery,
// subnet inference and the loop scan, all over the built synthetic Internet.
#include "analysis/pipeline.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "topology/paper_profiles.h"

namespace xmap::ana {
namespace {

using net::Ipv6Address;

struct World {
  sim::Network net{77};
  topo::BuiltInternet internet;

  explicit World(int window_bits = 8, std::uint64_t seed = 42)
      : internet([&] {
          topo::BuildConfig cfg;
          cfg.window_bits = window_bits;
          cfg.seed = seed;
          return topo::build_internet(net, topo::paper::isp_specs(),
                                      topo::paper::vendor_catalog(), cfg);
        }()) {}
};

TEST(Pipeline, DiscoveryFindsDevicesOfSelectedIsps) {
  World world;
  const int indices[] = {0, 12};
  auto result = run_discovery_scan(world.net, world.internet, indices, {});
  EXPECT_EQ(result.stats.sent, 1024u);  // 2 windows x 256 slots x 2 parities
  const std::size_t expected = world.internet.isps[0].devices.size() +
                               world.internet.isps[12].devices.size();
  EXPECT_GT(result.last_hops.size(), expected * 8 / 10);
  EXPECT_LE(result.last_hops.size(), expected + 8);
}

TEST(Pipeline, IidHistogramMatchesGroundTruth) {
  World world;
  const int indices[] = {11};  // China Unicom broadband: EUI-64 heavy
  auto result = run_discovery_scan(world.net, world.internet, indices, {});
  auto hist = iid_histogram(result.last_hops);
  ASSERT_GT(hist.total, 0u);
  const double eui = static_cast<double>(hist.of(net::IidStyle::kEui64)) /
                     static_cast<double>(hist.total);
  // Spec says 53.3% EUI-64 for Unicom; allow sampling noise.
  EXPECT_NEAR(eui, 0.533, 0.2);
}

TEST(Pipeline, VendorRecoveryThroughOui) {
  World world;
  const int indices[] = {11, 12};
  auto result = run_discovery_scan(world.net, world.internet, indices, {});
  // Build ground truth: address -> vendor name.
  std::unordered_map<Ipv6Address, std::string> truth;
  for (int i : indices) {
    for (const auto& dev : world.internet.isps[i].devices) {
      truth[dev.address] = world.internet.vendor(dev.vendor).name;
    }
  }
  int identified = 0, correct = 0;
  for (const auto& hop : result.last_hops) {
    auto vendor = vendor_from_address(hop.address, world.internet.oui);
    if (!vendor) continue;
    ++identified;
    auto it = truth.find(hop.address);
    ASSERT_NE(it, truth.end());
    if (it->second == *vendor) ++correct;
  }
  EXPECT_GT(identified, 15);
  EXPECT_EQ(correct, identified);  // OUI recovery is exact for EUI-64
}

TEST(Pipeline, VendorFromAddressRejectsNonEui) {
  topo::OuiDb oui;
  oui.add(0xb0d001, "X");
  EXPECT_FALSE(
      vendor_from_address(*Ipv6Address::parse("3fff::1234:5678:9abc:def0"), oui)
          .has_value());
  // EUI-64 but unknown OUI.
  const auto mac = net::MacAddress::from_u64(0xffffff000001);
  const auto addr = net::Ipv6Prefix::parse("3fff::/64")->address_with_suffix(
      net::Uint128{mac.to_eui64_iid()});
  EXPECT_FALSE(vendor_from_address(addr, oui).has_value());
}

TEST(Pipeline, GrabServicesOverDiscoveredHops) {
  World world;
  const int indices[] = {12};  // China Mobile broadband: service-rich
  auto discovery = run_discovery_scan(world.net, world.internet, indices, {});
  std::vector<Ipv6Address> targets;
  for (const auto& hop : discovery.last_hops) targets.push_back(hop.address);
  ASSERT_FALSE(targets.empty());

  auto grabs = grab_services(world.net, world.internet, targets, {});
  EXPECT_EQ(grabs.size(), targets.size() * 8);

  // Compare per-address liveness against ground truth deployments.
  std::unordered_map<Ipv6Address, std::unordered_set<int>> truth;
  for (const auto& dev : world.internet.isps[12].devices) {
    for (const auto& [kind, sw] : dev.services) {
      truth[dev.address].insert(static_cast<int>(kind));
    }
  }
  std::uint64_t alive = 0, mismatches = 0;
  for (const auto& grab : grabs) {
    auto it = truth.find(grab.target);
    const bool expected =
        it != truth.end() &&
        it->second.count(static_cast<int>(grab.kind)) != 0;
    if (grab.alive) ++alive;
    if (grab.alive != expected) ++mismatches;
  }
  EXPECT_GT(alive, 0u);
  EXPECT_EQ(mismatches, 0u);
}

TEST(Pipeline, SubnetInferenceRecoversDelegationLength) {
  // Check one ISP of each delegated length: Jio (/64), AT&T (/60),
  // Comcast (/56).
  struct Case {
    int isp;
    int expect;
  };
  for (const Case c : {Case{0, 64}, Case{5, 60}, Case{4, 56}}) {
    World world;
    auto result = infer_subnet_length(world.net, world.internet, c.isp, {});
    ASSERT_TRUE(result.ok) << "isp " << c.isp;
    EXPECT_EQ(result.inferred_len, c.expect) << "isp " << c.isp;
    EXPECT_GT(result.witnesses, 0);
  }
}

TEST(Pipeline, LoopScanFindsVulnerableDevicesWithNoFalsePositives) {
  World world;
  const int indices[] = {12};  // China Mobile broadband: high loop rate
  auto result = run_loop_scan(world.net, world.internet, indices, {});

  // Ground truth: vulnerable devices and the ISP router (which also loops
  // from the scanner's viewpoint — it is one end of every loop).
  std::unordered_set<Ipv6Address> vulnerable;
  for (const auto& dev : world.internet.isps[12].devices) {
    if (dev.loop_wan || dev.loop_lan) vulnerable.insert(dev.address);
  }
  const Ipv6Address isp_router =
      world.internet.isps[12].router->address();

  ASSERT_FALSE(result.confirmed.empty());
  std::size_t device_hits = 0;
  for (const auto& loop : result.confirmed) {
    if (loop.address == isp_router) continue;
    EXPECT_TRUE(vulnerable.count(loop.address))
        << loop.address.to_string() << " is not loop-vulnerable";
    ++device_hits;
  }
  // The loop scan probes each delegation at one random address; probes that
  // land in the device's advertised subnet get an unreachable instead, so
  // coverage is the not-used fraction (15/16 for /60 slots) of the
  // vulnerable set, minus parity effects. Expect a solid majority.
  EXPECT_GT(device_hits, vulnerable.size() / 2);
  EXPECT_LE(device_hits, vulnerable.size());
}

TEST(Pipeline, LoopScanCleanIspHasNoConfirmations) {
  World world;
  const int indices[] = {8};  // AT&T mobile: loop_scale 0
  auto result = run_loop_scan(world.net, world.internet, indices, {});
  EXPECT_TRUE(result.confirmed.empty());
}

}  // namespace
}  // namespace xmap::ana
