#include "analysis/software_db.h"

#include <gtest/gtest.h>

namespace xmap::ana {
namespace {

TEST(SoftwareDb, DnsmasqFamilies) {
  auto fam = classify_software({"dnsmasq", "2.45"});
  EXPECT_EQ(fam.family, "dnsmasq-2.4x");
  EXPECT_EQ(fam.cve_count, 16);
  EXPECT_EQ(fam.release_year, 2012);
  EXPECT_EQ(classify_software({"dnsmasq", "2.52"}).family, "dnsmasq-2.5x");
  EXPECT_EQ(classify_software({"dnsmasq", "2.62"}).family, "dnsmasq-2.6x");
  EXPECT_EQ(classify_software({"dnsmasq", "2.76"}).family, "dnsmasq-2.7x");
}

TEST(SoftwareDb, SshFamilies) {
  EXPECT_EQ(classify_software({"dropbear", "0.46"}).family, "dropbear-0.4x");
  EXPECT_EQ(classify_software({"dropbear", "0.48"}).cve_count, 10);
  EXPECT_EQ(classify_software({"dropbear", "2017.75"}).family,
            "dropbear-2017.x");
  const auto old_ssh = classify_software({"openssh", "3.5"});
  EXPECT_EQ(old_ssh.family, "openssh-3.5");
  EXPECT_EQ(old_ssh.cve_count, 74);
  EXPECT_EQ(old_ssh.release_year, 2002);
}

TEST(SoftwareDb, HttpAndFtpFamilies) {
  EXPECT_EQ(classify_software({"Jetty", "6.1.26"}).family, "Jetty-6.x");
  EXPECT_EQ(classify_software({"MiniWeb HTTP Server", "0.8.19"}).family,
            "MiniWeb");
  EXPECT_EQ(classify_software({"GNU Inetutils", "1.4.1"}).family,
            "GNU-Inetutils-1.4.1");
  EXPECT_EQ(classify_software({"vsftpd", "2.3.4"}).cve_count, 1);
  EXPECT_EQ(classify_software({"FreeBSD", "6.00ls"}).family,
            "FreeBSD-6.00ls");
}

TEST(SoftwareDb, UnknownSoftwareSynthesisesFamily) {
  const auto fam = classify_software({"mystery-httpd", "3.2.1"});
  EXPECT_EQ(fam.family, "mystery-httpd-3.x");
  EXPECT_EQ(fam.cve_count, 0);
  const auto noversion = classify_software({"thing", ""});
  EXPECT_EQ(noversion.family, "thing");
}

TEST(SoftwareDb, ServiceCveTotalsMatchPaper) {
  EXPECT_EQ(known_cves_for_service(svc::ServiceKind::kDns), 16);
  EXPECT_EQ(known_cves_for_service(svc::ServiceKind::kSsh), 84);
  EXPECT_EQ(known_cves_for_service(svc::ServiceKind::kHttp), 24);
  EXPECT_EQ(known_cves_for_service(svc::ServiceKind::kFtp), 3);
  EXPECT_EQ(known_cves_for_service(svc::ServiceKind::kNtp), 0);
  EXPECT_EQ(known_cves_for_service(svc::ServiceKind::kTelnet), 0);
}

TEST(SoftwareDb, LaggingVersionsAreOld) {
  // The paper's headline: exposed fleets run software released 8-10 years
  // before the 2020 measurement.
  EXPECT_LE(classify_software({"dnsmasq", "2.45"}).release_year, 2012);
  EXPECT_LE(classify_software({"dropbear", "0.46"}).release_year, 2006);
  EXPECT_LE(classify_software({"openssh", "3.5"}).release_year, 2002);
}

}  // namespace
}  // namespace xmap::ana
