// Unit tests for the seeded fault-injection layer: determinism (fate is a
// pure function of seed/link/packet/attempt/time, never of call order),
// statistical sanity of the dials, and the sim::Network integration.
#include "sim/faults.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "netbase/random.h"
#include "sim/network.h"

namespace xmap::sim {
namespace {

pkt::Bytes numbered_packet(std::uint64_t n) {
  pkt::Bytes out(48);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(net::mix64(n) >> ((i % 8) * 8));
  }
  return out;
}

TEST(FaultInjector, EmptyPlanIsInert) {
  FaultPlan plan;
  EXPECT_FALSE(plan.any());
  FaultInjector inj{plan, 7};
  const auto v = inj.on_transmit(0, LinkClass::kAccess, 0, numbered_packet(1));
  EXPECT_FALSE(v.drop);
  EXPECT_FALSE(v.duplicate);
  EXPECT_FALSE(v.corrupt);
  EXPECT_EQ(v.extra_delay, 0u);
  EXPECT_EQ(inj.stats().dropped_total(), 0u);
}

TEST(FaultInjector, IidLossMatchesConfiguredProbability) {
  FaultPlan plan;
  plan.access.loss = 0.3;
  FaultInjector inj{plan, 42};
  int dropped = 0;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (inj.on_transmit(5, LinkClass::kAccess, 0, numbered_packet(i)).drop) {
      ++dropped;
    }
  }
  EXPECT_NEAR(static_cast<double>(dropped) / kN, 0.3, 0.02);
  EXPECT_EQ(inj.stats().iid_dropped, static_cast<std::uint64_t>(dropped));
  // Class scoping: core links are untouched by an access-only plan.
  EXPECT_FALSE(
      inj.on_transmit(5, LinkClass::kCore, 0, numbered_packet(1)).drop);
}

TEST(FaultInjector, VerdictsAreIndependentOfCallOrder) {
  FaultPlan plan;
  plan.access.loss = 0.4;
  plan.access.duplicate = 0.2;
  plan.access.corrupt = 0.2;
  plan.access.jitter_ms = 2.0;

  auto fate = [](FaultInjector& inj, std::uint64_t n) {
    const auto v =
        inj.on_transmit(3, LinkClass::kAccess, 1000, numbered_packet(n));
    return std::tuple{v.drop, v.duplicate, v.corrupt, v.extra_delay};
  };
  FaultInjector fwd{plan, 9};
  FaultInjector rev{plan, 9};
  std::vector<std::tuple<bool, bool, bool, SimTime>> a, b;
  for (int i = 0; i < 500; ++i) a.push_back(fate(fwd, i));
  for (int i = 499; i >= 0; --i) b.push_back(fate(rev, i));
  std::reverse(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(FaultInjector, RetransmittedCopiesDrawIndependentFates) {
  // Retry copies are byte-identical; the per-(link, packet) attempt counter
  // must give each copy its own coin, or loss would be all-or-nothing.
  FaultPlan plan;
  plan.access.loss = 0.5;
  FaultInjector inj{plan, 11};
  int fate_differs = 0;
  for (int i = 0; i < 400; ++i) {
    const auto p = numbered_packet(i);
    const bool first = inj.on_transmit(2, LinkClass::kAccess, 0, p).drop;
    const bool second = inj.on_transmit(2, LinkClass::kAccess, 0, p).drop;
    if (first != second) ++fate_differs;
  }
  // P(differs) = 0.5 per pair; all-same would mean the counter is broken.
  EXPECT_GT(fate_differs, 100);
}

TEST(FaultInjector, BurstWindowsAreTimeKeyedAndDeterministic) {
  FaultPlan plan;
  plan.access.burst.rate_per_sec = 3.0;
  plan.access.burst.mean_ms = 50.0;
  const FaultInjector a{plan, 77};
  const FaultInjector b{plan, 77};
  int in = 0, total = 0;
  for (SimTime t = 0; t < 10 * kSecond; t += kMillisecond) {
    const bool burst = a.in_burst(4, LinkClass::kAccess, t);
    // Pure function of (seed, link, time): a second injector agrees.
    EXPECT_EQ(burst, b.in_burst(4, LinkClass::kAccess, t));
    ++total;
    if (burst) ++in;
  }
  // ~3 bursts/sec x ~50ms each => ~15% of time inside a burst; accept a
  // wide band (exponential durations, small sample).
  EXPECT_GT(in, total / 50);
  EXPECT_LT(in, total / 2);
  // Different links see different windows.
  int agree = 0;
  for (SimTime t = 0; t < kSecond; t += kMillisecond) {
    if (a.in_burst(4, LinkClass::kAccess, t) ==
        a.in_burst(9, LinkClass::kAccess, t)) {
      ++agree;
    }
  }
  EXPECT_LT(agree, 1000);
}

TEST(FaultInjector, FlapWindowsFollowPeriodPhaseAndFraction) {
  FaultPlan plan;
  plan.access.flap.period_ms = 100.0;
  plan.access.flap.down_ms = 25.0;
  FaultInjector inj{plan, 5};
  // Duty cycle: 25% down, periodic.
  int down = 0;
  const int kSteps = 4000;
  for (int i = 0; i < kSteps; ++i) {
    const SimTime t = static_cast<SimTime>(i) * (kMillisecond / 4);
    if (inj.link_down(1, LinkClass::kAccess, t)) ++down;
    // Periodicity: the window repeats exactly.
    EXPECT_EQ(inj.link_down(1, LinkClass::kAccess, t),
              inj.link_down(1, LinkClass::kAccess, t + 100 * kMillisecond));
  }
  EXPECT_NEAR(static_cast<double>(down) / kSteps, 0.25, 0.02);

  // fraction == 0 disables every link.
  plan.access.flap.fraction = 0.0;
  FaultInjector none{plan, 5};
  for (int link = 0; link < 20; ++link) {
    EXPECT_FALSE(none.link_down(link, LinkClass::kAccess, 0));
  }
}

TEST(FaultInjector, SilentSelectionMatchesFractionAndWindow) {
  FaultPlan plan;
  plan.silent.fraction = 0.25;
  plan.silent.start_ms = 10.0;
  plan.silent.duration_ms = 20.0;
  FaultInjector inj{plan, 123};
  std::vector<NodeId> candidates(4000);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    candidates[i] = static_cast<NodeId>(i);
  }
  inj.choose_silent(candidates);

  int silent = 0;
  for (const NodeId n : candidates) {
    if (inj.node_silent(n, 15 * kMillisecond)) ++silent;
    // Outside [start, start+duration) nobody is silent.
    EXPECT_FALSE(inj.node_silent(n, 5 * kMillisecond));
    EXPECT_FALSE(inj.node_silent(n, 35 * kMillisecond));
  }
  EXPECT_NEAR(static_cast<double>(silent) / 4000.0, 0.25, 0.03);

  // duration 0 = silent forever.
  FaultPlan forever;
  forever.silent.fraction = 1.0;
  FaultInjector all{forever, 123};
  all.choose_silent({1, 2, 3});
  EXPECT_TRUE(all.node_silent(2, 0));
  EXPECT_TRUE(all.node_silent(2, 3600 * kSecond));
  EXPECT_FALSE(all.node_silent(99, 0));  // not a candidate
}

TEST(FaultInjector, DuplicateAndCorruptVerdictsAreCounted) {
  FaultPlan plan;
  plan.access.duplicate = 0.5;
  plan.access.corrupt = 0.5;
  FaultInjector inj{plan, 21};
  int dup = 0, corrupt = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto v =
        inj.on_transmit(0, LinkClass::kAccess, 0, numbered_packet(i));
    if (v.duplicate) ++dup;
    if (v.corrupt) {
      ++corrupt;
      EXPECT_NE(v.corrupt_key, 0u);
    }
  }
  EXPECT_NEAR(dup / 2000.0, 0.5, 0.05);
  EXPECT_NEAR(corrupt / 2000.0, 0.5, 0.05);
  EXPECT_EQ(inj.stats().duplicated, static_cast<std::uint64_t>(dup));
  EXPECT_EQ(inj.stats().corrupted, static_cast<std::uint64_t>(corrupt));
}

// ---------------------------------------------------------------------------
// sim::Network integration: the injector actually gates deliveries.
// ---------------------------------------------------------------------------

class SinkNode : public Node {
 public:
  void receive(pkt::Bytes packet, int) override {
    packets.push_back(packet);
    times.push_back(network()->now());
  }
  void emit(int iface, pkt::Bytes packet) { send(iface, std::move(packet)); }
  std::vector<pkt::Bytes> packets;
  std::vector<SimTime> times;
};

struct TwoNodeNet {
  Network net{99};
  SinkNode* a;
  SinkNode* b;
  Network::Attachment wire;

  explicit TwoNodeNet(LinkClass cls) {
    a = net.make_node<SinkNode>();
    b = net.make_node<SinkNode>();
    LinkParams params;
    params.fault_class = cls;
    wire = net.connect(a->id(), b->id(), params);
  }
};

TEST(FaultNetworkIntegration, FullLossSilencesTheLink) {
  TwoNodeNet t{LinkClass::kAccess};
  FaultPlan plan;
  plan.access.loss = 1.0;
  t.net.install_faults(plan);
  for (int i = 0; i < 20; ++i) t.a->emit(t.wire.iface_a, numbered_packet(i));
  t.net.run();
  EXPECT_TRUE(t.b->packets.empty());
  EXPECT_EQ(t.net.faults()->stats().iid_dropped, 20u);
  EXPECT_EQ(t.net.link_stats(t.wire.link).dropped, 20u);
}

TEST(FaultNetworkIntegration, DuplicationDeliversTwice) {
  TwoNodeNet t{LinkClass::kAccess};
  FaultPlan plan;
  plan.access.duplicate = 1.0;
  t.net.install_faults(plan);
  for (int i = 0; i < 10; ++i) t.a->emit(t.wire.iface_a, numbered_packet(i));
  t.net.run();
  EXPECT_EQ(t.b->packets.size(), 20u);
}

TEST(FaultNetworkIntegration, CorruptionFlipsBitsInDeliveredCopy) {
  TwoNodeNet t{LinkClass::kAccess};
  FaultPlan plan;
  plan.access.corrupt = 1.0;
  t.net.install_faults(plan);
  const auto original = numbered_packet(1);
  t.a->emit(t.wire.iface_a, original);
  t.net.run();
  ASSERT_EQ(t.b->packets.size(), 1u);
  EXPECT_NE(t.b->packets[0], original);
  EXPECT_EQ(t.b->packets[0].size(), original.size());
}

TEST(FaultNetworkIntegration, SilentNodeIgnoresDeliveries) {
  TwoNodeNet t{LinkClass::kOther};
  FaultPlan plan;
  plan.silent.fraction = 1.0;
  FaultInjector* inj = t.net.install_faults(plan);
  inj->choose_silent({t.b->id()});
  for (int i = 0; i < 5; ++i) t.a->emit(t.wire.iface_a, numbered_packet(i));
  t.net.run();
  EXPECT_TRUE(t.b->packets.empty());
  EXPECT_EQ(inj->stats().silent_dropped, 5u);
}

TEST(FaultNetworkIntegration, JitterDelaysButDeliversEverything) {
  TwoNodeNet t{LinkClass::kAccess};
  FaultPlan plan;
  plan.access.jitter_ms = 5.0;
  t.net.install_faults(plan);
  const int kN = 50;
  for (int i = 0; i < kN; ++i) t.a->emit(t.wire.iface_a, numbered_packet(i));
  t.net.run();
  ASSERT_EQ(t.b->packets.size(), static_cast<std::size_t>(kN));
  // All sent at t=0 over a 100us link: without jitter every arrival is at
  // exactly 100us; with jitter some arrive later (and none earlier).
  bool any_delayed = false;
  for (const SimTime when : t.b->times) {
    EXPECT_GE(when, 100 * kMicrosecond);
    if (when > 100 * kMicrosecond) any_delayed = true;
  }
  EXPECT_TRUE(any_delayed);
}

}  // namespace
}  // namespace xmap::sim
