// The zero-allocation contract for the scan hot path: once the thread-local
// BytePool is warm, a full simulated scan — probe patching, event
// scheduling, per-hop forwarding (including lazy LC-trie compilation),
// fault verdicts and response validation — performs no global heap
// allocation. Verified by replacing ::operator new with a counting shim and
// asserting a zero delta across the measured Network::run().
//
// Method: run one complete scan first (same world/config) so every size
// class the workload ever needs has recycled blocks on the free lists, then
// build a fresh world and scanner *outside* the measured window and count
// only across the event-loop run.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "sim/faults.h"
#include "topology/builder.h"
#include "topology/paper_profiles.h"
#include "xmap/scanner.h"

namespace {
std::atomic<std::uint64_t> g_new_calls{0};

void* counted_alloc(std::size_t size) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* counted_aligned_alloc(std::size_t size, std::align_val_t align) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  const auto a = static_cast<std::size_t>(align);
  if (posix_memalign(&p, a < sizeof(void*) ? sizeof(void*) : a,
                     size != 0 ? size : 1) != 0) {
    throw std::bad_alloc{};
  }
  return p;
}
}  // namespace

// Replaceable global allocation functions (all throwing/nothrow/aligned
// variants, so nothing in the binary slips past the counter).
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace xmap::scan {
namespace {

using net::Ipv6Address;
using net::Ipv6Prefix;

const Ipv6Address kScannerAddr = *Ipv6Address::parse("2001:500::1");
const Ipv6Prefix kVantagePrefix = *Ipv6Prefix::parse("2001:500::/48");

constexpr int kWindowBits = 10;  // 1024 slots: several 256-draw batches

sim::FaultPlan fault_plan() {
  sim::FaultPlan plan;
  plan.access.loss = 0.05;
  plan.access.duplicate = 0.2;
  plan.access.corrupt = 0.1;
  plan.access.jitter_ms = 2.0;
  plan.access.burst.rate_per_sec = 5.0;
  plan.silent.fraction = 0.3;
  plan.silent.start_ms = 100;
  plan.silent.duration_ms = 500;
  return plan;
}

// Builds a world + scanner, runs the scan, and returns the ::operator new
// call delta across Network::run() only. Construction (world, routing
// tables, scanner, fault injector) happens before the measured window;
// everything the event loop touches afterwards must come from the pool.
std::uint64_t measured_scan_allocs(bool with_faults,
                                   std::uint64_t* sent_out = nullptr) {
  sim::Network net{101};
  topo::BuildConfig bcfg;
  bcfg.window_bits = kWindowBits;
  bcfg.seed = 42;
  topo::BuiltInternet internet = topo::build_internet(
      net, topo::paper::isp_specs(), topo::paper::vendor_catalog(), bcfg);

  if (with_faults) {
    sim::FaultInjector* inj = net.install_faults(fault_plan());
    std::vector<sim::NodeId> cpes;
    for (const auto& dev : internet.isps[0].devices) {
      cpes.push_back(dev.node);
    }
    inj->choose_silent(cpes);
  }

  IcmpEchoProbe probe{64};
  ScanConfig cfg;
  const auto& isp = internet.isps[0];
  cfg.targets.push_back(
      TargetSpec{isp.scan_base, isp.window_lo, isp.window_hi});
  cfg.source = kScannerAddr;
  cfg.seed = 7;
  cfg.probes_per_sec = 1e6;
  auto* scanner = net.make_node<SimChannelScanner>(cfg, probe);
  const int iface = topo::attach_vantage(net, internet, scanner,
                                         kVantagePrefix);
  scanner->set_iface(iface);
  scanner->start();

  const std::uint64_t before =
      g_new_calls.load(std::memory_order_relaxed);
  net.run();
  const std::uint64_t delta =
      g_new_calls.load(std::memory_order_relaxed) - before;
  if (sent_out != nullptr) *sent_out = scanner->stats().sent;
  return delta;
}

TEST(AllocFreeScan, SteadyStateScanNeverTouchesTheHeap) {
  // Warm-up pass: identical world and scan, so every pool size class the
  // measured run needs ends up on a free list when this world dies.
  (void)measured_scan_allocs(/*with_faults=*/false);

  std::uint64_t sent = 0;
  const std::uint64_t allocs =
      measured_scan_allocs(/*with_faults=*/false, &sent);
  EXPECT_EQ(allocs, 0u) << "heap allocations on the warm scan path";
  EXPECT_EQ(sent, std::uint64_t{1} << kWindowBits);  // the scan really ran
}

TEST(AllocFreeScan, FaultInjectedScanNeverTouchesTheHeap) {
  (void)measured_scan_allocs(/*with_faults=*/true);

  std::uint64_t sent = 0;
  const std::uint64_t allocs =
      measured_scan_allocs(/*with_faults=*/true, &sent);
  EXPECT_EQ(allocs, 0u)
      << "heap allocations on the warm fault-injected scan path";
  EXPECT_EQ(sent, std::uint64_t{1} << kWindowBits);
}

}  // namespace
}  // namespace xmap::scan
