#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "netbase/random.h"
#include "packet/packet.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace xmap::sim {
namespace {

using net::Ipv6Address;

TEST(EventLoop, RunsInTimestampOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_after(30, [&] { order.push_back(3); });
  loop.schedule_after(10, [&] { order.push_back(1); });
  loop.schedule_after(20, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30u);
  EXPECT_EQ(loop.events_processed(), 3u);
}

TEST(EventLoop, FifoTieBreakForEqualTimes) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    loop.schedule_at(100, [&order, i] { order.push_back(i); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, NestedSchedulingAdvancesClock) {
  EventLoop loop;
  SimTime seen = 0;
  loop.schedule_after(10, [&] {
    loop.schedule_after(5, [&] { seen = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(seen, 15u);
}

TEST(EventLoop, PastEventsClampToNow) {
  // Scheduling into the past is a latent determinism bug in the caller:
  // debug builds trap on the assert, release builds clamp to now() and
  // expose the count (wired to sim_events_clamped_total by Network).
  auto schedule_past = [](EventLoop& loop) {
    loop.schedule_after(100, [&] { loop.schedule_at(10, [] {}); });
    loop.run();
  };
#ifdef NDEBUG
  EventLoop loop;
  EXPECT_EQ(loop.clamped(), 0u);
  schedule_past(loop);
  EXPECT_EQ(loop.now(), 100u);
  EXPECT_EQ(loop.clamped(), 1u);
#else
  EXPECT_DEATH(
      {
        EventLoop loop;
        schedule_past(loop);
      },
      "scheduled in the past");
#endif
}

// Records every dispatched id so pop order can be compared to a sorted
// reference. Ids arrive via typed-event payload `a`.
struct PopRecorder {
  std::vector<int> popped;
  static void handle(void* ctx, SimTime /*when*/, std::uint64_t a,
                     std::uint64_t /*b*/) {
    static_cast<PopRecorder*>(ctx)->popped.push_back(static_cast<int>(a));
  }
};

TEST(EventLoop, WheelPopOrderMatchesHeapReference) {
  // Property: whatever mix of in-wheel, tied, far-future (overflow heap)
  // and nested schedules arrives, pop order equals the (when, seq) sort a
  // reference heap would produce — seq being global schedule order, so
  // equal timestamps dispatch FIFO. Random streams cross the wheel span
  // (4096 slots x 1024 ns) to force overflow parking and migration, and
  // run_until() cuts land mid-slot to test deadline re-entry.
  net::Rng rng{0x8e11};
  for (int round = 0; round < 25; ++round) {
    EventLoop loop;
    PopRecorder rec;
    loop.register_handler(kEventDeliver, &rec, &PopRecorder::handle);
    std::vector<std::pair<SimTime, int>> ref;  // (when, id) in schedule order
    int next_id = 0;
    SimTime max_when = 0;
    auto schedule = [&](SimTime when) {
      ref.emplace_back(when, next_id);
      max_when = std::max(max_when, when);
      // Alternate closure and typed-event paths: both must obey the same
      // ordering contract.
      if (next_id % 2 == 0) {
        const int id = next_id;
        loop.schedule_at(when, [&rec, id] { rec.popped.push_back(id); });
      } else {
        loop.schedule_event(when, kEventDeliver,
                            static_cast<std::uint64_t>(next_id), 0);
      }
      ++next_id;
    };
    const std::uint64_t kinds = 3 + rng.uniform(3);
    for (int i = 0; i < 400; ++i) {
      const std::uint64_t pick = rng.uniform(kinds);
      if (pick == 0) {
        // Tie cluster: timestamps rounded to a coarse grid.
        schedule(64 * rng.uniform(64));
      } else if (pick == 1) {
        // Far future: multiple wheel revolutions out, lands in the
        // overflow heap and must migrate back in order.
        schedule(4096 * 1024 + rng.uniform(64u * 1024 * 1024));
      } else {
        schedule(rng.uniform(4096 * 1024));
      }
    }
    // Nested: a handful of events schedule follow-ups relative to their own
    // dispatch time, including zero-delay (same timestamp, later seq).
    for (int i = 0; i < 20; ++i) {
      const SimTime base = rng.uniform(4096 * 1024);
      const SimTime delay = (i % 4 == 0) ? 0 : rng.uniform(512 * 1024);
      ref.emplace_back(base, next_id);
      const int outer = next_id++;
      // The follow-up's seq is assigned at dispatch time, which is exactly
      // when the reference learns about it too (appended mid-drain below).
      loop.schedule_at(base, [&, outer, delay] {
        rec.popped.push_back(outer);
        ref.emplace_back(loop.now() + delay, next_id);
        max_when = std::max(max_when, loop.now() + delay);
        const int inner = next_id++;
        loop.schedule_at(loop.now() + delay,
                         [&rec, inner] { rec.popped.push_back(inner); });
      });
    }
    // Drain in run_until() chunks with deadlines landing anywhere,
    // including mid-slot and inside tie clusters, then finish with run().
    SimTime deadline = 0;
    for (int cut = 0; cut < 6; ++cut) {
      deadline += rng.uniform(max_when / 4 + 1);
      loop.run_until(deadline);
    }
    loop.run();
    // Reference order: stable sort on when; ref holds schedule order, so
    // stability reproduces the FIFO seq tie-break.
    std::stable_sort(ref.begin(), ref.end(),
                     [](const auto& x, const auto& y) {
                       return x.first < y.first;
                     });
    ASSERT_EQ(rec.popped.size(), ref.size()) << "round=" << round;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(rec.popped[i], ref[i].second)
          << "round=" << round << " pos=" << i;
    }
  }
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int ran = 0;
  loop.schedule_at(10, [&] { ++ran; });
  loop.schedule_at(20, [&] { ++ran; });
  loop.schedule_at(30, [&] { ++ran; });
  loop.run_until(20);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(loop.now(), 20u);
  loop.run();
  EXPECT_EQ(ran, 3);
}

TEST(EventLoop, MaxEventsBudget) {
  EventLoop loop;
  int ran = 0;
  for (int i = 0; i < 10; ++i) loop.schedule_at(i, [&] { ++ran; });
  loop.run(4);
  EXPECT_EQ(ran, 4);
}

// A node that records everything it receives.
class SinkNode : public Node {
 public:
  void receive(pkt::Bytes packet, int iface) override {
    received.push_back({packet, iface, network()->now()});
  }
  struct Rx {
    pkt::Bytes packet;
    int iface;
    SimTime at;
  };
  std::vector<Rx> received;
};

// A node that sends a fixed packet when poked.
class SourceNode : public Node {
 public:
  void receive(pkt::Bytes, int) override {}
  void emit(int iface, pkt::Bytes p) { send(iface, std::move(p)); }
};

pkt::Bytes test_packet(std::size_t payload = 0) {
  return pkt::build_echo_request(*Ipv6Address::parse("2001:db8::1"),
                                 *Ipv6Address::parse("2001:db8::2"), 64, 1, 1,
                                 std::vector<std::uint8_t>(payload));
}

TEST(Network, DeliversAcrossLink) {
  Network net{1};
  auto* src = net.make_node<SourceNode>();
  auto* dst = net.make_node<SinkNode>();
  LinkParams params;
  params.latency = 5 * kMillisecond;
  auto att = net.connect(src->id(), dst->id(), params);
  src->emit(att.iface_a, test_packet());
  net.run();
  ASSERT_EQ(dst->received.size(), 1u);
  EXPECT_EQ(dst->received[0].at, 5 * kMillisecond);
  EXPECT_EQ(dst->received[0].iface, att.iface_b);
}

TEST(Network, BidirectionalInterfaces) {
  Network net{1};
  auto* a = net.make_node<SourceNode>();
  auto* b = net.make_node<SinkNode>();
  auto att = net.connect(a->id(), b->id());
  // Also connect b->a to exercise reply direction via a second sink.
  a->emit(att.iface_a, test_packet());
  net.run();
  ASSERT_EQ(b->received.size(), 1u);
  EXPECT_EQ(net.link_stats(att.link).packets_ab, 1u);
  EXPECT_EQ(net.link_stats(att.link).packets_ba, 0u);
}

TEST(Network, MultipleLinksGetDistinctInterfaces) {
  Network net{1};
  auto* hub = net.make_node<SourceNode>();
  auto* s1 = net.make_node<SinkNode>();
  auto* s2 = net.make_node<SinkNode>();
  auto att1 = net.connect(hub->id(), s1->id());
  auto att2 = net.connect(hub->id(), s2->id());
  EXPECT_NE(att1.iface_a, att2.iface_a);
  hub->emit(att2.iface_a, test_packet());
  net.run();
  EXPECT_TRUE(s1->received.empty());
  ASSERT_EQ(s2->received.size(), 1u);
}

TEST(Network, SerializationDelayQueues) {
  Network net{1};
  auto* src = net.make_node<SourceNode>();
  auto* dst = net.make_node<SinkNode>();
  LinkParams params;
  params.latency = 0;
  params.rate_bps = 8000;  // 1000 bytes/sec
  auto att = net.connect(src->id(), dst->id(), params);
  const pkt::Bytes p = test_packet(52);  // 40 + 8 + 4 + 52 = 104 bytes
  const SimTime ser = static_cast<SimTime>(p.size()) * 8 * kSecond / 8000;
  src->emit(att.iface_a, p);
  src->emit(att.iface_a, p);  // queued behind the first
  net.run();
  ASSERT_EQ(dst->received.size(), 2u);
  EXPECT_EQ(dst->received[0].at, ser);
  EXPECT_EQ(dst->received[1].at, 2 * ser);
}

TEST(Network, LossDropsDeterministically) {
  Network net{12345};
  auto* src = net.make_node<SourceNode>();
  auto* dst = net.make_node<SinkNode>();
  LinkParams params;
  params.loss = 0.5;
  auto att = net.connect(src->id(), dst->id(), params);
  for (int i = 0; i < 1000; ++i) src->emit(att.iface_a, test_packet());
  net.run();
  const auto& stats = net.link_stats(att.link);
  EXPECT_EQ(stats.packets_ab + stats.dropped, 1000u);
  EXPECT_NEAR(static_cast<double>(stats.dropped), 500.0, 60.0);
  EXPECT_EQ(dst->received.size(), stats.packets_ab);
}

TEST(Network, LinkStatsCountBytesBothDirections) {
  Network net{1};
  auto* a = net.make_node<SourceNode>();
  auto* b = net.make_node<SourceNode>();
  auto att = net.connect(a->id(), b->id());
  const pkt::Bytes p = test_packet();
  a->emit(att.iface_a, p);
  b->emit(att.iface_b, p);
  net.run();
  const auto& stats = net.link_stats(att.link);
  EXPECT_EQ(stats.packets_ab, 1u);
  EXPECT_EQ(stats.packets_ba, 1u);
  EXPECT_EQ(stats.bytes_ab, p.size());
  EXPECT_EQ(stats.bytes_ba, p.size());
  EXPECT_EQ(stats.packets_total(), 2u);
}

TEST(Network, ResetLinkStats) {
  Network net{1};
  auto* a = net.make_node<SourceNode>();
  auto* b = net.make_node<SinkNode>();
  auto att = net.connect(a->id(), b->id());
  a->emit(att.iface_a, test_packet());
  net.run();
  net.reset_link_stats(att.link);
  EXPECT_EQ(net.link_stats(att.link).packets_total(), 0u);
}

TEST(Network, TracerSeesEveryDelivery) {
  Network net{1};
  auto* src = net.make_node<SourceNode>();
  auto* dst = net.make_node<SinkNode>();
  auto att = net.connect(src->id(), dst->id());
  std::vector<std::pair<NodeId, NodeId>> seen;
  net.set_tracer([&seen](SimTime, NodeId from, NodeId to, const pkt::Bytes&) {
    seen.emplace_back(from, to);
  });
  src->emit(att.iface_a, test_packet());
  src->emit(att.iface_a, test_packet());
  net.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].first, src->id());
  EXPECT_EQ(seen[0].second, dst->id());
  // Disable and confirm silence.
  net.set_tracer(nullptr);
  src->emit(att.iface_a, test_packet());
  net.run();
  EXPECT_EQ(seen.size(), 2u);
}

TEST(Network, SendOnUnconnectedInterfaceIsDropped) {
  Network net{1};
  auto* a = net.make_node<SourceNode>();
  a->emit(99, test_packet());  // no such interface
  net.run();
  EXPECT_EQ(net.packets_delivered(), 0u);
}

}  // namespace
}  // namespace xmap::sim
