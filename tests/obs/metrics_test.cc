// Unit tests for the labeled metrics registry: histogram le-semantics at
// the bucket boundaries, partition-invariant shard merging, the Prometheus
// text golden (including the wall-clock exclusion) and the JSON fragment.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace xmap::obs {
namespace {

TEST(Histogram, BucketBoundariesAreInclusive) {
  Histogram h{{10, 100, 1000}};
  // le-semantics: v lands in the first bucket with v <= bound.
  h.observe(0);     // -> le=10
  h.observe(10);    // -> le=10 (boundary is inclusive)
  h.observe(11);    // -> le=100
  h.observe(100);   // -> le=100
  h.observe(101);   // -> le=1000
  h.observe(1000);  // -> le=1000
  h.observe(1001);  // -> +Inf
  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 2u);
  EXPECT_EQ(h.counts()[2], 2u);
  EXPECT_EQ(h.counts()[3], 1u);  // +Inf
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 0u + 10 + 11 + 100 + 101 + 1000 + 1001);
}

TEST(Histogram, MergeSumsBucketwise) {
  Histogram a{{10, 100}};
  Histogram b{{10, 100}};
  a.observe(5);
  b.observe(5);
  b.observe(50);
  b.observe(500);
  a.merge(b);
  EXPECT_EQ(a.counts()[0], 2u);
  EXPECT_EQ(a.counts()[1], 1u);
  EXPECT_EQ(a.counts()[2], 1u);
  EXPECT_EQ(a.count(), 4u);
}

TEST(Histogram, MismatchedBoundsFoldIntoInf) {
  Histogram a{{10}};
  Histogram b{{20}};
  b.observe(1);
  b.observe(2);
  a.merge(b);
  // The foreign population lands in +Inf; nothing disappears.
  EXPECT_EQ(a.counts().back(), 2u);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.sum(), 3u);
}

TEST(MetricsShard, CellPointersAreStableAndCumulative) {
  MetricsShard shard;
  std::uint64_t* c = shard.counter("probes_sent", {}, "help");
  *c += 3;
  // Re-resolving the same series yields the same cell.
  EXPECT_EQ(shard.counter("probes_sent"), c);
  *shard.counter("probes_sent") += 2;
  const MetricsSnapshot snap = merge_shards({&shard});
  const auto* entry = snap.find("probes_sent");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->value, 5u);
  EXPECT_EQ(entry->help, "help");
}

TEST(MetricsShard, LabelOrderDoesNotSplitSeries) {
  MetricsShard shard;
  *shard.counter("v", {{"a", "1"}, {"b", "2"}}) += 1;
  *shard.counter("v", {{"b", "2"}, {"a", "1"}}) += 1;
  const MetricsSnapshot snap = merge_shards({&shard});
  ASSERT_EQ(snap.entries.size(), 1u);
  EXPECT_EQ(snap.entries[0].value, 2u);
}

// The determinism anchor: any partition of the same observations over N
// shards merges to the same snapshot as a single shard.
TEST(MergeShards, PartitionInvariant) {
  const auto feed = [](MetricsShard& shard, int step) {
    *shard.counter("sent", {}, "probes") += 1;
    *shard.counter("verdicts", {{"kind", step % 2 ? "drop" : "dup"}}) += 1;
    shard.histogram("rtt", {100, 200}, {}, "rtt")->observe(
        static_cast<std::uint64_t>(50 * step));
  };
  MetricsShard single;
  MetricsShard a, b, c;
  MetricsShard* split[] = {&a, &b, &c};
  for (int step = 0; step < 12; ++step) {
    feed(single, step);
    feed(*split[step % 3], step);
  }
  const std::string lhs = prometheus_text(merge_shards({&single}));
  // Shard order must not matter either.
  const std::string rhs = prometheus_text(merge_shards({&c, &a, &b}));
  EXPECT_EQ(lhs, rhs);
  EXPECT_FALSE(lhs.empty());
}

TEST(PrometheusText, GoldenOutput) {
  MetricsShard shard;
  *shard.counter("probes_sent", {}, "Probes handed to the wire") += 7;
  *shard.counter("fault_verdicts", {{"kind", "iid_drop"}}) += 2;
  *shard.gauge("depth", {}, "A gauge") = 3;
  shard.histogram("rtt_ns", {100, 200}, {}, "RTT")->observe(150);
  const std::string text = prometheus_text(merge_shards({&shard}));
  // Entries render in sorted (name, labels) order.
  EXPECT_EQ(text,
            "# HELP xmap_depth A gauge\n"
            "# TYPE xmap_depth gauge\n"
            "xmap_depth 3\n"
            "# TYPE xmap_fault_verdicts_total counter\n"
            "xmap_fault_verdicts_total{kind=\"iid_drop\"} 2\n"
            "# HELP xmap_probes_sent_total Probes handed to the wire\n"
            "# TYPE xmap_probes_sent_total counter\n"
            "xmap_probes_sent_total 7\n"
            "# HELP xmap_rtt_ns RTT\n"
            "# TYPE xmap_rtt_ns histogram\n"
            "xmap_rtt_ns_bucket{le=\"100\"} 0\n"
            "xmap_rtt_ns_bucket{le=\"200\"} 1\n"
            "xmap_rtt_ns_bucket{le=\"+Inf\"} 1\n"
            "xmap_rtt_ns_sum 150\n"
            "xmap_rtt_ns_count 1\n");
}

TEST(PrometheusText, WallClockSeriesAreExcludedByDefault) {
  MetricsShard shard;
  *shard.counter("sent") += 1;
  *shard.gauge("queue_depth_peak", {}, "wall-clock", /*wall_clock=*/true) = 9;
  const MetricsSnapshot snap = merge_shards({&shard});
  const std::string deterministic = prometheus_text(snap);
  EXPECT_EQ(deterministic.find("queue_depth_peak"), std::string::npos);
  const std::string full = prometheus_text(snap, /*include_wall_clock=*/true);
  EXPECT_NE(full.find("xmap_queue_depth_peak 9"), std::string::npos);
}

TEST(MetricsJson, GoldenFragment) {
  MetricsShard shard;
  *shard.counter("sent") += 4;
  *shard.counter("v", {{"kind", "dup"}}) += 1;
  shard.histogram("rtt", {10}, {})->observe(25);
  std::ostringstream out;
  append_metrics_json(out, merge_shards({&shard}));
  EXPECT_EQ(out.str(),
            "{\"rtt\":{\"buckets\":{\"10\":0,\"+Inf\":1},"
            "\"sum\":25,\"count\":1},"
            "\"sent\":4,"
            "\"v{kind=\\\"dup\\\"}\":1}");
}

}  // namespace
}  // namespace xmap::obs
