// Unit tests for deterministic tracing: level gating, the content
// ordering, partition-invariant merging, and the JSONL / Chrome writers.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace xmap::obs {
namespace {

TraceEvent make_event(std::uint64_t ts, const char* name,
                      std::uint64_t dur = 0) {
  TraceEvent e;
  e.ts = ts;
  e.name = name;
  e.cat = "scan";
  e.dur = dur;
  return e;
}

TEST(TraceLevelParsing, RoundTrips) {
  TraceLevel level = TraceLevel::kPacket;
  EXPECT_TRUE(trace_level_from_string("off", level));
  EXPECT_EQ(level, TraceLevel::kOff);
  EXPECT_TRUE(trace_level_from_string("scan", level));
  EXPECT_EQ(level, TraceLevel::kScan);
  EXPECT_TRUE(trace_level_from_string("packet", level));
  EXPECT_EQ(level, TraceLevel::kPacket);
  EXPECT_FALSE(trace_level_from_string("verbose", level));
}

TEST(TraceBuffer, LevelGating) {
  TraceBuffer off{TraceLevel::kOff};
  EXPECT_FALSE(off.at(TraceLevel::kScan));
  EXPECT_FALSE(off.at(TraceLevel::kOff));  // kOff never records anything

  TraceBuffer scan{TraceLevel::kScan};
  EXPECT_TRUE(scan.at(TraceLevel::kScan));
  EXPECT_FALSE(scan.at(TraceLevel::kPacket));

  TraceBuffer packet{TraceLevel::kPacket};
  EXPECT_TRUE(packet.at(TraceLevel::kScan));
  EXPECT_TRUE(packet.at(TraceLevel::kPacket));
}

TEST(TraceEventLess, OrdersByContent) {
  const TraceEvent a = make_event(10, "a");
  const TraceEvent b = make_event(20, "a");
  const TraceEvent c = make_event(10, "b");
  EXPECT_TRUE(trace_event_less(a, b));   // ts first
  EXPECT_TRUE(trace_event_less(a, c));   // then name
  EXPECT_FALSE(trace_event_less(b, a));
  // Identical content compares equal in both directions.
  EXPECT_FALSE(trace_event_less(a, a));

  // Arguments participate: same (ts, name, cat) but different int arg.
  TraceEvent d = make_event(10, "a");
  TraceEvent e = make_event(10, "a");
  d.i0 = {"copy", 0};
  e.i0 = {"copy", 1};
  EXPECT_TRUE(trace_event_less(d, e));
  EXPECT_FALSE(trace_event_less(e, d));
}

// The same event population, split across worker buffers in different
// ways, merges to one identical serialized stream.
TEST(MergeTraces, PartitionInvariant) {
  std::vector<TraceEvent> all;
  for (int i = 0; i < 24; ++i) {
    TraceEvent e = make_event(static_cast<std::uint64_t>(100 - i), "ev");
    e.i0 = {"n", static_cast<std::uint64_t>(i)};
    all.push_back(e);
  }
  // Partition A: round-robin over 3 buffers; partition B: one buffer.
  std::vector<std::vector<TraceEvent>> split(3);
  for (std::size_t i = 0; i < all.size(); ++i) {
    split[i % 3].push_back(all[i]);
  }
  std::ostringstream lhs, rhs;
  write_trace_jsonl(lhs, merge_traces(std::move(split)));
  write_trace_jsonl(rhs, merge_traces({all}));
  EXPECT_EQ(lhs.str(), rhs.str());
  EXPECT_FALSE(lhs.str().empty());
}

TEST(WriteTraceJsonl, Golden) {
  TraceEvent instant = make_event(1500, "probe_sent");
  instant.addr1_key = "target";
  instant.addr1 = *net::Ipv6Address::parse("2001:db8::1");
  instant.i0 = {"copy", 0};

  TraceEvent span = make_event(2000, "response_validated", 500);
  span.str_key = "kind";
  span.str_val = "echo-reply";

  std::ostringstream out;
  write_trace_jsonl(out, {instant, span});
  EXPECT_EQ(out.str(),
            "{\"ts\":1500,\"name\":\"probe_sent\",\"cat\":\"scan\","
            "\"ph\":\"i\",\"args\":{\"target\":\"2001:db8::1\",\"copy\":0}}\n"
            "{\"ts\":2000,\"name\":\"response_validated\",\"cat\":\"scan\","
            "\"ph\":\"X\",\"dur\":500,\"args\":{\"kind\":\"echo-reply\"}}\n");
}

TEST(WriteChromeTrace, Golden) {
  const TraceEvent instant = make_event(1500, "mark");
  const TraceEvent span = make_event(2000, "work", 1234);
  std::ostringstream out;
  write_chrome_trace(out, {instant, span});
  EXPECT_EQ(out.str(),
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"
            "{\"name\":\"mark\",\"cat\":\"scan\",\"ph\":\"i\",\"s\":\"g\","
            "\"ts\":1.500,\"pid\":1,\"tid\":1,\"args\":{}},\n"
            "{\"name\":\"work\",\"cat\":\"scan\",\"ph\":\"X\",\"ts\":2.000,"
            "\"dur\":1.234,\"pid\":1,\"tid\":1,\"args\":{}}\n"
            "]}\n");
}

}  // namespace
}  // namespace xmap::obs
