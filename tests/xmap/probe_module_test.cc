#include "xmap/probe_module.h"

#include <gtest/gtest.h>

namespace xmap::scan {
namespace {

using net::Ipv6Address;

const Ipv6Address kSrc = *Ipv6Address::parse("2001:500::1");
const Ipv6Address kTarget = *Ipv6Address::parse("3fff:100:0:5::1234");
const Ipv6Address kRouter = *Ipv6Address::parse("3fff:100:ffff::1");
constexpr std::uint64_t kSeed = 77;

TEST(IcmpEchoProbe, ProbeCarriesKeyedTags) {
  IcmpEchoProbe probe{64};
  auto packet = probe.make_probe(kSrc, kTarget, kSeed);
  pkt::Ipv6View ip{packet};
  EXPECT_EQ(ip.src(), kSrc);
  EXPECT_EQ(ip.dst(), kTarget);
  EXPECT_EQ(ip.hop_limit(), 64);
  pkt::Icmpv6View icmp{ip.payload()};
  EXPECT_EQ(icmp.ident(), probe_tag16(kTarget, kSeed, 1));
  EXPECT_EQ(icmp.seq(), probe_tag16(kTarget, kSeed, 2));
}

TEST(IcmpEchoProbe, ClassifiesEchoReply) {
  IcmpEchoProbe probe{64};
  auto request = probe.make_probe(kSrc, kTarget, kSeed);
  auto reply = pkt::build_echo_reply(request);
  auto result = probe.classify(reply, kSrc, kSeed);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->kind, ResponseKind::kEchoReply);
  EXPECT_EQ(result->responder, kTarget);
  EXPECT_EQ(result->probe_dst, kTarget);
}

TEST(IcmpEchoProbe, ClassifiesDestUnreachableViaQuotedProbe) {
  IcmpEchoProbe probe{64};
  auto request = probe.make_probe(kSrc, kTarget, kSeed);
  auto err = pkt::build_icmpv6_error(
      kRouter, pkt::Icmpv6Type::kDestUnreachable,
      static_cast<std::uint8_t>(pkt::UnreachCode::kAddressUnreachable),
      request);
  auto result = probe.classify(err, kSrc, kSeed);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->kind, ResponseKind::kDestUnreachable);
  EXPECT_EQ(result->responder, kRouter);
  EXPECT_EQ(result->probe_dst, kTarget);  // recovered from the quote
  EXPECT_EQ(result->icmp_code,
            static_cast<std::uint8_t>(pkt::UnreachCode::kAddressUnreachable));
}

TEST(IcmpEchoProbe, ClassifiesTimeExceeded) {
  IcmpEchoProbe probe{32};
  auto request = probe.make_probe(kSrc, kTarget, kSeed);
  auto err = pkt::build_icmpv6_error(kRouter, pkt::Icmpv6Type::kTimeExceeded,
                                     0, request);
  auto result = probe.classify(err, kSrc, kSeed);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->kind, ResponseKind::kTimeExceeded);
}

TEST(IcmpEchoProbe, RejectsSpoofedIdent) {
  IcmpEchoProbe probe{64};
  // A forged unreachable quoting a probe we never sent (wrong ident).
  auto forged_probe = pkt::build_echo_request(kSrc, kTarget, 64, 0x1111,
                                              0x2222);
  auto err = pkt::build_icmpv6_error(
      kRouter, pkt::Icmpv6Type::kDestUnreachable, 3, forged_probe);
  EXPECT_FALSE(probe.classify(err, kSrc, kSeed).has_value());
}

TEST(IcmpEchoProbe, RejectsWrongSeed) {
  IcmpEchoProbe probe{64};
  auto request = probe.make_probe(kSrc, kTarget, kSeed);
  auto err = pkt::build_icmpv6_error(
      kRouter, pkt::Icmpv6Type::kDestUnreachable, 3, request);
  EXPECT_TRUE(probe.classify(err, kSrc, kSeed).has_value());
  EXPECT_FALSE(probe.classify(err, kSrc, kSeed + 1).has_value());
}

TEST(IcmpEchoProbe, RejectsSpoofedEchoReply) {
  IcmpEchoProbe probe{64};
  auto fake = pkt::build_echo_request(kTarget, kSrc, 64, 0xabcd, 1);
  // Make it a reply by rebuilding with swapped roles and wrong tags.
  pkt::Bytes reply = pkt::build_echo_reply(
      pkt::build_echo_request(kSrc, kTarget, 64, 0xabcd, 1));
  EXPECT_FALSE(probe.classify(reply, kSrc, kSeed).has_value());
  (void)fake;
}

TEST(IcmpEchoProbe, RejectsPacketsForOtherDestinations) {
  IcmpEchoProbe probe{64};
  auto request = probe.make_probe(kSrc, kTarget, kSeed);
  auto reply = pkt::build_echo_reply(request);
  const Ipv6Address other = *Ipv6Address::parse("2001:500::2");
  EXPECT_FALSE(probe.classify(reply, other, kSeed).has_value());
}

TEST(IcmpEchoProbe, RejectsCorruptedChecksum) {
  IcmpEchoProbe probe{64};
  auto reply = pkt::build_echo_reply(probe.make_probe(kSrc, kTarget, kSeed));
  reply.back() ^= 1;
  EXPECT_FALSE(probe.classify(reply, kSrc, kSeed).has_value());
}

TEST(IcmpEchoProbe, RejectsNonIcmp) {
  IcmpEchoProbe probe{64};
  auto udp = pkt::build_udp(kTarget, kSrc, 53, 1234,
                            std::vector<std::uint8_t>{1, 2});
  EXPECT_FALSE(probe.classify(udp, kSrc, kSeed).has_value());
}

TEST(TcpSynProbe, ProbeAndSynAckRoundTrip) {
  TcpSynProbe probe{80};
  auto syn = probe.make_probe(kSrc, kTarget, kSeed);
  pkt::TcpView tcp{pkt::Ipv6View{syn}.payload()};
  EXPECT_EQ(tcp.dst_port(), 80);
  EXPECT_EQ(tcp.flags(), pkt::kTcpSyn);

  // Target answers SYN/ACK.
  auto synack = pkt::build_tcp(kTarget, kSrc, 80, tcp.src_port(), 500,
                               tcp.seq() + 1, pkt::kTcpSyn | pkt::kTcpAck,
                               65535);
  auto result = probe.classify(synack, kSrc, kSeed);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->kind, ResponseKind::kTcpSynAck);
  EXPECT_EQ(result->responder, kTarget);
}

TEST(TcpSynProbe, ClassifiesRst) {
  TcpSynProbe probe{22};
  auto syn = probe.make_probe(kSrc, kTarget, kSeed);
  pkt::TcpView tcp{pkt::Ipv6View{syn}.payload()};
  auto rst = pkt::build_tcp(kTarget, kSrc, 22, tcp.src_port(), 0,
                            tcp.seq() + 1, pkt::kTcpRst | pkt::kTcpAck, 0);
  auto result = probe.classify(rst, kSrc, kSeed);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->kind, ResponseKind::kTcpRst);
}

TEST(TcpSynProbe, RejectsWrongAckNumber) {
  TcpSynProbe probe{80};
  auto syn = probe.make_probe(kSrc, kTarget, kSeed);
  pkt::TcpView tcp{pkt::Ipv6View{syn}.payload()};
  auto synack = pkt::build_tcp(kTarget, kSrc, 80, tcp.src_port(), 500,
                               tcp.seq() + 2,  // off by one: stale/forged
                               pkt::kTcpSyn | pkt::kTcpAck, 65535);
  EXPECT_FALSE(probe.classify(synack, kSrc, kSeed).has_value());
}

TEST(TcpSynProbe, RejectsWrongPorts) {
  TcpSynProbe probe{80};
  auto syn = probe.make_probe(kSrc, kTarget, kSeed);
  pkt::TcpView tcp{pkt::Ipv6View{syn}.payload()};
  auto wrong_src = pkt::build_tcp(kTarget, kSrc, 8080, tcp.src_port(), 500,
                                  tcp.seq() + 1, pkt::kTcpSyn | pkt::kTcpAck,
                                  65535);
  EXPECT_FALSE(probe.classify(wrong_src, kSrc, kSeed).has_value());
  auto wrong_dst = pkt::build_tcp(kTarget, kSrc, 80, 1234, 500, tcp.seq() + 1,
                                  pkt::kTcpSyn | pkt::kTcpAck, 65535);
  EXPECT_FALSE(probe.classify(wrong_dst, kSrc, kSeed).has_value());
}

TEST(UdpProbe, DataResponseValidated) {
  UdpProbe probe{53, pkt::Bytes{1, 2, 3}, "udp_dns"};
  auto packet = probe.make_probe(kSrc, kTarget, kSeed);
  pkt::UdpView udp{pkt::Ipv6View{packet}.payload()};
  EXPECT_EQ(udp.dst_port(), 53);
  auto resp = pkt::build_udp(kTarget, kSrc, 53, udp.src_port(),
                             pkt::Bytes{9, 9});
  auto result = probe.classify(resp, kSrc, kSeed);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->kind, ResponseKind::kUdpData);
  EXPECT_EQ(result->responder, kTarget);
}

TEST(UdpProbe, IcmpErrorRecoversProbedAddress) {
  UdpProbe probe{53, pkt::Bytes{1, 2, 3}, "udp_dns"};
  auto packet = probe.make_probe(kSrc, kTarget, kSeed);
  auto err = pkt::build_icmpv6_error(
      kRouter, pkt::Icmpv6Type::kDestUnreachable,
      static_cast<std::uint8_t>(pkt::UnreachCode::kPortUnreachable), packet);
  auto result = probe.classify(err, kSrc, kSeed);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->kind, ResponseKind::kDestUnreachable);
  EXPECT_EQ(result->probe_dst, kTarget);
  EXPECT_EQ(result->responder, kRouter);
}

TEST(UdpProbe, RejectsWrongSourcePortEcho) {
  UdpProbe probe{53, pkt::Bytes{1}, "udp_dns"};
  auto resp = pkt::build_udp(kTarget, kSrc, 53, 1024, pkt::Bytes{9});
  EXPECT_FALSE(probe.classify(resp, kSrc, kSeed).has_value());
}

TEST(ProbeTags, AreStableAndAddressDependent) {
  EXPECT_EQ(probe_tag16(kTarget, 1, 1), probe_tag16(kTarget, 1, 1));
  EXPECT_NE(probe_tag16(kTarget, 1, 1), probe_tag16(kTarget, 1, 2));
  EXPECT_NE(probe_tag16(kTarget, 1, 1), probe_tag16(kTarget, 2, 1));
  EXPECT_NE(probe_tag16(kTarget, 1, 1), probe_tag16(kRouter, 1, 1));
  EXPECT_EQ(probe_tag32(kTarget, 1, 1), probe_tag32(kTarget, 1, 1));
}

}  // namespace
}  // namespace xmap::scan
