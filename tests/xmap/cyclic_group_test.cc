#include "xmap/cyclic_group.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace xmap::scan {
namespace {

using net::Uint128;

TEST(Primality, SmallNumbers) {
  EXPECT_FALSE(is_prime(Uint128{0}));
  EXPECT_FALSE(is_prime(Uint128{1}));
  EXPECT_TRUE(is_prime(Uint128{2}));
  EXPECT_TRUE(is_prime(Uint128{3}));
  EXPECT_FALSE(is_prime(Uint128{4}));
  EXPECT_TRUE(is_prime(Uint128{5}));
  EXPECT_FALSE(is_prime(Uint128{9}));
  EXPECT_TRUE(is_prime(Uint128{97}));
  EXPECT_FALSE(is_prime(Uint128{1001}));
}

TEST(Primality, KnownLargePrimes) {
  // Largest prime below 2^32 and ZMap's modulus 2^32 + 15.
  EXPECT_TRUE(is_prime(Uint128{4294967291ULL}));
  EXPECT_TRUE(is_prime(Uint128{4294967311ULL}));
  EXPECT_FALSE(is_prime(Uint128{4294967295ULL}));
  // Largest prime below 2^64.
  EXPECT_TRUE(is_prime(Uint128{0xffffffffffffffc5ULL}));
  // Mersenne prime 2^61 - 1.
  EXPECT_TRUE(is_prime(Uint128{(1ULL << 61) - 1}));
  // Carmichael number 561 = 3*11*17 must not fool Miller-Rabin.
  EXPECT_FALSE(is_prime(Uint128{561}));
  EXPECT_FALSE(is_prime(Uint128{1729}));
}

TEST(Primality, Above64Bits) {
  // 2^64 + 13 is prime (the first prime above 2^64).
  EXPECT_TRUE(is_prime(Uint128{1, 13}));
  EXPECT_FALSE(is_prime(Uint128{1, 0}));  // 2^64
  EXPECT_FALSE(is_prime(Uint128{1, 1}));  // 2^64+1 = 274177 * 67280421310721
}

TEST(NextPrime, FindsTheNextPrime) {
  EXPECT_EQ(next_prime(Uint128{2}), Uint128{2});
  EXPECT_EQ(next_prime(Uint128{8}), Uint128{11});
  EXPECT_EQ(next_prime(Uint128{11}), Uint128{11});
  EXPECT_EQ(next_prime(Uint128{4294967296ULL}), Uint128{4294967311ULL});
  // next_prime(2^64) = 2^64 + 13.
  EXPECT_EQ(next_prime(Uint128{1, 0}), (Uint128{1, 13}));
}

TEST(Factorisation, DistinctFactors) {
  auto sorted = [](std::vector<Uint128> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(distinct_prime_factors(Uint128{12})),
            (std::vector<Uint128>{Uint128{2}, Uint128{3}}));
  EXPECT_EQ(sorted(distinct_prime_factors(Uint128{97})),
            (std::vector<Uint128>{Uint128{97}}));
  EXPECT_EQ(sorted(distinct_prime_factors(Uint128{1})),
            (std::vector<Uint128>{}));
  // 2^32 + 14 = 2 * 3^2 * 5 * 131 * 364289.
  EXPECT_EQ(sorted(distinct_prime_factors(Uint128{4294967310ULL})),
            (std::vector<Uint128>{Uint128{2}, Uint128{3}, Uint128{5},
                                  Uint128{131}, Uint128{364289}}));
}

TEST(Factorisation, FactorsArePrimeDivisors) {
  net::Rng rng{77};
  for (int i = 0; i < 50; ++i) {
    const Uint128 n{rng.next() >> 16};
    if (n < Uint128{2}) continue;
    for (const Uint128& f : distinct_prime_factors(n)) {
      EXPECT_TRUE(is_prime(f)) << f.to_string();
      EXPECT_TRUE((n % f).is_zero()) << f.to_string() << " !| " << n.to_string();
    }
  }
}

TEST(CyclicGroup, TrivialSizes) {
  CyclicGroup g1{Uint128{1}, 7};
  auto it = g1.iterate();
  auto v = it.next();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, Uint128{0});
  EXPECT_FALSE(it.next().has_value());
}

// Property: the iterator yields every offset in [0, N) exactly once.
class PermutationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PermutationSweep, IsABijection) {
  const std::uint64_t n = GetParam();
  CyclicGroup group{Uint128{n}, 42};
  auto it = group.iterate();
  std::vector<bool> seen(n, false);
  std::uint64_t count = 0;
  while (auto v = it.next()) {
    ASSERT_TRUE(v->fits_u64());
    const std::uint64_t offset = v->to_u64();
    ASSERT_LT(offset, n);
    ASSERT_FALSE(seen[offset]) << "duplicate " << offset;
    seen[offset] = true;
    ++count;
  }
  EXPECT_EQ(count, n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PermutationSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 16, 17, 255, 256,
                                           257, 1000, 4096, 65536, 100000));

TEST(CyclicGroup, DifferentSeedsGiveDifferentOrders) {
  CyclicGroup a{Uint128{1024}, 1};
  CyclicGroup b{Uint128{1024}, 2};
  auto ia = a.iterate(), ib = b.iterate();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (*ia.next() == *ib.next()) ++same;
  }
  EXPECT_LT(same, 10);
}

TEST(CyclicGroup, SameSeedIsDeterministic) {
  CyclicGroup a{Uint128{1024}, 9}, b{Uint128{1024}, 9};
  auto ia = a.iterate(), ib = b.iterate();
  for (int i = 0; i < 1024; ++i) {
    EXPECT_EQ(ia.next(), ib.next());
  }
}

TEST(CyclicGroup, OrderLooksShuffled) {
  // Not a randomness test — just check the order isn't the identity or a
  // constant stride, which would defeat the politeness goal.
  CyclicGroup group{Uint128{10000}, 3};
  auto it = group.iterate();
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 100; ++i) first.push_back(it.next()->to_u64());
  int monotone = 0;
  for (std::size_t i = 1; i < first.size(); ++i) {
    if (first[i] > first[i - 1]) ++monotone;
  }
  EXPECT_GT(monotone, 20);
  EXPECT_LT(monotone, 80);
}

// Property: shards partition the space exactly.
class ShardSweep : public ::testing::TestWithParam<int> {};

TEST_P(ShardSweep, ShardsPartitionTheSpace) {
  const int shards = GetParam();
  const std::uint64_t n = 10007;
  CyclicGroup group{Uint128{n}, 17};
  std::vector<int> hits(n, 0);
  for (int s = 0; s < shards; ++s) {
    auto it = group.shard_iterate(s, shards);
    while (auto v = it.next()) {
      ++hits[v->to_u64()];
    }
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i], 1) << "offset " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardSweep, ::testing::Values(1, 2, 3, 7, 16));

TEST(CyclicGroup, ShardsAreBalanced) {
  const std::uint64_t n = 100000;
  CyclicGroup group{Uint128{n}, 5};
  std::uint64_t counts[4] = {};
  for (int s = 0; s < 4; ++s) {
    auto it = group.shard_iterate(s, 4);
    while (it.next()) ++counts[s];
  }
  for (int s = 0; s < 4; ++s) {
    EXPECT_NEAR(static_cast<double>(counts[s]), n / 4.0, n * 0.01);
  }
}

TEST(CyclicGroup, LargeSpaceFirstElementsAreValid) {
  // A 2^48 space: we cannot enumerate it, but the first elements must be
  // in range and distinct.
  CyclicGroup group{Uint128::pow2(48), 23};
  EXPECT_GE(group.prime(), Uint128::pow2(48));
  auto it = group.iterate();
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    auto v = it.next();
    ASSERT_TRUE(v.has_value());
    ASSERT_LT(*v, Uint128::pow2(48));
    EXPECT_TRUE(seen.insert(v->to_u64()).second);
  }
}

TEST(CyclicGroup, FullIidSpaceWorks) {
  // The full 64-bit IID space: p = 2^64 + 13 exceeds 64 bits; arithmetic
  // must stay exact.
  CyclicGroup group{Uint128::pow2(64), 29};
  EXPECT_EQ(group.prime(), (Uint128{1, 13}));
  auto it = group.iterate();
  for (int i = 0; i < 1000; ++i) {
    auto v = it.next();
    ASSERT_TRUE(v.has_value());
    ASSERT_LT(*v, Uint128::pow2(64));
  }
}

TEST(CyclicGroup, GeneratorIsPrimitiveRoot) {
  CyclicGroup group{Uint128{1000}, 31};
  const Uint128 p = group.prime();
  const Uint128 g = group.generator();
  // g^(p-1) == 1 and g^((p-1)/q) != 1 for each prime factor q.
  EXPECT_EQ(Uint128::powmod(g, p - Uint128{1}, p), Uint128{1});
  for (const Uint128& q : distinct_prime_factors(p - Uint128{1})) {
    EXPECT_NE(Uint128::powmod(g, (p - Uint128{1}) / q, p), Uint128{1});
  }
}

}  // namespace
}  // namespace xmap::scan
