#include "xmap/target_spec.h"

#include <gtest/gtest.h>

#include <set>

#include "xmap/blocklist.h"

namespace xmap::scan {
namespace {

using net::Ipv6Address;
using net::Uint128;

TEST(TargetSpec, ParseWindowForm) {
  auto spec = TargetSpec::parse("2001:db8::/32-64");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->window_lo(), 32);
  EXPECT_EQ(spec->window_hi(), 64);
  EXPECT_EQ(spec->count(), Uint128::pow2(32));
  EXPECT_EQ(spec->to_string(), "2001:db8::/32-64");
}

TEST(TargetSpec, ParseSingleForm) {
  auto spec = TargetSpec::parse("2001:db8::/48");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->window_lo(), 48);
  EXPECT_EQ(spec->window_hi(), 48);
  EXPECT_EQ(spec->count(), Uint128{1});
}

TEST(TargetSpec, ParseRejectsBadInput) {
  EXPECT_FALSE(TargetSpec::parse("").has_value());
  EXPECT_FALSE(TargetSpec::parse("2001:db8::").has_value());
  EXPECT_FALSE(TargetSpec::parse("garbage/32-64").has_value());
  EXPECT_FALSE(TargetSpec::parse("2001:db8::/64-32").has_value());
  EXPECT_FALSE(TargetSpec::parse("2001:db8::/32-129").has_value());
  EXPECT_FALSE(TargetSpec::parse("2001:db8::/-1-64").has_value());
  EXPECT_FALSE(TargetSpec::parse("2001:db8::/0-128").has_value());
  EXPECT_FALSE(TargetSpec::parse("2001:db8::/a-b").has_value());
}

TEST(TargetSpec, NthPrefixEnumeratesWindow) {
  auto spec = *TargetSpec::parse("2001:db8::/32-36");
  EXPECT_EQ(spec.count(), Uint128{16});
  EXPECT_EQ(spec.nth_prefix(Uint128{0}).to_string(), "2001:db8::/36");
  EXPECT_EQ(spec.nth_prefix(Uint128{1}).to_string(), "2001:db8:1000::/36");
  EXPECT_EQ(spec.nth_prefix(Uint128{15}).to_string(), "2001:db8:f000::/36");
}

TEST(TargetSpec, RandomSuffixIsInsidePrefixAndDeterministic) {
  auto spec = *TargetSpec::parse("2001:db8::/32-64");
  const Ipv6Address a = spec.nth_address(Uint128{5}, 99);
  const Ipv6Address b = spec.nth_address(Uint128{5}, 99);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(spec.nth_prefix(Uint128{5}).contains(a));
  // Different seeds give different suffixes.
  EXPECT_NE(spec.nth_address(Uint128{5}, 100), a);
  // Different offsets give different suffixes.
  EXPECT_NE(spec.nth_address(Uint128{6}, 99).iid(), a.iid());
}

TEST(TargetSpec, ZeroPolicy) {
  auto spec = *TargetSpec::parse("2001:db8::/32-64", SuffixPolicy::kZero);
  EXPECT_EQ(spec.nth_address(Uint128{1}, 7).to_string(), "2001:db8:0:1::");
}

TEST(TargetSpec, FixedPolicy) {
  TargetSpec spec{*net::Ipv6Prefix::parse("2001:db8::/32"), 32, 64,
                  SuffixPolicy::kFixed, Uint128{0x1234}};
  EXPECT_EQ(spec.nth_address(Uint128{1}, 7).to_string(),
            "2001:db8:0:1::1234");
}

TEST(TargetSpec, SuffixesLookRandomAcrossOffsets) {
  auto spec = *TargetSpec::parse("2001:db8::/32-64");
  std::set<std::uint64_t> iids;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    iids.insert(spec.nth_address(Uint128{i}, 5).iid());
  }
  EXPECT_EQ(iids.size(), 1000u);  // no collisions in 1000 draws
}

TEST(TargetSpec, Ipv4MappedZmapCompatibility) {
  // "192.168.0.0/20-25": the 2^5 sub-prefixes between bits 20 and 25 of the
  // IPv4 space, via the IPv4-mapped embedding.
  auto spec = TargetSpec::parse("192.168.0.0/20-25");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->window_lo(), 116);  // 96 + 20
  EXPECT_EQ(spec->window_hi(), 121);  // 96 + 25
  EXPECT_EQ(spec->count(), Uint128{32});
  // First sub-prefix is the mapped base.
  EXPECT_EQ(spec->nth_prefix(Uint128{0}).address().to_string(),
            "::ffff:192.168.0.0");
  // Offset 1 sets the window's lowest bit (v4 bit 24): 192.168.0.128.
  EXPECT_EQ(spec->nth_prefix(Uint128{1}).address().to_string(),
            "::ffff:192.168.0.128");
  // The top offset sets the whole window (v4 bits 20-24): 192.168.15.128.
  EXPECT_EQ(spec->nth_prefix(Uint128{31}).address().to_string(),
            "::ffff:192.168.15.128");
}

TEST(TargetSpec, Ipv4WholeInternetSpec) {
  auto spec = TargetSpec::parse("0.0.0.0/0-32");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->count(), Uint128::pow2(32));  // ZMap's scan space
  EXPECT_EQ(spec->window_lo(), 96);
  EXPECT_EQ(spec->window_hi(), 128);
}

TEST(TargetSpec, Ipv4RejectsBadInput) {
  EXPECT_FALSE(TargetSpec::parse("300.0.0.0/0-8").has_value());
  EXPECT_FALSE(TargetSpec::parse("10.0.0/0-8").has_value());
  EXPECT_FALSE(TargetSpec::parse("10.0.0.0/24-40").has_value());  // past /32
}

TEST(Blocklist, DefaultsBlockSpecialUse) {
  const Blocklist list = Blocklist::well_behaved_defaults();
  EXPECT_FALSE(list.permitted(*Ipv6Address::parse("::1")));
  EXPECT_FALSE(list.permitted(*Ipv6Address::parse("fe80::1")));
  EXPECT_FALSE(list.permitted(*Ipv6Address::parse("ff02::1")));
  EXPECT_FALSE(list.permitted(*Ipv6Address::parse("2001:db8::1")));
  EXPECT_FALSE(list.permitted(*Ipv6Address::parse("fc00::1")));
  EXPECT_TRUE(list.permitted(*Ipv6Address::parse("2400:1234::1")));
  EXPECT_TRUE(list.permitted(*Ipv6Address::parse("3fff:100::1")));
}

TEST(Blocklist, EmptyPermitsEverything) {
  const Blocklist list;
  EXPECT_TRUE(list.permitted(*Ipv6Address::parse("::1")));
}

TEST(Blocklist, AllowlistRestrictsScan) {
  Blocklist list;
  list.allow(*net::Ipv6Prefix::parse("2400::/16"));
  EXPECT_TRUE(list.permitted(*Ipv6Address::parse("2400:1::1")));
  EXPECT_FALSE(list.permitted(*Ipv6Address::parse("2600:1::1")));
}

TEST(Blocklist, BlockOverridesAllow) {
  Blocklist list;
  list.allow(*net::Ipv6Prefix::parse("2400::/16"));
  list.block(*net::Ipv6Prefix::parse("2400:dead::/32"));
  EXPECT_TRUE(list.permitted(*Ipv6Address::parse("2400:1::1")));
  EXPECT_FALSE(list.permitted(*Ipv6Address::parse("2400:dead::1")));
}

TEST(Blocklist, Counts) {
  Blocklist list;
  list.block(*net::Ipv6Prefix::parse("2400::/16"));
  list.block(*net::Ipv6Prefix::parse("2600::/16"));
  list.allow(*net::Ipv6Prefix::parse("2a00::/16"));
  EXPECT_EQ(list.blocked_count(), 2u);
  EXPECT_EQ(list.allowed_count(), 1u);
}

}  // namespace
}  // namespace xmap::scan
