// The probe-template contract: for every module, a frame re-aimed with
// patch_probe() must be byte-identical to a from-scratch make_probe()
// build — destination, keyed validation fields and incrementally updated
// checksums included. This is what licenses the scanner to skip the full
// packet build per send.
#include <gtest/gtest.h>

#include <cstdint>

#include "netbase/random.h"
#include "xmap/probe_module.h"

namespace xmap::scan {
namespace {

using net::Ipv6Address;

const Ipv6Address kSrc = *Ipv6Address::parse("2001:500::1");
constexpr std::uint64_t kSeed = 0x5eed'f00d;

Ipv6Address random_addr(net::Rng& rng) {
  return Ipv6Address::from_value(net::Uint128{rng.next(), rng.next()});
}

void expect_patched_equals_built(const ProbeModule& module) {
  net::Rng rng{0xabcd};
  ProbeTemplate tmpl = module.make_template(kSrc, kSeed);
  for (int i = 0; i < 512; ++i) {
    const Ipv6Address target = random_addr(rng);
    module.patch_probe(tmpl, kSrc, target, kSeed);
    const pkt::Bytes built = module.make_probe(kSrc, target, kSeed);
    ASSERT_EQ(tmpl.frame(), built)
        << module.name() << " diverged at iteration " << i;
  }
}

TEST(ProbeTemplate, IcmpEchoPatchMatchesFullBuild) {
  expect_patched_equals_built(IcmpEchoProbe{64});
  expect_patched_equals_built(IcmpEchoProbe{255});
}

TEST(ProbeTemplate, TcpSynPatchMatchesFullBuild) {
  expect_patched_equals_built(TcpSynProbe{80});
  expect_patched_equals_built(TcpSynProbe{443});
}

TEST(ProbeTemplate, UdpPatchMatchesFullBuild) {
  expect_patched_equals_built(UdpProbe{53, {0x12, 0x34, 0x00, 0xff}, "udp_t"});
  // Empty payload: the UDP datagram is header-only and the checksum skews
  // towards the 0x0000/0xffff wire-mapping edge.
  expect_patched_equals_built(UdpProbe{123, {}, "udp_empty"});
}

TEST(ProbeTemplate, RepatchingTheSameTargetIsStable) {
  IcmpEchoProbe module{64};
  net::Rng rng{99};
  ProbeTemplate tmpl = module.make_template(kSrc, kSeed);
  const Ipv6Address a = random_addr(rng);
  const Ipv6Address b = random_addr(rng);
  module.patch_probe(tmpl, kSrc, a, kSeed);
  const pkt::Bytes first = tmpl.frame();
  module.patch_probe(tmpl, kSrc, b, kSeed);
  module.patch_probe(tmpl, kSrc, a, kSeed);
  EXPECT_EQ(tmpl.frame(), first);
}

// A module that does not override the template hooks must still produce
// correct frames through the default full-rebuild fallback.
class MinimalModule final : public ProbeModule {
 public:
  [[nodiscard]] std::string name() const override { return "minimal"; }
  [[nodiscard]] pkt::Bytes make_probe(const Ipv6Address& src,
                                      const Ipv6Address& target,
                                      std::uint64_t seed) const override {
    return pkt::build_echo_request(src, target, 32,
                                   probe_tag16(target, seed, 1),
                                   probe_tag16(target, seed, 2));
  }
  [[nodiscard]] std::optional<ProbeResponse> classify(
      const pkt::Bytes&, const Ipv6Address&,
      std::uint64_t) const override {
    return std::nullopt;
  }
};

TEST(ProbeTemplate, DefaultFallbackRebuildsPerTarget) {
  expect_patched_equals_built(MinimalModule{});
}

}  // namespace
}  // namespace xmap::scan
