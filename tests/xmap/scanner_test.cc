// Integration tests: the scanner engine against the built synthetic
// Internet — the paper's discovery methodology end to end.
#include "xmap/scanner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_set>
#include <vector>

#include "topology/builder.h"
#include "topology/paper_profiles.h"
#include "xmap/results.h"

namespace xmap::scan {
namespace {

using net::Ipv6Address;
using net::Ipv6Prefix;
using net::Uint128;

const Ipv6Address kScannerAddr = *Ipv6Address::parse("2001:500::1");
const Ipv6Prefix kVantagePrefix = *Ipv6Prefix::parse("2001:500::/48");

struct ScanWorld {
  sim::Network net{101};
  topo::BuiltInternet internet;

  explicit ScanWorld(int window_bits = 8, std::uint64_t seed = 42)
      : internet([&] {
          topo::BuildConfig cfg;
          cfg.window_bits = window_bits;
          cfg.seed = seed;
          return topo::build_internet(net, topo::paper::isp_specs(),
                                      topo::paper::vendor_catalog(), cfg);
        }()) {}

  // Runs a discovery scan over the given ISP indices; returns the collector.
  ResultCollector scan(std::initializer_list<int> isp_indices,
                       const ProbeModule& module, double pps = 1e6,
                       int shard = 0, int shards = 1) {
    ScanConfig cfg;
    for (int i : isp_indices) {
      const auto& isp = internet.isps[static_cast<std::size_t>(i)];
      cfg.targets.push_back(TargetSpec{isp.scan_base, isp.window_lo,
                                       isp.window_hi});
    }
    cfg.source = kScannerAddr;
    cfg.seed = 7;
    cfg.probes_per_sec = pps;
    cfg.shard = shard;
    cfg.shards = shards;
    auto* scanner = net.make_node<SimChannelScanner>(cfg, module);
    const int iface =
        topo::attach_vantage(net, internet, scanner, kVantagePrefix);
    scanner->set_iface(iface);
    ResultCollector collector;
    scanner->on_response(
        [&collector](const ProbeResponse& r, sim::SimTime) {
          collector.add(r);
        });
    scanner->start();
    net.run();
    last_stats = scanner->stats();
    return collector;
  }

  ScanStats last_stats;
};

TEST(ScannerIntegration, DiscoversEssentiallyAllPeripheries) {
  ScanWorld world{8};
  IcmpEchoProbe probe{64};
  auto collector = world.scan({0}, probe);  // Reliance Jio block

  const auto& isp = world.internet.isps[0];
  // One probe per slot.
  EXPECT_EQ(world.last_stats.sent, 256u);
  // Expected responders: the device WAN addresses.
  std::unordered_set<Ipv6Address> expected;
  for (const auto& dev : isp.devices) expected.insert(dev.address);

  std::unordered_set<Ipv6Address> found;
  for (const auto& hop : collector.last_hops()) found.insert(hop.address);

  // Every found last hop is a real device; discovery covers ~all devices
  // (vulnerable loop-wan devices may surface via Time Exceeded from the
  // ISP instead — rare at Jio's loop rate).
  std::size_t known = 0;
  for (const auto& addr : found) {
    known += expected.count(addr);
  }
  EXPECT_GE(found.size(), expected.size() * 95 / 100);
  EXPECT_EQ(known, found.size()) << "scanner found non-device addresses";
}

TEST(ScannerIntegration, SameDiffSplitMatchesIspModel) {
  ScanWorld world{8};
  IcmpEchoProbe probe{64};
  // ISP 0 = Jio (same-dominated), ISP 5 = AT&T broadband (diff-dominated).
  auto same_side = world.scan({0}, probe);
  std::size_t same = 0, total = 0;
  for (const auto& hop : same_side.last_hops()) {
    ++total;
    if (hop.same_prefix64()) ++same;
  }
  ASSERT_GT(total, 20u);
  EXPECT_GT(static_cast<double>(same) / static_cast<double>(total), 0.9);

  ScanWorld world2{8};
  auto diff_side = world2.scan({5}, probe);
  same = total = 0;
  for (const auto& hop : diff_side.last_hops()) {
    ++total;
    if (hop.same_prefix64()) ++same;
  }
  ASSERT_GT(total, 10u);
  EXPECT_LT(static_cast<double>(same) / static_cast<double>(total), 0.1);
}

TEST(ScannerIntegration, ChattyIspRouterIsAliasedOut) {
  ScanWorld world{8};
  IcmpEchoProbe probe{64};
  // ISP 1 (BSNL) answers unallocated slots from its edge router; the router
  // must show up as aliased, not as hundreds of peripheries.
  auto collector = world.scan({1}, probe);
  const auto aliased = collector.aliased();
  ASSERT_EQ(aliased.size(), 1u);
  EXPECT_EQ(aliased[0].address, world.internet.isps[1].router->address());
  for (const auto& hop : collector.last_hops()) {
    EXPECT_NE(hop.address, world.internet.isps[1].router->address());
  }
}

TEST(ScannerIntegration, ShardsUnionEqualsWholeScan) {
  IcmpEchoProbe probe{64};
  std::unordered_set<Ipv6Address> whole;
  {
    ScanWorld world{8};
    auto collector = world.scan({3}, probe);
    for (const auto& hop : collector.last_hops()) whole.insert(hop.address);
  }
  std::unordered_set<Ipv6Address> sharded;
  std::uint64_t total_sent = 0;
  for (int s = 0; s < 3; ++s) {
    ScanWorld world{8};  // identical builds (same seed)
    auto collector = world.scan({3}, probe, 1e6, s, 3);
    total_sent += world.last_stats.sent;
    for (const auto& hop : collector.last_hops()) sharded.insert(hop.address);
  }
  EXPECT_EQ(total_sent, 256u);  // shards partition the probe space
  EXPECT_EQ(sharded, whole);
}

TEST(ScannerIntegration, BlocklistSuppressesProbes) {
  ScanWorld world{8};
  IcmpEchoProbe probe{64};
  Blocklist blocklist;
  blocklist.block(world.internet.isps[0].scan_base);  // block everything

  ScanConfig cfg;
  const auto& isp = world.internet.isps[0];
  cfg.targets.push_back(TargetSpec{isp.scan_base, isp.window_lo,
                                   isp.window_hi});
  cfg.source = kScannerAddr;
  cfg.blocklist = &blocklist;
  auto* scanner = world.net.make_node<SimChannelScanner>(cfg, probe);
  const int iface = topo::attach_vantage(world.net, world.internet, scanner,
                                         kVantagePrefix);
  scanner->set_iface(iface);
  scanner->start();
  world.net.run();
  EXPECT_EQ(scanner->stats().sent, 0u);
  EXPECT_EQ(scanner->stats().blocked, 256u);
}

TEST(ScannerIntegration, RateLimitSpreadsSendsOverTime) {
  ScanWorld world{6};  // 64 slots
  IcmpEchoProbe probe{64};
  ScanConfig cfg;
  const auto& isp = world.internet.isps[0];
  cfg.targets.push_back(TargetSpec{isp.scan_base, isp.window_lo,
                                   isp.window_hi});
  cfg.source = kScannerAddr;
  cfg.probes_per_sec = 64;  // 64 probes at 64 pps ≈ 1 second of sending
  auto* scanner = world.net.make_node<SimChannelScanner>(cfg, probe);
  const int iface = topo::attach_vantage(world.net, world.internet, scanner,
                                         kVantagePrefix);
  scanner->set_iface(iface);
  scanner->start();
  world.net.run();
  EXPECT_EQ(scanner->stats().sent, 64u);
  const auto duration = scanner->stats().last_send - scanner->stats().first_send;
  EXPECT_NEAR(static_cast<double>(duration) / sim::kSecond, 1.0, 0.05);
}

TEST(ScannerIntegration, MaxProbesCapsTheScan) {
  ScanWorld world{8};
  IcmpEchoProbe probe{64};
  ScanConfig cfg;
  const auto& isp = world.internet.isps[0];
  cfg.targets.push_back(TargetSpec{isp.scan_base, isp.window_lo,
                                   isp.window_hi});
  cfg.source = kScannerAddr;
  cfg.max_probes = 10;
  auto* scanner = world.net.make_node<SimChannelScanner>(cfg, probe);
  const int iface = topo::attach_vantage(world.net, world.internet, scanner,
                                         kVantagePrefix);
  scanner->set_iface(iface);
  scanner->start();
  world.net.run();
  EXPECT_EQ(scanner->stats().sent, 10u);
}

TEST(ScannerIntegration, StatsValidatedMatchesCallbacks) {
  ScanWorld world{8};
  IcmpEchoProbe probe{64};
  auto collector = world.scan({0, 5}, probe);
  EXPECT_EQ(world.last_stats.validated, collector.total_responses());
  EXPECT_GT(world.last_stats.hit_rate(), 0.05);
  EXPECT_EQ(world.last_stats.discarded + world.last_stats.validated,
            world.last_stats.received);
}

// Property: discovery completeness holds for arbitrary world/scan seeds.
class DiscoverySeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiscoverySeedSweep, FindsEssentiallyAllDevicesNoFalsePositives) {
  sim::Network net{GetParam()};
  topo::BuildConfig bcfg;
  bcfg.window_bits = 8;
  bcfg.seed = GetParam();
  auto internet = topo::build_internet(net, topo::paper::isp_specs(),
                                       topo::paper::vendor_catalog(), bcfg);
  IcmpEchoProbe probe{64};
  ScanConfig cfg;
  const auto& isp = internet.isps[5];  // AT&T broadband: clean CPE block
  cfg.targets.push_back(
      TargetSpec{isp.scan_base, isp.window_lo, isp.window_hi});
  cfg.source = kScannerAddr;
  cfg.seed = GetParam() ^ 0xabcd;
  auto* scanner = net.make_node<SimChannelScanner>(cfg, probe);
  const int iface =
      topo::attach_vantage(net, internet, scanner, kVantagePrefix);
  scanner->set_iface(iface);
  ResultCollector collector;
  scanner->on_response(
      [&collector](const ProbeResponse& r, sim::SimTime) { collector.add(r); });
  scanner->start();
  net.run();

  std::unordered_set<Ipv6Address> truth;
  for (const auto& dev : isp.devices) truth.insert(dev.address);
  std::size_t known = 0;
  for (const auto& hop : collector.last_hops()) {
    known += truth.count(hop.address);
    EXPECT_TRUE(truth.count(hop.address))
        << "false positive " << hop.address.to_string();
  }
  EXPECT_GE(known, truth.size() * 9 / 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiscoverySeedSweep,
                         ::testing::Values(3, 1234, 98765, 0xfeedface));

TEST(ScannerIntegration, RetriesRecoverFromLossyLinks) {
  // Build a lossy world: 30% loss on core and access links. Without
  // retries a third of the periphery is missed; with retries coverage
  // recovers (stateless validation makes duplicates harmless).
  auto run = [](int retries) {
    sim::Network net{314};
    topo::BuildConfig bcfg;
    bcfg.window_bits = 8;
    bcfg.seed = 314;
    bcfg.core_link.loss = 0.3;
    auto internet = topo::build_internet(net, topo::paper::isp_specs(),
                                         topo::paper::vendor_catalog(), bcfg);
    IcmpEchoProbe probe{64};
    ScanConfig cfg;
    const auto& isp = internet.isps[5];
    cfg.targets.push_back(
        TargetSpec{isp.scan_base, isp.window_lo, isp.window_hi});
    cfg.source = kScannerAddr;
    cfg.retries = retries;
    auto* scanner = net.make_node<SimChannelScanner>(cfg, probe);
    const int iface =
        topo::attach_vantage(net, internet, scanner, kVantagePrefix);
    scanner->set_iface(iface);
    ResultCollector collector;
    scanner->on_response(
        [&collector](const ProbeResponse& r, sim::SimTime) {
          collector.add(r);
        });
    scanner->start();
    net.run();
    return std::pair{collector.last_hops().size(),
                     internet.isps[5].devices.size()};
  };

  const auto [found_plain, truth] = run(0);
  const auto [found_retry, truth2] = run(3);
  ASSERT_EQ(truth, truth2);
  EXPECT_LT(found_plain, truth);  // loss bites
  EXPECT_GT(found_retry, found_plain);
  EXPECT_GE(found_retry, truth * 9 / 10);  // retries recover coverage
}

TEST(ScannerIntegration, RetriesMultiplySentCount) {
  ScanWorld world{6};
  IcmpEchoProbe probe{64};
  ScanConfig cfg;
  const auto& isp = world.internet.isps[0];
  cfg.targets.push_back(
      TargetSpec{isp.scan_base, isp.window_lo, isp.window_hi});
  cfg.source = kScannerAddr;
  cfg.retries = 2;
  auto* scanner = world.net.make_node<SimChannelScanner>(cfg, probe);
  const int iface = topo::attach_vantage(world.net, world.internet, scanner,
                                         kVantagePrefix);
  scanner->set_iface(iface);
  scanner->start();
  world.net.run();
  EXPECT_EQ(scanner->stats().sent, 64u * 3u);
}

TEST(ScannerIntegration, RetransmitsAreSpacedAndRespectTheRate) {
  // The pre-fix scanner emitted retry copies back to back, tripling the
  // instantaneous rate. Spaced slot pacing must keep every inter-send gap
  // at >= 1/pps and land copies ~retry_spacing_ms after their original.
  ScanWorld world{6};  // 64 targets
  IcmpEchoProbe probe{64};
  ScanConfig cfg;
  const auto& isp = world.internet.isps[0];
  cfg.targets.push_back(
      TargetSpec{isp.scan_base, isp.window_lo, isp.window_hi});
  cfg.source = kScannerAddr;
  cfg.probes_per_sec = 192;
  cfg.retries = 2;
  cfg.retry_spacing_ms = 100;
  auto* scanner = world.net.make_node<SimChannelScanner>(cfg, probe);
  const int iface = topo::attach_vantage(world.net, world.internet, scanner,
                                         kVantagePrefix);
  scanner->set_iface(iface);

  // The vantage link has fixed latency and no loss, so delivery times at
  // the first hop reproduce send times shifted by a constant.
  std::vector<sim::SimTime> sends;
  world.net.set_tracer([&](sim::SimTime when, sim::NodeId from, sim::NodeId,
                           const pkt::Bytes&) {
    if (from == scanner->id()) sends.push_back(when);
  });
  scanner->start();
  world.net.run();

  EXPECT_EQ(scanner->stats().sent, 64u * 3u);
  EXPECT_EQ(scanner->stats().retransmits, 64u * 2u);
  ASSERT_EQ(sends.size(), 64u * 3u);
  std::sort(sends.begin(), sends.end());
  const auto gap =
      static_cast<sim::SimTime>(static_cast<double>(sim::kSecond) / 192.0);
  for (std::size_t i = 1; i < sends.size(); ++i) {
    // Send-rate invariant: no two packets closer than one pacing slot.
    EXPECT_GE(sends[i] - sends[i - 1], gap)
        << "burst at packet " << i;
  }
  // Aggregate rate stays at the configured pps, not pps * (1+retries).
  const auto span = sends.back() - sends.front();
  EXPECT_GE(span, static_cast<sim::SimTime>(sends.size() - 1) * gap);
}

TEST(ScannerIntegration, CooldownBoundsTheReceiveWindow) {
  // Slow links + zero cooldown: every response lands after the receive
  // deadline and is accounted `late`, never validated.
  auto run = [](double cooldown_secs) {
    sim::Network net{55};
    topo::BuildConfig bcfg;
    bcfg.window_bits = 6;
    bcfg.seed = 55;
    bcfg.core_link.latency = 300 * sim::kMillisecond;
    auto internet = topo::build_internet(net, topo::paper::isp_specs(),
                                         topo::paper::vendor_catalog(), bcfg);
    IcmpEchoProbe probe{64};
    ScanConfig cfg;
    const auto& isp = internet.isps[5];
    cfg.targets.push_back(
        TargetSpec{isp.scan_base, isp.window_lo, isp.window_hi});
    cfg.source = kScannerAddr;
    cfg.probes_per_sec = 1e6;
    cfg.cooldown_secs = cooldown_secs;
    auto* scanner = net.make_node<SimChannelScanner>(cfg, probe);
    const int iface =
        topo::attach_vantage(net, internet, scanner, kVantagePrefix);
    scanner->set_iface(iface);
    scanner->start();
    net.run();
    return scanner->stats();
  };

  const auto cut = run(0.0);
  EXPECT_GT(cut.received, 0u);
  EXPECT_EQ(cut.validated, 0u);
  EXPECT_EQ(cut.late, cut.received);

  const auto open = run(8.0);
  EXPECT_GT(open.validated, 0u);
  EXPECT_EQ(open.late, 0u);
}

TEST(ScannerIntegration, FaultCountersUpholdTheAccountingInvariant) {
  // Duplication + corruption + loss on access links: every received packet
  // is accounted exactly once across validated/discarded/corrupted/late,
  // and duplicate responses are flagged without double-counting.
  ScanWorld world{8};
  sim::FaultPlan plan;
  plan.access.duplicate = 1.0;
  plan.access.corrupt = 0.15;
  plan.access.loss = 0.1;
  world.net.install_faults(plan);
  IcmpEchoProbe probe{64};
  auto collector = world.scan({5}, probe);

  const auto& s = world.last_stats;
  EXPECT_GT(s.received, 0u);
  EXPECT_EQ(s.validated + s.discarded + s.corrupted + s.late, s.received);
  EXPECT_GT(s.duplicates, 0u);   // duplicate=1 echoes everything twice
  EXPECT_GT(s.corrupted, 0u);    // bit flips break checksums
  EXPECT_LE(s.duplicates, s.validated);
  // The collector still sees only real devices (no corrupted acceptances).
  std::unordered_set<Ipv6Address> truth;
  for (const auto& dev : world.internet.isps[5].devices) {
    truth.insert(dev.address);
  }
  for (const auto& hop : collector.last_hops()) {
    EXPECT_TRUE(truth.count(hop.address))
        << "corrupted packet validated: " << hop.address.to_string();
  }
}

TEST(ScannerIntegration, BulkDeliveryMatchesPerPacketPath) {
  // The bulk fast path (channel trains + block sweeps) must be a pure
  // reordering of processing, never of results: over a fault-injected
  // world (duplication + corruption forcing per-link strict fallback,
  // silent windows pruning deliveries), the canonicalized record stream
  // and the full accounting stats must match the per-packet path exactly.
  // Also run with a checkpoint hook armed, which flips the network into
  // strict (order-observed) bulk mode — same requirement.
  auto run = [](bool bulk, bool hook) {
    ScanWorld world{8};
    sim::FaultPlan plan;
    plan.access.duplicate = 0.3;
    plan.access.corrupt = 0.1;
    plan.silent.fraction = 0.25;
    plan.silent.start_ms = 5;
    sim::FaultInjector* inj = world.net.install_faults(plan);
    std::vector<sim::NodeId> candidates;
    for (const auto& dev : world.internet.isps[5].devices) {
      candidates.push_back(dev.node);
    }
    inj->choose_silent(candidates);
    world.net.set_bulk_enabled(bulk);
    IcmpEchoProbe probe{64};
    ScanConfig cfg;
    for (int i : {0, 5}) {
      const auto& isp = world.internet.isps[static_cast<std::size_t>(i)];
      cfg.targets.push_back(
          TargetSpec{isp.scan_base, isp.window_lo, isp.window_hi});
    }
    cfg.source = kScannerAddr;
    cfg.seed = 7;
    cfg.probes_per_sec = 1e6;
    auto* scanner = world.net.make_node<SimChannelScanner>(cfg, probe);
    const int iface =
        topo::attach_vantage(world.net, world.internet, scanner,
                             kVantagePrefix);
    scanner->set_iface(iface);
    std::vector<std::string> records;
    scanner->on_response_slotted(
        [&records](const ProbeResponse& r, sim::SimTime when,
                   std::uint64_t raw_slot) {
          records.push_back(std::to_string(when) + "|" +
                            r.responder.to_string() + "|" +
                            r.probe_dst.to_string() + "|" +
                            std::to_string(static_cast<int>(r.kind)) + "|" +
                            std::to_string(raw_slot));
        });
    if (hook) {
      scanner->set_checkpoint_hook(32, [](const ScanCursor&) {});
    }
    scanner->start();
    world.net.run();
    // Canonical order — downstream consumers (store, xmap_sim) sort
    // records before use, so arrival order is not part of the contract.
    std::sort(records.begin(), records.end());
    const ScanStats& s = scanner->stats();
    records.push_back("stats|" + std::to_string(s.sent) + "|" +
                      std::to_string(s.received) + "|" +
                      std::to_string(s.validated) + "|" +
                      std::to_string(s.discarded) + "|" +
                      std::to_string(s.corrupted) + "|" +
                      std::to_string(s.duplicates) + "|" +
                      std::to_string(s.late));
    return records;
  };
  const auto strict = run(/*bulk=*/false, /*hook=*/false);
  ASSERT_GT(strict.size(), 40u);  // the fault world still yields records
  EXPECT_EQ(run(/*bulk=*/true, /*hook=*/false), strict);
  EXPECT_EQ(run(/*bulk=*/true, /*hook=*/true), strict);
}

TEST(ScannerIntegration, AdaptiveRateBacksOffWhenHitRateCollapses) {
  // Every CPE goes silent one second into the scan: the windowed hit rate
  // collapses to zero and the AIMD controller must halve the rate at least
  // once (counted in rate_adjustments) while still covering every target.
  ScanWorld world{8};
  sim::FaultPlan plan;
  plan.silent.fraction = 1.0;
  plan.silent.start_ms = 1000;
  sim::FaultInjector* inj = world.net.install_faults(plan);
  std::vector<sim::NodeId> cpes;
  for (const auto& dev : world.internet.isps[5].devices) {
    cpes.push_back(dev.node);
  }
  inj->choose_silent(cpes);
  IcmpEchoProbe probe{64};
  ScanConfig cfg;
  const auto& isp = world.internet.isps[5];
  cfg.targets.push_back(
      TargetSpec{isp.scan_base, isp.window_lo, isp.window_hi});
  cfg.source = kScannerAddr;
  cfg.probes_per_sec = 64;  // ~4s of sending: several 500ms windows
  cfg.adaptive_rate = true;
  auto* scanner = world.net.make_node<SimChannelScanner>(cfg, probe);
  const int iface = topo::attach_vantage(world.net, world.internet, scanner,
                                         kVantagePrefix);
  scanner->set_iface(iface);
  scanner->start();
  world.net.run();
  EXPECT_GT(scanner->stats().rate_adjustments, 0u);
  EXPECT_EQ(scanner->stats().sent, 256u);  // backoff delays, never drops
}

TEST(ResultCollectorUnit, DedupAndCounts) {
  ResultCollector collector{2};
  ProbeResponse r;
  r.kind = ResponseKind::kDestUnreachable;
  r.responder = *Ipv6Address::parse("3fff::1");
  r.probe_dst = *Ipv6Address::parse("3fff::2");
  collector.add(r);
  collector.add(r);
  EXPECT_EQ(collector.total_responses(), 2u);
  EXPECT_EQ(collector.unique_responders(), 1u);
  EXPECT_EQ(collector.count_of(ResponseKind::kDestUnreachable), 2u);
  ASSERT_EQ(collector.last_hops().size(), 1u);
  EXPECT_EQ(collector.last_hops()[0].responses, 2u);
  // Exceed the alias threshold.
  collector.add(r);
  EXPECT_TRUE(collector.last_hops().empty());
  ASSERT_EQ(collector.aliased().size(), 1u);
}

TEST(ResultCollectorUnit, MergeUnionsResponderMapsExactly) {
  ProbeResponse r;
  r.kind = ResponseKind::kDestUnreachable;
  r.responder = *Ipv6Address::parse("3fff::1");
  r.probe_dst = *Ipv6Address::parse("3fff::2");

  // Split the same response stream across two collectors (two workers)...
  ResultCollector left{2};
  ResultCollector right{2};
  left.add(r);
  left.add(r);
  right.add(r);
  ProbeResponse other = r;
  other.responder = *Ipv6Address::parse("3fff::99");
  right.add(other);

  // ...the merged union must classify like a single collector that saw all
  // four: 3fff::1 crossed the alias threshold only across the shards.
  left.merge(right);
  EXPECT_EQ(left.total_responses(), 4u);
  EXPECT_EQ(left.count_of(ResponseKind::kDestUnreachable), 4u);
  EXPECT_EQ(left.unique_responders(), 2u);
  ASSERT_EQ(left.aliased().size(), 1u);
  EXPECT_EQ(left.aliased()[0].responses, 3u);
  ASSERT_EQ(left.last_hops().size(), 1u);
  EXPECT_EQ(left.last_hops()[0].address, other.responder);

  // Merging an empty collector is a no-op.
  const std::uint64_t before = left.total_responses();
  left.merge(ResultCollector{2});
  EXPECT_EQ(left.total_responses(), before);
}

TEST(ResultCollectorUnit, SamePrefix64Flag) {
  ProbeResponse same;
  same.responder = *Ipv6Address::parse("3fff:1:2:3::aa");
  same.probe_dst = *Ipv6Address::parse("3fff:1:2:3::bb");
  ProbeResponse diff;
  diff.responder = *Ipv6Address::parse("3fff:1:2:4::aa");
  diff.probe_dst = *Ipv6Address::parse("3fff:1:2:3::bb");
  ResultCollector collector;
  collector.add(same);
  collector.add(diff);
  int same_count = 0;
  for (const auto& hop : collector.last_hops()) {
    if (hop.same_prefix64()) ++same_count;
  }
  EXPECT_EQ(same_count, 1);
}

}  // namespace
}  // namespace xmap::scan
