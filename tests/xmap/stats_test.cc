// ScanStats merge semantics: counters add exactly, send windows widen,
// idle blocks are identity elements — the properties the parallel
// executor's per-worker aggregation relies on.
#include "xmap/stats.h"

#include <gtest/gtest.h>

namespace xmap::scan {
namespace {

ScanStats sample(std::uint64_t base, sim::SimTime first, sim::SimTime last) {
  ScanStats s;
  s.targets_generated = base + 1;
  s.blocked = base + 2;
  s.sent = base + 3;
  s.received = base + 4;
  s.validated = base + 5;
  s.discarded = base + 6;
  s.first_send = first;
  s.last_send = last;
  return s;
}

TEST(ScanStats, MergeSumsEveryCounter) {
  ScanStats a = sample(100, 10, 20);
  const ScanStats b = sample(1000, 5, 40);
  a += b;
  EXPECT_EQ(a.targets_generated, 101u + 1001u);
  EXPECT_EQ(a.blocked, 102u + 1002u);
  EXPECT_EQ(a.sent, 103u + 1003u);
  EXPECT_EQ(a.received, 104u + 1004u);
  EXPECT_EQ(a.validated, 105u + 1005u);
  EXPECT_EQ(a.discarded, 106u + 1006u);
}

TEST(ScanStats, MergeWidensTheSendWindow) {
  ScanStats a = sample(0, 10, 20);
  a.merge(sample(0, 5, 40));
  EXPECT_EQ(a.first_send, 5u);
  EXPECT_EQ(a.last_send, 40u);

  ScanStats inner = sample(0, 12, 18);
  inner.merge(sample(0, 10, 30));
  EXPECT_EQ(inner.first_send, 10u);
  EXPECT_EQ(inner.last_send, 30u);
}

TEST(ScanStats, DefaultStatsAreAMergeIdentity) {
  const ScanStats active = sample(7, 100, 200);

  // idle += active adopts active's window instead of clamping to zero.
  ScanStats accumulated;
  accumulated += active;
  EXPECT_EQ(accumulated, active);

  // active += idle leaves the window untouched.
  ScanStats kept = active;
  kept += ScanStats{};
  EXPECT_EQ(kept, active);
}

TEST(ScanStats, MergeOfManyWorkersEqualsRunningTotal) {
  ScanStats total;
  std::uint64_t expect_sent = 0;
  for (std::uint64_t w = 0; w < 8; ++w) {
    total += sample(w * 10, 100 + w, 200 + w);
    expect_sent += w * 10 + 3;
  }
  EXPECT_EQ(total.sent, expect_sent);
  EXPECT_EQ(total.first_send, 100u);
  EXPECT_EQ(total.last_send, 207u);
}

TEST(ScanStats, HitRateFollowsMergedCounters) {
  ScanStats a;
  a.sent = 10;
  a.validated = 1;
  ScanStats b;
  b.sent = 10;
  b.validated = 3;
  a += b;
  EXPECT_DOUBLE_EQ(a.hit_rate(), 0.2);
  EXPECT_DOUBLE_EQ(ScanStats{}.hit_rate(), 0.0);
}

}  // namespace
}  // namespace xmap::scan
