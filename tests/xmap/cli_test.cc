#include "xmap/cli.h"

#include <gtest/gtest.h>

#include <sstream>

#include "xmap/output.h"

namespace xmap::scan {
namespace {

CliParseResult parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"xmap_sim"};
  argv.insert(argv.end(), args.begin(), args.end());
  return parse_cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, DefaultsWhenNoFlags) {
  auto result = parse({});
  ASSERT_TRUE(result.options.has_value());
  const auto& opts = *result.options;
  EXPECT_TRUE(opts.targets.empty());
  EXPECT_EQ(opts.probe_module, "icmp_echo");
  EXPECT_DOUBLE_EQ(opts.rate_pps, 25000);
  EXPECT_EQ(opts.shards, 1);
  EXPECT_EQ(opts.world, "paper");
  EXPECT_EQ(opts.output_format, "csv");
  EXPECT_TRUE(opts.use_default_blocklist);
  EXPECT_FALSE(opts.help);
}

TEST(Cli, FullFlagSet) {
  auto result = parse({"--target", "2400::/32-48", "--target", "2600::/24-56",
                       "--probe-module", "tcp_syn:443", "--rate", "1000",
                       "--seed", "99", "--shards", "4", "--shard", "2",
                       "--max-probes", "5000", "--window-bits", "8",
                       "--world", "bgp:100", "--output-format", "jsonl",
                       "--output-file", "/tmp/x.jsonl", "--quiet",
                       "--no-blocklist"});
  ASSERT_TRUE(result.options.has_value()) << result.error;
  const auto& opts = *result.options;
  ASSERT_EQ(opts.targets.size(), 2u);
  EXPECT_EQ(opts.targets[0].to_string(), "2400::/32-48");
  EXPECT_EQ(opts.probe_module, "tcp_syn:443");
  EXPECT_DOUBLE_EQ(opts.rate_pps, 1000);
  EXPECT_EQ(opts.seed, 99u);
  EXPECT_EQ(opts.shards, 4);
  EXPECT_EQ(opts.shard, 2);
  EXPECT_EQ(opts.max_probes, 5000u);
  EXPECT_EQ(opts.window_bits, 8);
  EXPECT_EQ(opts.world, "bgp:100");
  EXPECT_EQ(opts.output_format, "jsonl");
  EXPECT_EQ(opts.output_file, "/tmp/x.jsonl");
  EXPECT_TRUE(opts.quiet);
  EXPECT_FALSE(opts.use_default_blocklist);
}

TEST(Cli, ParallelEngineFlags) {
  auto result = parse({"--threads", "8", "--status-updates-file", "-",
                       "--status-interval-ms", "100"});
  ASSERT_TRUE(result.options.has_value()) << result.error;
  EXPECT_EQ(result.options->threads, 8);
  EXPECT_EQ(result.options->status_updates_file, "-");
  EXPECT_EQ(result.options->status_interval_ms, 100);

  // Defaults: classic path, monitor off.
  auto plain = parse({});
  EXPECT_EQ(plain.options->threads, 0);
  EXPECT_TRUE(plain.options->status_updates_file.empty());
  EXPECT_EQ(plain.options->status_interval_ms, 250);

  EXPECT_FALSE(parse({"--threads", "0"}).options.has_value());
  EXPECT_FALSE(parse({"--threads", "65"}).options.has_value());
  EXPECT_FALSE(parse({"--threads", "abc"}).options.has_value());
  EXPECT_FALSE(parse({"--status-updates-file"}).options.has_value());
  EXPECT_FALSE(
      parse({"--status-interval-ms", "5"}).options.has_value());
  // The traceroute runner is single-threaded and unmonitored.
  EXPECT_FALSE(parse({"--threads", "2", "--probe-module", "traceroute"})
                   .options.has_value());
  EXPECT_FALSE(parse({"--status-updates-file", "-", "--probe-module",
                      "traceroute"})
                   .options.has_value());
}

TEST(Cli, FabricTransportFlags) {
  auto result = parse({"--fabric-nodes", "2", "--fabric-transport", "tcp",
                       "--fabric-listen", "127.0.0.1:4500",
                       "--fabric-connect", "127.0.0.1:4501"});
  ASSERT_TRUE(result.options.has_value()) << result.error;
  EXPECT_EQ(result.options->fabric_transport, "tcp");
  EXPECT_EQ(result.options->fabric_listen, "127.0.0.1:4500");
  EXPECT_EQ(result.options->fabric_connect, "127.0.0.1:4501");

  // Defaults: loopback, ephemeral listen, connect to the bound address.
  auto plain = parse({"--fabric-nodes", "2"});
  ASSERT_TRUE(plain.options.has_value());
  EXPECT_EQ(plain.options->fabric_transport, "loopback");
  EXPECT_EQ(plain.options->fabric_listen, "127.0.0.1:0");
  EXPECT_TRUE(plain.options->fabric_connect.empty());

  EXPECT_FALSE(parse({"--fabric-nodes", "2", "--fabric-transport", "udp"})
                   .options.has_value());
  // Transport flags without the fabric make no sense.
  EXPECT_FALSE(parse({"--fabric-transport", "tcp"}).options.has_value());
  EXPECT_FALSE(
      parse({"--fabric-listen", "127.0.0.1:1"}).options.has_value());
  EXPECT_FALSE(
      parse({"--fabric-connect", "127.0.0.1:1"}).options.has_value());
  // Loopback message faults are the other substrate's tool.
  EXPECT_FALSE(parse({"--fabric-nodes", "2", "--fabric-transport", "tcp",
                      "--fabric-duplicate", "0.5"})
                   .options.has_value());
  // Seeded kills stay valid over tcp (the crash is in the worker).
  EXPECT_TRUE(parse({"--fabric-nodes", "2", "--fabric-transport", "tcp",
                     "--kill-node-at", "1:500"})
                  .options.has_value());
}

TEST(Cli, RetriesFlag) {
  auto result = parse({"--retries", "3"});
  ASSERT_TRUE(result.options.has_value());
  EXPECT_EQ(result.options->retries, 3);
  EXPECT_FALSE(parse({"--retries", "-1"}).options.has_value());
  EXPECT_FALSE(parse({"--retries", "99"}).options.has_value());
}

TEST(Cli, HelpAndListFlags) {
  EXPECT_TRUE(parse({"--help"}).options->help);
  EXPECT_TRUE(parse({"-h"}).options->help);
  EXPECT_TRUE(parse({"--list-probe-modules"}).options->list_probe_modules);
  EXPECT_FALSE(cli_usage().empty());
  EXPECT_FALSE(probe_module_names().empty());
}

struct BadArgs {
  std::initializer_list<const char*> args;
  const char* why;
};

class CliRejects : public ::testing::TestWithParam<int> {};

TEST(Cli, RejectsBadInput) {
  const std::vector<std::vector<const char*>> cases = {
      {"--target"},                        // missing value
      {"--target", "garbage"},             // unparseable spec
      {"--target", "2400::/64-32"},        // inverted window
      {"--rate", "-5"},                    // negative rate
      {"--rate", "abc"},                   // non-numeric
      {"--seed", "x"},                     //
      {"--shards", "0"},                   //
      {"--shard", "3", "--shards", "2"},   // shard >= shards
      {"--window-bits", "30"},             // out of range
      {"--world", "mars"},                 //
      {"--output-format", "xml"},          //
      {"--probe-module", "nope"},          //
      {"--probe-module", "tcp_syn:0"},     // bad port
      {"--probe-module", "tcp_syn:99999"}, //
      {"--probe-module", "icmp_echo:0"},   // bad hop limit
      {"--frobnicate"},                    // unknown flag
  };
  for (const auto& args : cases) {
    std::vector<const char*> argv{"xmap_sim"};
    argv.insert(argv.end(), args.begin(), args.end());
    auto result = parse_cli(static_cast<int>(argv.size()), argv.data());
    EXPECT_FALSE(result.options.has_value())
        << "accepted: " << args[0] << " ...";
    EXPECT_FALSE(result.error.empty());
  }
}

TEST(Cli, AcceptsAllDocumentedModules) {
  for (const char* module :
       {"icmp_echo", "icmp_echo:32", "tcp_syn:80", "udp_dns", "udp_ntp",
        "traceroute"}) {
    auto result = parse({"--probe-module", module});
    EXPECT_TRUE(result.options.has_value()) << module << ": " << result.error;
  }
}

// ---------------------------------------------------------------------------
// Output writers
// ---------------------------------------------------------------------------

ProbeResponse sample_response() {
  ProbeResponse r;
  r.kind = ResponseKind::kDestUnreachable;
  r.responder = *net::Ipv6Address::parse("2400::1");
  r.probe_dst = *net::Ipv6Address::parse("2400:0:0:5::abcd");
  r.icmp_code = 3;
  r.hop_limit = 61;
  return r;
}

TEST(OutputWriters, CsvFormat) {
  std::ostringstream out;
  auto writer = make_writer("csv", out);
  ASSERT_NE(writer, nullptr);
  writer->begin();
  writer->record(sample_response(), 1500 * sim::kMicrosecond);
  writer->end();
  EXPECT_EQ(out.str(),
            "saddr,probe_dst,classification,icmp_code,hlim,timestamp_us\n"
            "2400::1,2400:0:0:5::abcd,dest-unreach,3,61,1500\n");
}

TEST(OutputWriters, JsonlFormat) {
  std::ostringstream out;
  auto writer = make_writer("jsonl", out);
  ASSERT_NE(writer, nullptr);
  writer->begin();
  writer->record(sample_response(), 2 * sim::kSecond);
  writer->end();
  EXPECT_EQ(out.str(),
            "{\"saddr\":\"2400::1\",\"probe_dst\":\"2400:0:0:5::abcd\","
            "\"classification\":\"dest-unreach\",\"icmp_code\":3,"
            "\"hlim\":61,\"timestamp_us\":2000000}\n");
}

TEST(Cli, ResilienceFlags) {
  auto result = parse({"--retries", "2", "--retry-spacing-ms", "250",
                       "--cooldown-secs", "4.5", "--adaptive-rate"});
  ASSERT_TRUE(result.options.has_value()) << result.error;
  const auto& opts = *result.options;
  EXPECT_EQ(opts.retries, 2);
  EXPECT_DOUBLE_EQ(opts.retry_spacing_ms, 250);
  EXPECT_DOUBLE_EQ(opts.cooldown_secs, 4.5);
  EXPECT_TRUE(opts.adaptive_rate);
  // Defaults when absent.
  auto plain = parse({});
  EXPECT_DOUBLE_EQ(plain.options->retry_spacing_ms, 100);
  EXPECT_DOUBLE_EQ(plain.options->cooldown_secs, 8);
  EXPECT_FALSE(plain.options->adaptive_rate);
  EXPECT_FALSE(plain.options->faults_given);
  EXPECT_FALSE(plain.options->faults.any());
}

TEST(Cli, FaultInjectionFlags) {
  auto result = parse({"--fault-seed", "99", "--access-loss", "0.2",
                       "--core-loss", "0.01", "--burst", "3/80/0.9",
                       "--duplicate", "0.05", "--corrupt", "0.02",
                       "--jitter-ms", "2.5", "--flap", "2000/200/0.3",
                       "--silent", "0.1/500/1500", "--device-icmp-rate",
                       "100", "--router-icmp-rate", "1000"});
  ASSERT_TRUE(result.options.has_value()) << result.error;
  const auto& opts = *result.options;
  EXPECT_TRUE(opts.faults_given);
  EXPECT_EQ(opts.faults.seed, 99u);
  EXPECT_DOUBLE_EQ(opts.faults.access.loss, 0.2);
  EXPECT_DOUBLE_EQ(opts.faults.core.loss, 0.01);
  EXPECT_DOUBLE_EQ(opts.faults.access.burst.rate_per_sec, 3);
  EXPECT_DOUBLE_EQ(opts.faults.access.burst.mean_ms, 80);
  EXPECT_DOUBLE_EQ(opts.faults.access.burst.loss, 0.9);
  EXPECT_DOUBLE_EQ(opts.faults.access.duplicate, 0.05);
  EXPECT_DOUBLE_EQ(opts.faults.access.corrupt, 0.02);
  EXPECT_DOUBLE_EQ(opts.faults.access.jitter_ms, 2.5);
  EXPECT_DOUBLE_EQ(opts.faults.access.flap.period_ms, 2000);
  EXPECT_DOUBLE_EQ(opts.faults.access.flap.down_ms, 200);
  EXPECT_DOUBLE_EQ(opts.faults.access.flap.fraction, 0.3);
  EXPECT_DOUBLE_EQ(opts.faults.silent.fraction, 0.1);
  EXPECT_DOUBLE_EQ(opts.faults.silent.start_ms, 500);
  EXPECT_DOUBLE_EQ(opts.faults.silent.duration_ms, 1500);
  EXPECT_EQ(opts.device_icmp_rate, 100u);
  EXPECT_EQ(opts.router_icmp_rate, 1000u);
  EXPECT_TRUE(opts.faults.any());
}

TEST(Cli, SlashedSpecsAcceptOptionalFields) {
  auto burst = parse({"--burst", "2"});
  ASSERT_TRUE(burst.options.has_value()) << burst.error;
  EXPECT_DOUBLE_EQ(burst.options->faults.access.burst.rate_per_sec, 2);
  EXPECT_DOUBLE_EQ(burst.options->faults.access.burst.mean_ms, 50);
  EXPECT_DOUBLE_EQ(burst.options->faults.access.burst.loss, 1);

  auto flap = parse({"--flap", "1000/100"});
  ASSERT_TRUE(flap.options.has_value()) << flap.error;
  EXPECT_DOUBLE_EQ(flap.options->faults.access.flap.fraction, 1);

  auto silent = parse({"--silent", "0.25"});
  ASSERT_TRUE(silent.options.has_value()) << silent.error;
  EXPECT_DOUBLE_EQ(silent.options->faults.silent.fraction, 0.25);
  EXPECT_DOUBLE_EQ(silent.options->faults.silent.duration_ms, 0);
}

TEST(Cli, RejectsBadFaultFlags) {
  EXPECT_FALSE(parse({"--access-loss", "1.5"}).options.has_value());
  EXPECT_FALSE(parse({"--corrupt", "-0.1"}).options.has_value());
  EXPECT_FALSE(parse({"--burst", "abc"}).options.has_value());
  EXPECT_FALSE(parse({"--burst", "1/2/3/4"}).options.has_value());
  EXPECT_FALSE(parse({"--flap", "100"}).options.has_value());
  EXPECT_FALSE(parse({"--flap", "100/200"}).options.has_value());  // down>per
  EXPECT_FALSE(parse({"--silent", "2"}).options.has_value());
  EXPECT_FALSE(parse({"--cooldown-secs", "-1"}).options.has_value());
  EXPECT_FALSE(parse({"--retry-spacing-ms", "x"}).options.has_value());
  EXPECT_FALSE(parse({"--device-icmp-rate", "-5"}).options.has_value());
}

TEST(Cli, UsageMentionsResilienceAndFaultFlags) {
  const std::string usage = cli_usage();
  for (const char* flag :
       {"--retry-spacing-ms", "--cooldown-secs", "--adaptive-rate",
        "--fault-seed", "--access-loss", "--burst", "--flap", "--silent",
        "--device-icmp-rate"}) {
    EXPECT_NE(usage.find(flag), std::string::npos) << flag;
  }
}

TEST(Cli, ObservabilityFlags) {
  auto result = parse({"--trace-file", "/tmp/trace.jsonl", "--trace-level",
                       "packet", "--trace-format", "chrome", "--metrics-file",
                       "/tmp/metrics.prom", "--profile"});
  ASSERT_TRUE(result.options.has_value()) << result.error;
  const auto& opts = *result.options;
  EXPECT_EQ(opts.trace_file, "/tmp/trace.jsonl");
  ASSERT_TRUE(opts.trace_level.has_value());
  EXPECT_EQ(*opts.trace_level, obs::TraceLevel::kPacket);
  EXPECT_EQ(opts.trace_format, "chrome");
  EXPECT_EQ(opts.metrics_file, "/tmp/metrics.prom");
  EXPECT_TRUE(opts.profile);

  // Defaults: everything off, level unset (so a spec file can supply it).
  auto plain = parse({});
  ASSERT_TRUE(plain.options.has_value());
  EXPECT_TRUE(plain.options->trace_file.empty());
  EXPECT_FALSE(plain.options->trace_level.has_value());
  EXPECT_TRUE(plain.options->metrics_file.empty());
  EXPECT_FALSE(plain.options->profile);
}

TEST(Cli, RejectsBadObservabilityFlags) {
  EXPECT_FALSE(parse({"--trace-level", "verbose"}).options.has_value());
  EXPECT_FALSE(parse({"--trace-format", "xml"}).options.has_value());
  EXPECT_FALSE(parse({"--trace-file"}).options.has_value());
  // The traceroute runner bypasses the scanner, so obs flags are rejected.
  EXPECT_FALSE(parse({"--probe-module", "traceroute", "--metrics-file", "m"})
                   .options.has_value());
  EXPECT_FALSE(parse({"--probe-module", "traceroute", "--profile"})
                   .options.has_value());
}

TEST(Cli, UsageMentionsObservabilityFlags) {
  const std::string usage = cli_usage();
  for (const char* flag : {"--trace-level", "--trace-file", "--trace-format",
                           "--metrics-file", "--profile"}) {
    EXPECT_NE(usage.find(flag), std::string::npos) << flag;
  }
}

TEST(OutputWriters, JsonAliasAndUnknown) {
  std::ostringstream out;
  EXPECT_NE(make_writer("json", out), nullptr);
  EXPECT_EQ(make_writer("xml", out), nullptr);
}

TEST(OutputWriters, MultipleRecords) {
  std::ostringstream out;
  auto writer = make_writer("csv", out);
  writer->begin();
  for (int i = 0; i < 3; ++i) writer->record(sample_response(), 0);
  // Header + 3 rows.
  int lines = 0;
  for (char c : out.str()) lines += c == '\n';
  EXPECT_EQ(lines, 4);
}

}  // namespace
}  // namespace xmap::scan
