#include "xmap/traceroute.h"

#include <gtest/gtest.h>

#include "topology/devices.h"

namespace xmap::scan {
namespace {

using net::Ipv6Address;
using net::Ipv6Prefix;

const Ipv6Address kSource = *Ipv6Address::parse("2001:500::1");

TEST(TracerouteProbe, PayloadCarriesHopLimit) {
  TracerouteProbe module;
  const auto target = *Ipv6Address::parse("2400::1");
  auto probe = module.make_hop_probe(kSource, target, 7, 42);
  pkt::Ipv6View ip{probe};
  EXPECT_EQ(ip.hop_limit(), 7);
  pkt::Icmpv6View icmp{ip.payload()};
  ASSERT_GE(icmp.echo_payload().size(), 2u);
  EXPECT_EQ(icmp.echo_payload()[0], 7);
}

TEST(TracerouteProbe, RecoversOriginatingHopLimitFromTimeExceeded) {
  TracerouteProbe module;
  const auto target = *Ipv6Address::parse("2400::1");
  const auto router = *Ipv6Address::parse("2400:ffff::1");
  auto probe = module.make_hop_probe(kSource, target, 5, 42);
  // Simulate in-flight decrement to 1 before expiry.
  pkt::set_hop_limit(probe, 1);
  auto te = pkt::build_icmpv6_error(router, pkt::Icmpv6Type::kTimeExceeded, 0,
                                    probe);
  auto result = module.classify(te, kSource, 42);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->kind, ResponseKind::kTimeExceeded);
  EXPECT_EQ(result->hop_limit, 5);  // the originating value, not the wire one
  EXPECT_EQ(result->responder, router);
}

TEST(TracerouteProbe, RejectsCorruptedCheckByte) {
  TracerouteProbe module;
  const auto target = *Ipv6Address::parse("2400::1");
  const auto router = *Ipv6Address::parse("2400:ffff::1");
  // Forge a probe claiming a different hop limit than the check byte.
  auto probe = module.make_hop_probe(kSource, target, 5, 42);
  pkt::Ipv6View ip{probe};
  pkt::Icmpv6View icmp{ip.payload()};
  // Rebuild the probe with a tampered payload byte.
  std::vector<std::uint8_t> payload{9, icmp.echo_payload()[1]};
  auto forged = pkt::build_echo_request(kSource, target, 9, icmp.ident(),
                                        icmp.seq(), payload);
  auto te = pkt::build_icmpv6_error(router, pkt::Icmpv6Type::kTimeExceeded, 0,
                                    forged);
  EXPECT_FALSE(module.classify(te, kSource, 42).has_value());
}

TEST(TracerouteProbe, WrongSeedRejected) {
  TracerouteProbe module;
  const auto target = *Ipv6Address::parse("2400::1");
  auto probe = module.make_hop_probe(kSource, target, 3, 42);
  auto reply = pkt::build_echo_reply(probe);
  EXPECT_TRUE(module.classify(reply, kSource, 42).has_value());
  EXPECT_FALSE(module.classify(reply, kSource, 43).has_value());
}

// Build a 3-router chain ending in a CPE and traceroute through it.
struct ChainWorld {
  sim::Network net{71};
  TracerouteRunner* runner;
  std::vector<topo::Router*> routers;
  topo::CpeRouter* cpe;

  ChainWorld() {
    TracerouteRunner::Config cfg;
    cfg.source = kSource;
    cfg.max_hops = 10;
    runner = net.make_node<TracerouteRunner>(cfg);

    sim::Node* upstream = runner;
    for (int i = 0; i < 3; ++i) {
      topo::Router::Config rcfg;
      rcfg.address = *Ipv6Address::parse(
          (std::string{"2400::"} + std::to_string(i + 1)).c_str());
      auto* router = net.make_node<topo::Router>(rcfg);
      const auto att = net.connect(upstream->id(), router->id());
      if (i == 0) runner->set_iface(att.iface_a);
      router->table().add_default(att.iface_b);  // back towards the source
      routers.push_back(router);
      upstream = router;
    }

    topo::CpeRouter::Config ccfg;
    ccfg.wan_prefix = *Ipv6Prefix::parse("2400:1:0:ffff::/64");
    ccfg.wan_address = *Ipv6Address::parse("2400:1:0:ffff::9");
    ccfg.lan_prefix = *Ipv6Prefix::parse("2400:1:0:10::/60");
    ccfg.subnet_prefix = *Ipv6Prefix::parse("2400:1:0:15::/64");
    cpe = net.make_node<topo::CpeRouter>(ccfg);
    const auto last = net.connect(routers[2]->id(), cpe->id());

    // Downstream routes through the chain.
    for (int i = 0; i < 3; ++i) {
      routers[i]->table().add_forward(*Ipv6Prefix::parse("2400:1::/32"),
                                      i < 2 ? 1 : last.iface_a);
    }
  }
};

TEST(TracerouteRunner, WalksTheFullPath) {
  ChainWorld world;
  const auto target = *Ipv6Address::parse("2400:1:0:ffff::9");  // CPE itself
  world.runner->trace(target);
  world.net.run();
  auto results = world.runner->results();
  ASSERT_EQ(results.size(), 1u);
  const auto& r = results[0];
  EXPECT_TRUE(r.reached);
  ASSERT_GE(r.hops.size(), 4u);
  EXPECT_EQ(r.hops[0].router, world.routers[0]->address());
  EXPECT_EQ(r.hops[0].distance, 1);
  EXPECT_EQ(r.hops[1].router, world.routers[1]->address());
  EXPECT_EQ(r.hops[2].router, world.routers[2]->address());
  // The final hop answers with an echo reply from the target.
  EXPECT_EQ(r.hops[3].router, target);
  EXPECT_EQ(r.hops[3].kind, ResponseKind::kEchoReply);
}

TEST(TracerouteRunner, LastHopOfNxAddressIsThePeriphery) {
  // Rye & Beverly's PAM'20 technique: traceroute to a random address and
  // the last responding hop is the periphery.
  ChainWorld world;
  const auto target = *Ipv6Address::parse("2400:1:0:15::dead");  // NX in subnet
  world.runner->trace(target);
  world.net.run();
  auto results = world.runner->results();
  ASSERT_EQ(results.size(), 1u);
  const auto& r = results[0];
  ASSERT_GE(r.hops.size(), 4u);
  const TraceHop& last = r.hops.back();
  EXPECT_EQ(last.router, world.cpe->wan_address());
  EXPECT_EQ(last.kind, ResponseKind::kDestUnreachable);
  EXPECT_TRUE(r.reached);
}

TEST(TracerouteRunner, UnroutedTargetGivesPartialPath) {
  ChainWorld world;
  const auto target = *Ipv6Address::parse("9999::1");  // no route anywhere
  world.runner->trace(target);
  world.net.run();
  auto results = world.runner->results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].reached);
  // Hop 1 still answers Time Exceeded... actually the first router has no
  // route and blackholes, so only probes expiring *at* it respond.
  ASSERT_GE(results[0].hops.size(), 1u);
  EXPECT_EQ(results[0].hops[0].router, world.routers[0]->address());
  EXPECT_EQ(results[0].hops[0].kind, ResponseKind::kTimeExceeded);
}

TEST(TracerouteRunner, MultipleTargetsInterleaved) {
  ChainWorld world;
  const auto t1 = *Ipv6Address::parse("2400:1:0:ffff::9");
  const auto t2 = *Ipv6Address::parse("2400:1:0:15::dead");
  world.runner->trace(t1);
  world.runner->trace(t2);
  world.net.run();
  auto results = world.runner->results();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].reached);
  EXPECT_TRUE(results[1].reached);
  EXPECT_EQ(results[0].target, t1);
  EXPECT_EQ(results[1].target, t2);
}

}  // namespace
}  // namespace xmap::scan
