// Unit tests for the checkpoint state format: exact serialize/parse
// round-trips (records, cursors, trace events, metrics with histograms),
// field-precise fingerprint diffs, version/truncation rejection, and the
// atomic file writer.
#include "recover/state.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "recover/checkpoint.h"

namespace xmap::recover {
namespace {

Fingerprint sample_fingerprint() {
  Fingerprint fp;
  fp.seed = 7;
  fp.world = "bgp:4";
  fp.window_bits = 8;
  fp.probe_module = "tcp_syn:443";
  fp.rate_pps = 12345.678;
  fp.shard = 1;
  fp.shards = 3;
  fp.threads = 4;
  fp.retries = 2;
  fp.retry_spacing_ms = 33.25;
  fp.cooldown_secs = 1.5;
  fp.max_probes = 999;
  fp.adaptive_rate = false;
  fp.output_format = "jsonl";
  fp.blocklist_hash = 0xdeadbeefcafef00dULL;
  fp.fault_plan_hash = 0x123456789abcdef0ULL;
  fp.targets = {"2001:db8::/16-24", "2001:db8:1::/16-24"};
  return fp;
}

CheckpointState sample_state() {
  CheckpointState state;
  state.quiescent = true;
  state.signal = 15;
  state.fingerprint = sample_fingerprint();
  state.stats.targets_generated = 100;
  state.stats.blocked = 3;
  state.stats.sent = 97;
  state.stats.received = 60;
  state.stats.validated = 55;
  state.stats.discarded = 5;
  state.stats.retransmits = 10;
  state.stats.duplicates = 2;
  state.stats.corrupted = 1;
  state.stats.late = 4;
  state.stats.rate_adjustments = 0;
  state.stats.first_send = 1000;
  state.stats.last_send = 999000;

  state.cursors.push_back(WorkerCursor{{12, 34}, 40});
  state.cursors.push_back(WorkerCursor{{13, 33}, 41});

  CheckpointRecord record;
  record.response.kind = scan::ResponseKind::kEchoReply;
  record.response.responder = *net::Ipv6Address::parse("2001:db8::1");
  record.response.probe_dst = *net::Ipv6Address::parse("2001:db8::2");
  record.response.icmp_code = 3;
  record.response.hop_limit = 57;
  record.when = 123456789;
  record.worker = 1;
  record.raw_slot = 77;
  state.records.push_back(record);
  record.response.kind = scan::ResponseKind::kDestUnreachable;
  record.worker = 0;
  record.raw_slot = 12;
  state.records.push_back(record);

  state.has_obs = true;
  obs::TraceEvent event;
  event.ts = 42;
  event.dur = 7;
  event.name = "probe_sent";
  event.cat = "scan";
  event.addr1_key = "target";
  event.addr1 = *net::Ipv6Address::parse("2001:db8::9");
  event.str_key = "note";
  event.str_val = "with space";  // exercises percent-escaping
  event.i0.key = "slot";
  event.i0.value = 99;
  state.trace.push_back(event);

  obs::MetricsSnapshot::Entry counter;
  counter.name = "probes_sent_total";
  counter.labels = {{"module", "tcp syn"}};
  counter.kind = obs::MetricKind::kCounter;
  counter.value = 97;
  counter.help = "Probes handed to the channel";
  state.metrics.entries.push_back(counter);

  obs::MetricsSnapshot::Entry histogram;
  histogram.name = "rtt_us";
  histogram.kind = obs::MetricKind::kHistogram;
  histogram.histogram =
      obs::Histogram::from_parts({10, 100, 1000}, {1, 2, 3, 4}, 4321, 10);
  state.metrics.entries.push_back(histogram);
  return state;
}

TEST(CheckpointState, RoundTripsExactly) {
  const CheckpointState state = sample_state();
  const std::string text = serialize_checkpoint(state);
  auto parsed = parse_checkpoint(text);
  ASSERT_TRUE(parsed.state.has_value()) << parsed.error;
  const CheckpointState& back = *parsed.state;

  EXPECT_EQ(back.version, kCheckpointVersion);
  EXPECT_EQ(back.quiescent, state.quiescent);
  EXPECT_EQ(back.signal, state.signal);
  EXPECT_EQ(back.fingerprint, state.fingerprint);
  EXPECT_EQ(back.stats, state.stats);

  ASSERT_EQ(back.cursors.size(), 2u);
  EXPECT_EQ(back.cursors[0].spec_steps, state.cursors[0].spec_steps);
  EXPECT_EQ(back.cursors[0].frontier_slot, 40u);
  EXPECT_EQ(back.cursors[1].spec_steps, state.cursors[1].spec_steps);

  ASSERT_EQ(back.records.size(), 2u);
  EXPECT_EQ(back.records[0].response.kind, scan::ResponseKind::kEchoReply);
  EXPECT_EQ(back.records[0].response.responder.to_string(), "2001:db8::1");
  EXPECT_EQ(back.records[0].response.probe_dst.to_string(), "2001:db8::2");
  EXPECT_EQ(back.records[0].response.icmp_code, 3);
  EXPECT_EQ(back.records[0].response.hop_limit, 57);
  EXPECT_EQ(back.records[0].when, 123456789u);
  EXPECT_EQ(back.records[0].worker, 1);
  EXPECT_EQ(back.records[0].raw_slot, 77u);
  EXPECT_EQ(back.records[1].worker, 0);

  ASSERT_TRUE(back.has_obs);
  ASSERT_EQ(back.trace.size(), 1u);
  EXPECT_EQ(back.trace[0].ts, 42u);
  EXPECT_EQ(back.trace[0].dur, 7u);
  EXPECT_STREQ(back.trace[0].name, "probe_sent");
  EXPECT_STREQ(back.trace[0].cat, "scan");
  EXPECT_STREQ(back.trace[0].addr1_key, "target");
  EXPECT_EQ(back.trace[0].addr1.to_string(), "2001:db8::9");
  EXPECT_EQ(back.trace[0].addr2_key, nullptr);
  EXPECT_STREQ(back.trace[0].str_val, "with space");
  EXPECT_STREQ(back.trace[0].i0.key, "slot");
  EXPECT_EQ(back.trace[0].i0.value, 99u);
  EXPECT_EQ(back.trace[0].i1.key, nullptr);

  ASSERT_EQ(back.metrics.entries.size(), 2u);
  EXPECT_EQ(back.metrics.entries[0].name, "probes_sent_total");
  ASSERT_EQ(back.metrics.entries[0].labels.size(), 1u);
  EXPECT_EQ(back.metrics.entries[0].labels[0].second, "tcp syn");
  EXPECT_EQ(back.metrics.entries[0].value, 97u);
  EXPECT_EQ(back.metrics.entries[0].help, "Probes handed to the channel");
  const auto& h = back.metrics.entries[1];
  EXPECT_EQ(h.kind, obs::MetricKind::kHistogram);
  ASSERT_TRUE(h.histogram.has_value());
  EXPECT_EQ(h.histogram->bounds(), (std::vector<std::uint64_t>{10, 100, 1000}));
  EXPECT_EQ(h.histogram->counts(), (std::vector<std::uint64_t>{1, 2, 3, 4}));
  EXPECT_EQ(h.histogram->sum(), 4321u);
  EXPECT_EQ(h.histogram->count(), 10u);

  // Serialization is a fixed point: parse(serialize(x)) serializes back to
  // the same bytes.
  EXPECT_EQ(serialize_checkpoint(back), text);
}

TEST(CheckpointState, RoundTripsWithoutObs) {
  CheckpointState state = sample_state();
  state.quiescent = false;
  state.signal = 0;
  state.has_obs = false;
  state.trace.clear();
  state.metrics.entries.clear();
  auto parsed = parse_checkpoint(serialize_checkpoint(state));
  ASSERT_TRUE(parsed.state.has_value()) << parsed.error;
  EXPECT_FALSE(parsed.state->quiescent);
  EXPECT_FALSE(parsed.state->has_obs);
  EXPECT_TRUE(parsed.state->trace.empty());
  EXPECT_TRUE(parsed.state->metrics.entries.empty());
}

TEST(CheckpointState, ExactDoubleRoundTrip) {
  CheckpointState state = sample_state();
  state.fingerprint.rate_pps = 0.1;  // not exactly representable in decimal
  state.fingerprint.retry_spacing_ms = 1.0 / 3.0;
  auto parsed = parse_checkpoint(serialize_checkpoint(state));
  ASSERT_TRUE(parsed.state.has_value()) << parsed.error;
  EXPECT_EQ(parsed.state->fingerprint.rate_pps, 0.1);
  EXPECT_EQ(parsed.state->fingerprint.retry_spacing_ms, 1.0 / 3.0);
}

TEST(CheckpointState, RejectsUnknownVersion) {
  std::string text = serialize_checkpoint(sample_state());
  text.replace(0, text.find('\n'), "xmap-checkpoint v99");
  auto parsed = parse_checkpoint(text);
  ASSERT_FALSE(parsed.state.has_value());
  EXPECT_NE(parsed.error.find("v99"), std::string::npos) << parsed.error;
}

TEST(CheckpointState, RejectsTruncation) {
  const std::string text = serialize_checkpoint(sample_state());
  // Cut anywhere before the trailer: the parser must refuse, never return
  // a silently partial state.
  for (const std::size_t cut : {text.size() / 4, text.size() / 2,
                                text.size() - 5}) {
    auto parsed = parse_checkpoint(text.substr(0, cut));
    EXPECT_FALSE(parsed.state.has_value()) << "cut at " << cut;
    EXPECT_FALSE(parsed.error.empty());
  }
}

TEST(CheckpointState, RejectsGarbageWithLineDiagnostic) {
  std::string text = serialize_checkpoint(sample_state());
  const auto pos = text.find("stats ");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 6, "statz ");
  auto parsed = parse_checkpoint(text);
  ASSERT_FALSE(parsed.state.has_value());
  EXPECT_NE(parsed.error.find("checkpoint line"), std::string::npos)
      << parsed.error;
}

TEST(Fingerprint, DiffNamesEveryMismatchedField) {
  const Fingerprint a = sample_fingerprint();
  EXPECT_EQ(a.diff(a), "");

  Fingerprint b = a;
  b.seed = 9;
  b.threads = 2;
  b.blocklist_hash = 0;
  const std::string diff = a.diff(b);
  EXPECT_NE(diff.find("seed: checkpoint 7, run 9"), std::string::npos)
      << diff;
  EXPECT_NE(diff.find("threads: checkpoint 4, run 2"), std::string::npos)
      << diff;
  EXPECT_NE(diff.find("blocklist"), std::string::npos) << diff;

  Fingerprint c = a;
  c.targets = {"2001:db8::/16-24"};
  EXPECT_NE(a.diff(c).find("targets"), std::string::npos);
}

TEST(Fingerprint, BlocklistHashTracksContents) {
  scan::Blocklist a;
  scan::Blocklist b;
  EXPECT_EQ(blocklist_fingerprint(a), blocklist_fingerprint(b));
  a.block(*net::Ipv6Prefix::parse("ff00::/8"));
  EXPECT_NE(blocklist_fingerprint(a), blocklist_fingerprint(b));
  b.block(*net::Ipv6Prefix::parse("ff00::/8"));
  EXPECT_EQ(blocklist_fingerprint(a), blocklist_fingerprint(b));
  b.allow(*net::Ipv6Prefix::parse("ff00::/8"));
  EXPECT_NE(blocklist_fingerprint(a), blocklist_fingerprint(b));
}

TEST(Fingerprint, FaultPlanHashTracksEveryDial) {
  sim::FaultPlan a;
  sim::FaultPlan b;
  EXPECT_EQ(fault_plan_fingerprint(a), fault_plan_fingerprint(b));
  b.access.loss = 0.1;
  EXPECT_NE(fault_plan_fingerprint(a), fault_plan_fingerprint(b));
  b = a;
  b.silent.fraction = 0.2;
  EXPECT_NE(fault_plan_fingerprint(a), fault_plan_fingerprint(b));
  b = a;
  b.seed = 99;
  EXPECT_NE(fault_plan_fingerprint(a), fault_plan_fingerprint(b));
}

TEST(AtomicWrite, WritesAndReplacesWholeFiles) {
  const std::string path = ::testing::TempDir() + "atomic_write_test.txt";
  std::string error;
  ASSERT_TRUE(write_file_atomic(path, "first\n", &error)) << error;
  {
    std::ifstream in{path};
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), "first\n");
  }
  // No temp file left behind.
  EXPECT_FALSE(static_cast<bool>(std::ifstream{path + ".tmp"}));
  ASSERT_TRUE(write_file_atomic(path, "second\n", &error)) << error;
  {
    std::ifstream in{path};
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), "second\n");
  }
  std::remove(path.c_str());
}

TEST(AtomicWrite, FailsCleanlyOnBadPath) {
  std::string error;
  EXPECT_FALSE(write_file_atomic("/nonexistent-dir/x/y/state", "data",
                                 &error));
  EXPECT_FALSE(error.empty());
}

TEST(CheckpointIo, WriteAndLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "checkpoint_io_test.state";
  const CheckpointState state = sample_state();
  std::string error;
  ASSERT_TRUE(write_checkpoint(path, state, &error)) << error;
  auto loaded = load_checkpoint(path);
  ASSERT_TRUE(loaded.state.has_value()) << loaded.error;
  EXPECT_EQ(serialize_checkpoint(*loaded.state),
            serialize_checkpoint(state));
  std::remove(path.c_str());

  auto missing = load_checkpoint(path + ".missing");
  EXPECT_FALSE(missing.state.has_value());
  EXPECT_FALSE(missing.error.empty());
}

}  // namespace
}  // namespace xmap::recover
