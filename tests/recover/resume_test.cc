// Integration tests for checkpoint/resume and graceful shutdown: the hard
// guarantee is that an interrupted-then-resumed scan produces a record
// stream byte-identical to an uninterrupted run, at every thread count,
// pristine or fault-injected, whether the cut came from a shutdown drain
// or a mid-flight periodic snapshot.
#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "engine/executor.h"
#include "recover/state.h"
#include "topology/paper_profiles.h"
#include "xmap/cyclic_group.h"
#include "xmap/scanner.h"

namespace xmap::engine {
namespace {

const net::Ipv6Address kScannerAddr = *net::Ipv6Address::parse("2001:500::1");

const scan::IcmpEchoProbe& shared_module() {
  static const scan::IcmpEchoProbe module{64};
  return module;
}

EngineConfig make_config(int threads, bool faults = false) {
  EngineConfig cfg;
  cfg.world_specs = topo::paper::isp_specs();
  cfg.vendors = topo::paper::vendor_catalog();
  cfg.build.window_bits = 8;
  cfg.build.seed = 42;
  cfg.module = &shared_module();
  cfg.scan.source = kScannerAddr;
  cfg.scan.seed = 7;
  cfg.scan.probes_per_sec = 1e6;
  cfg.threads = threads;
  if (faults) {
    cfg.faults.access.loss = 0.15;
    cfg.faults.access.duplicate = 0.05;
    cfg.faults.access.jitter_ms = 1.0;
    cfg.faults.silent.fraction = 0.05;
    cfg.scan.retries = 1;
  }
  return cfg;
}

// The response stream without worker ids (worker assignment is a sharding
// artifact; the byte-identity guarantee is over the serialized output,
// which carries only response content and sim time).
std::string stream_fingerprint(const EngineResult& result) {
  std::ostringstream out;
  for (const auto& r : result.records) {
    out << r.response.responder.to_string() << '|'
        << r.response.probe_dst.to_string() << '|'
        << static_cast<int>(r.response.kind) << '|' << r.when << '\n';
  }
  return out.str();
}

// Interrupt the scan at `slot`, then resume from the quiescent shutdown
// checkpoint; returns the resumed (combined) result.
EngineResult interrupt_and_resume(const EngineConfig& base,
                                  std::uint64_t slot) {
  EngineConfig cut = base;
  cut.shutdown_at_raw_slot = slot;
  auto interrupted = run_parallel_scan(cut);
  EXPECT_TRUE(interrupted.ok) << interrupted.error;
  EXPECT_TRUE(interrupted.interrupted);
  EXPECT_EQ(interrupted.cursors.size(),
            static_cast<std::size_t>(base.threads));

  recover::CheckpointState state;
  state.quiescent = true;
  state.stats = interrupted.stats;
  for (const auto& cursor : interrupted.cursors) {
    state.cursors.push_back(
        recover::WorkerCursor{cursor.spec_steps, cursor.frontier_slot});
  }
  for (const auto& r : interrupted.records) {
    state.records.push_back(
        recover::CheckpointRecord{r.response, r.when, r.worker, r.raw_slot});
  }
  // Round-trip through the text format so the test also covers what a real
  // resume reads off disk.
  auto parsed =
      recover::parse_checkpoint(recover::serialize_checkpoint(state));
  EXPECT_TRUE(parsed.state.has_value()) << parsed.error;

  EngineConfig resume = base;
  resume.resume = &*parsed.state;
  auto result = run_parallel_scan(resume);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.resumed);
  EXPECT_FALSE(result.interrupted);
  return result;
}

TEST(FastForward, MatchesStepByStepIteration) {
  const scan::CyclicGroup group{net::Uint128{1000}, 99};
  for (const std::uint64_t skip : {0ull, 1ull, 7ull, 500ull, 999ull}) {
    SCOPED_TRACE("skip=" + std::to_string(skip));
    auto stepped = group.iterate();
    for (std::uint64_t i = 0; i < skip; ++i) (void)stepped.next();
    auto jumped = group.iterate();
    jumped.fast_forward(stepped.raw_visited());
    EXPECT_EQ(jumped.raw_visited(), stepped.raw_visited());
    EXPECT_EQ(jumped.raw_remaining(), stepped.raw_remaining());
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(jumped.next(), stepped.next());
    }
  }
}

TEST(FastForward, ClampsAtEndOfWalk) {
  const scan::CyclicGroup group{net::Uint128{50}, 3};
  auto it = group.iterate();
  it.fast_forward(net::Uint128{1000000});
  EXPECT_TRUE(it.raw_remaining().is_zero());
  EXPECT_EQ(it.next(), std::nullopt);
}

// Acceptance: interrupt at a spread of permutation slots, resume, and
// compare against the uninterrupted golden — at 1, 2, 4 and 8 workers.
TEST(Resume, ByteIdenticalAfterInterruptAtAnySlot) {
  for (int threads : {1, 2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const EngineConfig base = make_config(threads);
    auto golden = run_parallel_scan(base);
    ASSERT_TRUE(golden.ok) << golden.error;
    const std::string expect = stream_fingerprint(golden);
    ASSERT_FALSE(expect.empty());

    // A pseudo-random spread of cut points across the permutation,
    // including the degenerate near-zero cut.
    for (const std::uint64_t slot : {2ull, 97ull, 731ull, 1900ull}) {
      SCOPED_TRACE("slot=" + std::to_string(slot));
      auto resumed = interrupt_and_resume(base, slot);
      EXPECT_EQ(stream_fingerprint(resumed), expect);
      EXPECT_EQ(resumed.stats, golden.stats);
    }
  }
}

// Acceptance: the same property holds on a fault-injected world — loss,
// duplication, jitter, silent devices and retries all crossing the cut.
TEST(Resume, ByteIdenticalUnderFaultInjection) {
  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const EngineConfig base = make_config(threads, /*faults=*/true);
    auto golden = run_parallel_scan(base);
    ASSERT_TRUE(golden.ok) << golden.error;
    EXPECT_GT(golden.stats.retransmits, 0u);
    const std::string expect = stream_fingerprint(golden);

    for (const std::uint64_t slot : {151ull, 1207ull}) {
      SCOPED_TRACE("slot=" + std::to_string(slot));
      auto resumed = interrupt_and_resume(base, slot);
      EXPECT_EQ(stream_fingerprint(resumed), expect);
      EXPECT_EQ(resumed.stats, golden.stats);
    }
  }
}

// Chained interruption: interrupt, resume, interrupt the resumed run
// again, resume again — cursors and carried records compose.
TEST(Resume, SurvivesChainedInterrupts) {
  const EngineConfig base = make_config(2);
  auto golden = run_parallel_scan(base);
  ASSERT_TRUE(golden.ok) << golden.error;

  EngineConfig first_cut = base;
  first_cut.shutdown_at_raw_slot = 100;
  auto first = run_parallel_scan(first_cut);
  ASSERT_TRUE(first.ok && first.interrupted);

  recover::CheckpointState state1;
  state1.quiescent = true;
  state1.stats = first.stats;
  for (const auto& c : first.cursors) {
    state1.cursors.push_back(
        recover::WorkerCursor{c.spec_steps, c.frontier_slot});
  }
  for (const auto& r : first.records) {
    state1.records.push_back(
        recover::CheckpointRecord{r.response, r.when, r.worker, r.raw_slot});
  }

  EngineConfig second_cut = base;
  second_cut.resume = &state1;
  second_cut.shutdown_at_raw_slot = 900;
  auto second = run_parallel_scan(second_cut);
  ASSERT_TRUE(second.ok && second.interrupted && second.resumed);

  recover::CheckpointState state2;
  state2.quiescent = true;
  state2.stats = second.stats;
  for (const auto& c : second.cursors) {
    state2.cursors.push_back(
        recover::WorkerCursor{c.spec_steps, c.frontier_slot});
  }
  for (const auto& r : second.records) {
    state2.records.push_back(
        recover::CheckpointRecord{r.response, r.when, r.worker, r.raw_slot});
  }

  EngineConfig final_leg = base;
  final_leg.resume = &state2;
  auto result = run_parallel_scan(final_leg);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(stream_fingerprint(result), stream_fingerprint(golden));
  EXPECT_EQ(result.stats, golden.stats);
}

// Mid-flight (non-quiescent) periodic checkpoints: resuming from the last
// snapshot a full run produced regenerates the tail exactly. Stats may
// double-count the re-scanned window (documented); records must not.
TEST(Resume, PeriodicCheckpointRegeneratesTailExactly) {
  for (int threads : {1, 2, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EngineConfig base = make_config(threads);
    auto golden = run_parallel_scan(base);
    ASSERT_TRUE(golden.ok) << golden.error;

    std::optional<recover::CheckpointState> snapshot;
    int snapshots = 0;
    EngineConfig periodic = base;
    periodic.checkpoint_interval_targets = 64;
    periodic.checkpoint_sink = [&](recover::CheckpointState& state) {
      snapshot = state;
      ++snapshots;
    };
    auto full = run_parallel_scan(periodic);
    ASSERT_TRUE(full.ok) << full.error;
    // The periodic hook must not perturb the scan itself.
    EXPECT_EQ(stream_fingerprint(full), stream_fingerprint(golden));
    ASSERT_TRUE(snapshot.has_value()) << "no periodic snapshot captured";
    EXPECT_GT(snapshots, 0);
    EXPECT_FALSE(snapshot->quiescent);
    EXPECT_FALSE(snapshot->has_obs);
    ASSERT_EQ(snapshot->cursors.size(),
              static_cast<std::size_t>(threads));

    // Every carried record must sit strictly below its worker's cursor.
    for (const auto& r : snapshot->records) {
      ASSERT_LT(static_cast<std::size_t>(r.worker),
                snapshot->cursors.size());
      EXPECT_LT(r.raw_slot, snapshot->cursors[r.worker].frontier_slot);
    }

    auto round =
        recover::parse_checkpoint(recover::serialize_checkpoint(*snapshot));
    ASSERT_TRUE(round.state.has_value()) << round.error;
    EngineConfig resume = base;
    resume.resume = &*round.state;
    auto result = run_parallel_scan(resume);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(stream_fingerprint(result), stream_fingerprint(golden));
  }
}

// The cooperative shutdown flag (the signal handler's atomic) stops the
// scan the same way the deterministic slot hook does: quiescent, with
// cursors, and the monitor/telemetry tagged as interrupted.
TEST(Shutdown, FlagStopsScanQuiescentlyAndTagsTelemetry) {
  std::atomic<int> flag{SIGTERM};  // raised before the scan even starts
  std::ostringstream status;
  EngineConfig cfg = make_config(2);
  cfg.shutdown_flag = &flag;
  cfg.status_out = &status;
  cfg.checkpoint_file = "scan.state";
  auto result = run_parallel_scan(cfg);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.interrupted);
  EXPECT_EQ(result.stats.sent, 0u);  // stopped before the first draw
  EXPECT_EQ(result.cursors.size(), 2u);

  const std::string text = status.str();
  EXPECT_NE(text.find("(interrupted)"), std::string::npos) << text;
  EXPECT_NE(text.find("\"interrupted\":true"), std::string::npos) << text;
  EXPECT_NE(text.find("\"checkpoint_file\":\"scan.state\""),
            std::string::npos)
      << text;

  // And a clean run is tagged as done / not interrupted.
  std::ostringstream clean_status;
  EngineConfig clean = make_config(2);
  clean.status_out = &clean_status;
  auto clean_result = run_parallel_scan(clean);
  ASSERT_TRUE(clean_result.ok);
  EXPECT_FALSE(clean_result.interrupted);
  EXPECT_NE(clean_status.str().find("(done)"), std::string::npos);
  EXPECT_NE(clean_status.str().find("\"interrupted\":false"),
            std::string::npos);
}

// Satellite acceptance: --max-probes semantics are a global target budget
// cut at a fixed permutation slot — the capped output is byte-identical at
// every thread count, with and without retries.
TEST(MaxProbes, ThreadCountInvariant) {
  for (const int retries : {0, 2}) {
    SCOPED_TRACE("retries=" + std::to_string(retries));
    EngineConfig base = make_config(1);
    base.scan.max_probes = 500;
    base.scan.retries = retries;
    auto reference = run_parallel_scan(base);
    ASSERT_TRUE(reference.ok) << reference.error;
    EXPECT_EQ(reference.stats.targets_generated, 500u);
    EXPECT_EQ(reference.stats.sent,
              500u * static_cast<std::uint64_t>(1 + retries));
    const std::string expect = stream_fingerprint(reference);

    for (int threads : {2, 3, 8}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      EngineConfig cfg = make_config(threads);
      cfg.scan.max_probes = 500;
      cfg.scan.retries = retries;
      auto result = run_parallel_scan(cfg);
      ASSERT_TRUE(result.ok) << result.error;
      EXPECT_EQ(result.stats.targets_generated, 500u);
      EXPECT_EQ(result.stats.sent,
                500u * static_cast<std::uint64_t>(1 + retries));
      EXPECT_EQ(stream_fingerprint(result), expect);
    }
  }
}

// A max-probes cut and an interrupt/resume compose: the capped scan can be
// interrupted and resumed to the same capped output.
TEST(MaxProbes, ComposesWithResume) {
  EngineConfig base = make_config(3);
  base.scan.max_probes = 800;
  auto golden = run_parallel_scan(base);
  ASSERT_TRUE(golden.ok) << golden.error;
  EXPECT_EQ(golden.stats.targets_generated, 800u);

  auto resumed = interrupt_and_resume(base, 400);
  EXPECT_EQ(stream_fingerprint(resumed), stream_fingerprint(golden));
  EXPECT_EQ(resumed.stats, golden.stats);
}

}  // namespace
}  // namespace xmap::engine
