// Decoder-robustness sweeps: every parser in the system is fed large
// volumes of seeded-random and structure-adjacent garbage and must neither
// crash nor violate its validity contract. These are the attack surfaces a
// real scanner exposes to the open Internet (ICMPv6 errors quoting
// attacker-controlled bytes, DNS/DHCPv6 responses, config files).
#include <gtest/gtest.h>

#include "netbase/json.h"
#include "services/dns_codec.h"
#include "topology/dhcpv6.h"
#include "topology/ndp.h"
#include "xmap/probe_module.h"
#include "xmap/target_spec.h"

namespace xmap {
namespace {

std::vector<std::uint8_t> random_bytes(net::Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(rng.uniform(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, DnsDecodeNeverMisbehaves) {
  net::Rng rng{GetParam()};
  for (int i = 0; i < 2000; ++i) {
    const auto wire = random_bytes(rng, 128);
    auto msg = svc::DnsMessage::decode(wire);
    if (msg) {
      // Whatever decoded must re-encode without crashing.
      (void)msg->encode();
    }
  }
}

TEST_P(FuzzSeeds, DnsDecodeSurvivesMutatedValidMessages) {
  net::Rng rng{GetParam()};
  auto base = svc::make_query(1, "fuzz.example.com", svc::DnsType::kAaaa)
                  .encode();
  for (int i = 0; i < 2000; ++i) {
    auto mutated = base;
    const std::size_t flips = 1 + rng.uniform(4);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.uniform(mutated.size())] ^=
          static_cast<std::uint8_t>(1 + rng.uniform(255));
    }
    (void)svc::DnsMessage::decode(mutated);
  }
}

TEST_P(FuzzSeeds, Dhcpv6DecodeNeverMisbehaves) {
  net::Rng rng{GetParam()};
  for (int i = 0; i < 2000; ++i) {
    const auto wire = random_bytes(rng, 96);
    auto msg = topo::Dhcpv6Message::decode(wire);
    if (msg) (void)msg->encode();
  }
}

TEST_P(FuzzSeeds, RouterAdvertParseNeverMisbehaves) {
  net::Rng rng{GetParam()};
  for (int i = 0; i < 2000; ++i) {
    auto wire = random_bytes(rng, 96);
    if (!wire.empty()) wire[0] = topo::kIcmpv6RouterAdvert;  // steer coverage
    auto ra = topo::parse_router_advert(wire);
    if (ra) {
      for (const auto& pi : ra->prefixes) {
        EXPECT_LE(pi.prefix.length(), 128);
      }
    }
  }
}

TEST_P(FuzzSeeds, PacketViewsToleratedGarbage) {
  net::Rng rng{GetParam()};
  for (int i = 0; i < 2000; ++i) {
    const auto wire = random_bytes(rng, 200);
    pkt::Ipv6View ip{wire};
    if (!ip.valid()) continue;
    // Structurally valid by luck: every accessor must be safe.
    (void)ip.src();
    (void)ip.dst();
    (void)ip.hop_limit();
    auto payload = ip.payload();
    pkt::Icmpv6View icmp{payload};
    if (icmp.valid()) (void)icmp.type();
    pkt::UdpView udp{payload};
    if (udp.valid()) (void)udp.payload();
    pkt::TcpView tcp{payload};
    if (tcp.valid()) (void)tcp.payload();
  }
}

TEST_P(FuzzSeeds, ProbeClassifierRejectsGarbageQuietly) {
  net::Rng rng{GetParam()};
  const auto src = *net::Ipv6Address::parse("2001:500::1");
  scan::IcmpEchoProbe echo{64};
  scan::TcpSynProbe syn{80};
  for (int i = 0; i < 2000; ++i) {
    const auto wire = random_bytes(rng, 200);
    EXPECT_FALSE(echo.classify(wire, src, 7).has_value());
    EXPECT_FALSE(syn.classify(wire, src, 7).has_value());
  }
}

TEST_P(FuzzSeeds, ClassifierRejectsMutatedResponses) {
  // Flip bits in otherwise-valid responses: either the checksum or the
  // keyed validation must reject; nothing may crash or mis-accept a packet
  // whose probed address no longer matches its tags.
  net::Rng rng{GetParam()};
  const auto src = *net::Ipv6Address::parse("2001:500::1");
  const auto dst = *net::Ipv6Address::parse("2400:1:2:3::1234");
  const auto router = *net::Ipv6Address::parse("2400:ffff::1");
  scan::IcmpEchoProbe echo{64};
  const auto valid = pkt::build_icmpv6_error(
      router, pkt::Icmpv6Type::kDestUnreachable, 3,
      echo.make_probe(src, dst, 7));
  int accepted = 0;
  for (int i = 0; i < 2000; ++i) {
    auto mutated = valid;
    mutated[rng.uniform(mutated.size())] ^=
        static_cast<std::uint8_t>(1 + rng.uniform(255));
    if (auto r = echo.classify(mutated, src, 7)) {
      ++accepted;
      // Accepted mutations must still carry intact validation tags for the
      // recovered probe address.
      EXPECT_EQ(scan::probe_tag16(r->probe_dst, 7, 1),
                scan::probe_tag16(r->probe_dst, 7, 1));
    }
  }
  // The vast majority of single-byte flips must be rejected (checksum or
  // keyed tags); flips confined to don't-care fields may survive.
  EXPECT_LT(accepted, 200);
}

TEST_P(FuzzSeeds, JsonParserNeverMisbehaves) {
  net::Rng rng{GetParam()};
  const char alphabet[] = "{}[]\",:0123456789.eE+-truefalsn \n\t\\u\x01\xff";
  for (int i = 0; i < 2000; ++i) {
    std::string doc;
    const std::size_t len = rng.uniform(64);
    for (std::size_t c = 0; c < len; ++c) {
      doc.push_back(alphabet[rng.uniform(sizeof(alphabet) - 1)]);
    }
    auto parsed = net::json_parse(doc);
    if (parsed.value) {
      // Round-trip: dump of a parsed value re-parses equal.
      auto again = net::json_parse(parsed.value->dump());
      ASSERT_TRUE(again.value.has_value()) << doc;
      EXPECT_EQ(*again.value, *parsed.value);
    }
  }
}

TEST_P(FuzzSeeds, AddressAndSpecParsersNeverMisbehave) {
  net::Rng rng{GetParam()};
  const char alphabet[] = "0123456789abcdefABCDEF:./- ";
  for (int i = 0; i < 3000; ++i) {
    std::string text;
    const std::size_t len = rng.uniform(48);
    for (std::size_t c = 0; c < len; ++c) {
      text.push_back(alphabet[rng.uniform(sizeof(alphabet) - 1)]);
    }
    if (auto addr = net::Ipv6Address::parse(text)) {
      // Anything accepted must round-trip through the canonical form.
      EXPECT_EQ(net::Ipv6Address::parse(addr->to_string()), addr);
    }
    if (auto spec = scan::TargetSpec::parse(text)) {
      EXPECT_GE(spec->window_hi(), spec->window_lo());
      EXPECT_LE(spec->window_hi(), 128);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Values(0xf1, 0xf2, 0xf3, 0xf4));

}  // namespace
}  // namespace xmap
