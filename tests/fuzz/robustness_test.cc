// Decoder-robustness sweeps: every parser in the system is fed large
// volumes of seeded-random and structure-adjacent garbage and must neither
// crash nor violate its validity contract. These are the attack surfaces a
// real scanner exposes to the open Internet (ICMPv6 errors quoting
// attacker-controlled bytes, DNS/DHCPv6 responses, config files).
#include <gtest/gtest.h>

#include "netbase/json.h"
#include "services/dns_codec.h"
#include "topology/dhcpv6.h"
#include "topology/ndp.h"
#include "xmap/probe_module.h"
#include "xmap/target_spec.h"

namespace xmap {
namespace {

pkt::Bytes random_bytes(net::Rng& rng, std::size_t max_len) {
  pkt::Bytes out(rng.uniform(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, DnsDecodeNeverMisbehaves) {
  net::Rng rng{GetParam()};
  for (int i = 0; i < 2000; ++i) {
    const auto wire = random_bytes(rng, 128);
    auto msg = svc::DnsMessage::decode(wire);
    if (msg) {
      // Whatever decoded must re-encode without crashing.
      (void)msg->encode();
    }
  }
}

TEST_P(FuzzSeeds, DnsDecodeSurvivesMutatedValidMessages) {
  net::Rng rng{GetParam()};
  auto base = svc::make_query(1, "fuzz.example.com", svc::DnsType::kAaaa)
                  .encode();
  for (int i = 0; i < 2000; ++i) {
    auto mutated = base;
    const std::size_t flips = 1 + rng.uniform(4);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.uniform(mutated.size())] ^=
          static_cast<std::uint8_t>(1 + rng.uniform(255));
    }
    (void)svc::DnsMessage::decode(mutated);
  }
}

TEST_P(FuzzSeeds, Dhcpv6DecodeNeverMisbehaves) {
  net::Rng rng{GetParam()};
  for (int i = 0; i < 2000; ++i) {
    const auto wire = random_bytes(rng, 96);
    auto msg = topo::Dhcpv6Message::decode(wire);
    if (msg) (void)msg->encode();
  }
}

TEST_P(FuzzSeeds, RouterAdvertParseNeverMisbehaves) {
  net::Rng rng{GetParam()};
  for (int i = 0; i < 2000; ++i) {
    auto wire = random_bytes(rng, 96);
    if (!wire.empty()) wire[0] = topo::kIcmpv6RouterAdvert;  // steer coverage
    auto ra = topo::parse_router_advert(wire);
    if (ra) {
      for (const auto& pi : ra->prefixes) {
        EXPECT_LE(pi.prefix.length(), 128);
      }
    }
  }
}

TEST_P(FuzzSeeds, PacketViewsToleratedGarbage) {
  net::Rng rng{GetParam()};
  for (int i = 0; i < 2000; ++i) {
    const auto wire = random_bytes(rng, 200);
    pkt::Ipv6View ip{wire};
    if (!ip.valid()) continue;
    // Structurally valid by luck: every accessor must be safe.
    (void)ip.src();
    (void)ip.dst();
    (void)ip.hop_limit();
    auto payload = ip.payload();
    pkt::Icmpv6View icmp{payload};
    if (icmp.valid()) (void)icmp.type();
    pkt::UdpView udp{payload};
    if (udp.valid()) (void)udp.payload();
    pkt::TcpView tcp{payload};
    if (tcp.valid()) (void)tcp.payload();
  }
}

TEST_P(FuzzSeeds, ProbeClassifierRejectsGarbageQuietly) {
  net::Rng rng{GetParam()};
  const auto src = *net::Ipv6Address::parse("2001:500::1");
  scan::IcmpEchoProbe echo{64};
  scan::TcpSynProbe syn{80};
  scan::UdpProbe udp{53, {0x12, 0x34}, "udp_fuzz"};
  for (int i = 0; i < 2000; ++i) {
    const auto wire = random_bytes(rng, 200);
    EXPECT_FALSE(echo.classify(wire, src, 7).has_value());
    EXPECT_FALSE(syn.classify(wire, src, 7).has_value());
    EXPECT_FALSE(udp.classify(wire, src, 7).has_value());
  }
}

// Every prefix truncation of a valid probe/response must be handled by
// every packet view and classifier without crashes — and a proper prefix
// must never classify as a valid response (no false positives from
// fragments the fault layer or a hostile network could produce).
TEST(TruncationProperty, ViewsAndClassifiersRejectEveryPrefix) {
  const auto src = *net::Ipv6Address::parse("2001:500::1");
  const auto dst = *net::Ipv6Address::parse("2400:1:2:3::1234");
  const auto router = *net::Ipv6Address::parse("2400:ffff::1");
  scan::IcmpEchoProbe echo{64};
  scan::TcpSynProbe syn{80};
  scan::UdpProbe udp{53, {0x12, 0x34, 0x56}, "udp_fuzz"};

  std::vector<pkt::Bytes> wires;
  wires.push_back(echo.make_probe(src, dst, 7));
  wires.push_back(syn.make_probe(src, dst, 7));
  wires.push_back(udp.make_probe(src, dst, 7));
  wires.push_back(pkt::build_icmpv6_error(
      router, pkt::Icmpv6Type::kDestUnreachable, 3,
      echo.make_probe(src, dst, 7)));
  wires.push_back(pkt::build_icmpv6_error(
      router, pkt::Icmpv6Type::kTimeExceeded, 0,
      syn.make_probe(src, dst, 7)));

  for (const auto& wire : wires) {
    for (std::size_t len = 0; len < wire.size(); ++len) {
      const pkt::Bytes cut{wire.begin(),
                           wire.begin() + static_cast<std::ptrdiff_t>(len)};
      pkt::Ipv6View ip{cut};
      if (ip.valid()) {
        (void)ip.src();
        (void)ip.payload();
      }
      pkt::Icmpv6View icmp{cut};
      if (icmp.valid()) (void)icmp.type();
      pkt::UdpView uv{cut};
      if (uv.valid()) (void)uv.payload();
      pkt::TcpView tv{cut};
      if (tv.valid()) (void)tv.payload();
      // A truncated wire is not a response: the IPv6 payload length no
      // longer matches, so every classifier must reject it.
      EXPECT_FALSE(echo.classify(cut, src, 7).has_value()) << len;
      EXPECT_FALSE(syn.classify(cut, src, 7).has_value()) << len;
      EXPECT_FALSE(udp.classify(cut, src, 7).has_value()) << len;
    }
  }
}

TEST_P(FuzzSeeds, UdpClassifierRejectsMutatedResponses) {
  // Bit-flip an in-form UDP "response" (ports swapped relative to the
  // probe): flips must be caught by the UDP checksum or the keyed source
  // port; accepted packets may only be flips in payload don't-care bits
  // that keep the checksum valid — never a different probed address.
  net::Rng rng{GetParam()};
  const auto src = *net::Ipv6Address::parse("2001:500::1");
  const auto dst = *net::Ipv6Address::parse("2400:1:2:3::1234");
  scan::UdpProbe udp{53, {0xab, 0xcd, 0xef, 0x01}, "udp_fuzz"};
  const auto probe = udp.make_probe(src, dst, 7);
  pkt::Ipv6View pview{probe};
  pkt::UdpView pudp{pview.payload()};
  // Craft the legitimate reply: dst -> src, ports mirrored.
  const pkt::Bytes reply_payload{0xab, 0xcd};
  const auto valid = pkt::build_udp(dst, src, pudp.dst_port(),
                                    pudp.src_port(), reply_payload, 64);
  ASSERT_TRUE(udp.classify(valid, src, 7).has_value());
  int accepted = 0;
  for (int i = 0; i < 2000; ++i) {
    auto mutated = valid;
    mutated[rng.uniform(mutated.size())] ^=
        static_cast<std::uint8_t>(1 + rng.uniform(255));
    if (auto r = udp.classify(mutated, src, 7)) {
      ++accepted;
      EXPECT_EQ(r->responder, dst);
    }
  }
  EXPECT_LT(accepted, 200);
}

TEST_P(FuzzSeeds, ClassifierRejectsMutatedResponses) {
  // Flip bits in otherwise-valid responses: either the checksum or the
  // keyed validation must reject; nothing may crash or mis-accept a packet
  // whose probed address no longer matches its tags.
  net::Rng rng{GetParam()};
  const auto src = *net::Ipv6Address::parse("2001:500::1");
  const auto dst = *net::Ipv6Address::parse("2400:1:2:3::1234");
  const auto router = *net::Ipv6Address::parse("2400:ffff::1");
  scan::IcmpEchoProbe echo{64};
  const auto valid = pkt::build_icmpv6_error(
      router, pkt::Icmpv6Type::kDestUnreachable, 3,
      echo.make_probe(src, dst, 7));
  int accepted = 0;
  for (int i = 0; i < 2000; ++i) {
    auto mutated = valid;
    mutated[rng.uniform(mutated.size())] ^=
        static_cast<std::uint8_t>(1 + rng.uniform(255));
    if (auto r = echo.classify(mutated, src, 7)) {
      ++accepted;
      // Accepted mutations must still carry intact validation tags for the
      // recovered probe address.
      EXPECT_EQ(scan::probe_tag16(r->probe_dst, 7, 1),
                scan::probe_tag16(r->probe_dst, 7, 1));
    }
  }
  // The vast majority of single-byte flips must be rejected (checksum or
  // keyed tags); flips confined to don't-care fields may survive.
  EXPECT_LT(accepted, 200);
}

TEST_P(FuzzSeeds, JsonParserNeverMisbehaves) {
  net::Rng rng{GetParam()};
  const char alphabet[] = "{}[]\",:0123456789.eE+-truefalsn \n\t\\u\x01\xff";
  for (int i = 0; i < 2000; ++i) {
    std::string doc;
    const std::size_t len = rng.uniform(64);
    for (std::size_t c = 0; c < len; ++c) {
      doc.push_back(alphabet[rng.uniform(sizeof(alphabet) - 1)]);
    }
    auto parsed = net::json_parse(doc);
    if (parsed.value) {
      // Round-trip: dump of a parsed value re-parses equal.
      auto again = net::json_parse(parsed.value->dump());
      ASSERT_TRUE(again.value.has_value()) << doc;
      EXPECT_EQ(*again.value, *parsed.value);
    }
  }
}

TEST_P(FuzzSeeds, AddressAndSpecParsersNeverMisbehave) {
  net::Rng rng{GetParam()};
  const char alphabet[] = "0123456789abcdefABCDEF:./- ";
  for (int i = 0; i < 3000; ++i) {
    std::string text;
    const std::size_t len = rng.uniform(48);
    for (std::size_t c = 0; c < len; ++c) {
      text.push_back(alphabet[rng.uniform(sizeof(alphabet) - 1)]);
    }
    if (auto addr = net::Ipv6Address::parse(text)) {
      // Anything accepted must round-trip through the canonical form.
      EXPECT_EQ(net::Ipv6Address::parse(addr->to_string()), addr);
    }
    if (auto spec = scan::TargetSpec::parse(text)) {
      EXPECT_GE(spec->window_hi(), spec->window_lo());
      EXPECT_LE(spec->window_hi(), 128);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Values(0xf1, 0xf2, 0xf3, 0xf4));

}  // namespace
}  // namespace xmap
