// Fuzz harness for the fabric frame decoder (satellite requirement):
// every truncation and every single-bit flip of a valid frame must be
// rejected — never crash, never mis-parse into an accepted message — plus
// seeded random multi-byte mutations and hostile hand-built frames.
//
// Why every bit flip is detectable: a flip inside the payload always
// changes the FNV-1a checksum (each step h = (h ^ byte) * prime is
// injective in h, so two states differing at any step stay different
// through the tail), a flip in the stored checksum mismatches the computed
// one, and flips in the magic or length prefix are caught by their own
// checks before the checksum is even consulted.
#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "fabric/protocol.h"
#include "fabric/tcp_transport.h"

namespace xmap::fabric {
namespace {

std::vector<std::string> corpus() {
  std::vector<std::string> frames;

  Message hello;
  hello.type = MsgType::kHello;
  hello.seq = 1;
  hello.worker = 3;
  frames.push_back(encode_frame(hello));

  Message assign;
  assign.type = MsgType::kAssign;
  assign.seq = 2;
  assign.shard = 5;
  assign.epoch = 1;
  assign.shards_total = 8;
  assign.budget_cut = 99999;
  assign.fingerprint = 0x0123456789abcdefULL;
  assign.has_resume = true;
  assign.cursor.frontier_slot = 4242;
  assign.cursor.spec_steps = {1, 2, 3, 4, 5};
  frames.push_back(encode_frame(assign));

  Message records;
  records.type = MsgType::kRecords;
  records.seq = 7;
  records.shard = 2;
  records.epoch = 0;
  for (int i = 0; i < 5; ++i) {
    WireRecord rec;
    rec.response.kind = scan::ResponseKind::kEchoReply;
    rec.response.responder = *net::Ipv6Address::parse("2001:db8::1");
    rec.response.probe_dst = *net::Ipv6Address::parse("2001:db8::2");
    rec.response.hop_limit = 62;
    rec.when = 1000 + static_cast<std::uint64_t>(i);
    rec.raw_slot = 512 + static_cast<std::uint64_t>(i);
    records.records.push_back(rec);
  }
  frames.push_back(encode_frame(records));

  Message ckpt;
  ckpt.type = MsgType::kCheckpoint;
  ckpt.seq = 8;
  ckpt.shard = 2;
  ckpt.cursor.frontier_slot = 300;
  ckpt.cursor.spec_steps = {9, 9};
  ckpt.stats.sent = 300;
  ckpt.stats.validated = 250;
  frames.push_back(encode_frame(ckpt));

  Message refuse;
  refuse.type = MsgType::kRefuse;
  refuse.seq = 3;
  refuse.diagnostic = "shard 5: scan fingerprint mismatch";
  frames.push_back(encode_frame(refuse));

  Message ack;
  ack.type = MsgType::kAck;
  ack.ack_seq = 17;
  frames.push_back(encode_frame(ack));

  // Trace-context-bearing variants: the same Assign and Checkpoint with a
  // v1 context (trace id + parent span) in the versioned header. Bit flips
  // inside the context bytes must be rejected like any other payload flip —
  // a corrupted causal link must never attach a span to the wrong parent.
  Message ctx_assign = assign;
  ctx_assign.ctx_ver = kTraceCtxV1;
  ctx_assign.trace_id = 0xfeedfacecafebeefULL;
  ctx_assign.parent_span = 0x0002000000000007ULL;
  frames.push_back(encode_frame(ctx_assign));

  Message ctx_ckpt = ckpt;
  ctx_ckpt.ctx_ver = kTraceCtxV1;
  ctx_ckpt.trace_id = 0xfeedfacecafebeefULL;
  ctx_ckpt.parent_span = 0x0003000000000001ULL;
  frames.push_back(encode_frame(ctx_ckpt));

  // Obs chunks: a scan-content trace chunk (strings exercise the intern
  // pool and the null-vs-empty presence flags) and a metrics chunk (counter,
  // wall-clock gauge, histogram).
  Message obs_trace;
  obs_trace.type = MsgType::kObsTrace;
  obs_trace.seq = 9;
  obs_trace.shard = 1;
  obs_trace.epoch = 0;
  obs_trace.ctx_ver = kTraceCtxV1;
  obs_trace.trace_id = 0xfeedfacecafebeefULL;
  obs_trace.parent_span = 0x0002000000000009ULL;
  {
    obs::TraceEvent probe;
    probe.ts = 12345;
    probe.name = "probe_sent";
    probe.cat = "scan";
    probe.addr1_key = "dst";
    probe.addr1 = *net::Ipv6Address::parse("2001:db8::42");
    probe.i0 = {"slot", 777};
    obs_trace.trace_events.push_back(probe);
    obs::TraceEvent span;
    span.ts = 12000;
    span.dur = 900;
    span.name = "probe_lifecycle";
    span.cat = "scan";
    span.str_key = "outcome";
    span.str_val = "validated";
    obs_trace.trace_events.push_back(span);
  }
  frames.push_back(encode_frame(obs_trace));

  Message obs_metrics;
  obs_metrics.type = MsgType::kObsMetrics;
  obs_metrics.seq = 10;
  obs_metrics.shard = 1;
  obs_metrics.epoch = 0;
  {
    obs::MetricsSnapshot::Entry counter;
    counter.name = "targets_generated";
    counter.kind = obs::MetricKind::kCounter;
    counter.value = 4242;
    counter.help = "Targets drawn from the permutation";
    obs_metrics.metrics.entries.push_back(counter);
    obs::MetricsSnapshot::Entry gauge;
    gauge.name = "queue_depth";
    gauge.labels = {{"stage", "send"}};
    gauge.kind = obs::MetricKind::kGauge;
    gauge.wall_clock = true;
    gauge.value = 17;
    obs_metrics.metrics.entries.push_back(gauge);
    obs::MetricsSnapshot::Entry histo;
    histo.name = "rtt_ns";
    histo.kind = obs::MetricKind::kHistogram;
    histo.histogram = obs::Histogram{{1000, 10000, 100000}};
    histo.histogram->observe(500);
    histo.histogram->observe(50000);
    histo.histogram->observe(999999999);
    obs_metrics.metrics.entries.push_back(histo);
  }
  frames.push_back(encode_frame(obs_metrics));

  // The reconnect handshake triple (tcp_transport.h): the stream-opening
  // kRejoin and the coordinator's two answers.
  Message rejoin;
  rejoin.type = MsgType::kRejoin;
  rejoin.worker = 2;
  rejoin.fingerprint = 0x0123456789abcdefULL;
  rejoin.has_lease = true;
  rejoin.shard = 4;
  rejoin.epoch = 2;
  frames.push_back(encode_frame(rejoin));

  Message rejoin_ok;
  rejoin_ok.type = MsgType::kRejoinOk;
  rejoin_ok.worker = 2;
  frames.push_back(encode_frame(rejoin_ok));

  Message rejoin_refused;
  rejoin_refused.type = MsgType::kRejoinRefused;
  rejoin_refused.worker = 2;
  rejoin_refused.diagnostic = "zombie: worker was declared dead";
  frames.push_back(encode_frame(rejoin_refused));

  return frames;
}

// The baseline: every corpus frame decodes cleanly.
TEST(FabricFramesFuzz, CorpusDecodes) {
  for (const auto& frame : corpus()) {
    auto decoded = decode_frame(frame);
    EXPECT_TRUE(decoded.message.has_value()) << decoded.error;
  }
}

// Trace context round-trips exactly: version, trace id and parent span come
// back bit-for-bit, and a ctx-free frame stays ctx-free.
TEST(FabricFramesFuzz, TraceContextRoundTrips) {
  Message msg;
  msg.type = MsgType::kCheckpoint;
  msg.seq = 4;
  msg.shard = 6;
  msg.cursor.frontier_slot = 100;
  msg.cursor.spec_steps = {5};
  msg.ctx_ver = kTraceCtxV1;
  msg.trace_id = 0x1122334455667788ULL;
  msg.parent_span = 0x0004000000000042ULL;
  auto decoded = decode_frame(encode_frame(msg));
  ASSERT_TRUE(decoded.message.has_value()) << decoded.error;
  EXPECT_EQ(decoded.message->ctx_ver, kTraceCtxV1);
  EXPECT_EQ(decoded.message->trace_id, 0x1122334455667788ULL);
  EXPECT_EQ(decoded.message->parent_span, 0x0004000000000042ULL);

  msg.ctx_ver = kTraceCtxNone;
  decoded = decode_frame(encode_frame(msg));
  ASSERT_TRUE(decoded.message.has_value()) << decoded.error;
  EXPECT_EQ(decoded.message->ctx_ver, kTraceCtxNone);
  EXPECT_EQ(decoded.message->trace_id, 0u);
  EXPECT_EQ(decoded.message->parent_span, 0u);
}

// Unknown trace-context versions are rejected with a diagnostic — a newer
// peer must never have its context bytes misread as body fields.
TEST(FabricFramesFuzz, UnsupportedTraceContextVersionRejected) {
  Message msg;
  msg.type = MsgType::kHello;
  msg.seq = 1;
  msg.worker = 0;
  std::string frame = encode_frame(msg);
  // The ctx_ver byte sits right after `u8 type | u64 seq` in the payload,
  // which starts at offset 8 (after magic + length prefix).
  const std::size_t ctx_off = 8 + 1 + 8;
  for (std::uint8_t ver : {std::uint8_t{2}, std::uint8_t{7},
                           std::uint8_t{255}}) {
    std::string doctored = frame;
    doctored[ctx_off] = static_cast<char>(ver);
    const std::size_t payload_len = doctored.size() - kFrameOverhead;
    const std::uint64_t sum =
        frame_checksum(std::string_view(doctored).substr(8, payload_len));
    std::memcpy(doctored.data() + 8 + payload_len, &sum, 8);
    auto decoded = decode_frame(doctored);
    ASSERT_FALSE(decoded.message.has_value())
        << "ctx version " << int(ver) << " was accepted";
    EXPECT_NE(decoded.error.find("trace-context"), std::string::npos)
        << decoded.error;
  }
}

// Obs chunks survive the wire byte-exactly: trace events (including interned
// strings and null-vs-empty arg keys) and metrics entries (labels,
// wall-clock flag, histogram buckets) decode equal to what was encoded.
TEST(FabricFramesFuzz, ObsChunksRoundTrip) {
  const auto frames = corpus();
  // The obs chunks sit just before the three rejoin-handshake frames at
  // the corpus tail.
  auto trace_chunk = decode_frame(frames[frames.size() - 5]);
  ASSERT_TRUE(trace_chunk.message.has_value()) << trace_chunk.error;
  ASSERT_EQ(trace_chunk.message->type, MsgType::kObsTrace);
  ASSERT_EQ(trace_chunk.message->trace_events.size(), 2u);
  const auto& ev = trace_chunk.message->trace_events[0];
  EXPECT_EQ(ev.ts, 12345u);
  EXPECT_STREQ(ev.name, "probe_sent");
  EXPECT_STREQ(ev.addr1_key, "dst");
  EXPECT_EQ(ev.addr1, *net::Ipv6Address::parse("2001:db8::42"));
  EXPECT_STREQ(ev.i0.key, "slot");
  EXPECT_EQ(ev.i0.value, 777u);
  EXPECT_EQ(ev.addr2_key, nullptr);  // null (not empty) survived the wire
  const auto& span = trace_chunk.message->trace_events[1];
  EXPECT_EQ(span.dur, 900u);
  EXPECT_STREQ(span.str_val, "validated");

  auto metrics_chunk = decode_frame(frames[frames.size() - 4]);
  ASSERT_TRUE(metrics_chunk.message.has_value()) << metrics_chunk.error;
  ASSERT_EQ(metrics_chunk.message->type, MsgType::kObsMetrics);
  const auto& snap = metrics_chunk.message->metrics;
  ASSERT_EQ(snap.entries.size(), 3u);
  const auto* counter = snap.find("targets_generated");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value, 4242u);
  EXPECT_EQ(counter->help, "Targets drawn from the permutation");
  const auto* gauge = snap.find("queue_depth", {{"stage", "send"}});
  ASSERT_NE(gauge, nullptr);
  EXPECT_TRUE(gauge->wall_clock);
  const auto* histo = snap.find("rtt_ns");
  ASSERT_NE(histo, nullptr);
  ASSERT_TRUE(histo->histogram.has_value());
  EXPECT_EQ(histo->histogram->count(), 3u);
  EXPECT_EQ(histo->histogram->counts().back(), 1u);  // the +Inf observation
}

// Every proper prefix of every valid frame is rejected with a diagnostic.
TEST(FabricFramesFuzz, EveryTruncationRejected) {
  for (const auto& frame : corpus()) {
    for (std::size_t len = 0; len < frame.size(); ++len) {
      auto decoded = decode_frame(frame.substr(0, len));
      ASSERT_FALSE(decoded.message.has_value())
          << "truncation to " << len << " of " << frame.size()
          << " bytes was accepted";
      ASSERT_FALSE(decoded.error.empty());
    }
  }
}

// Every single-bit flip of every valid frame is rejected: the checksum (or
// an earlier structural check) catches all of them, and none crashes.
TEST(FabricFramesFuzz, EveryBitFlipRejected) {
  for (const auto& frame : corpus()) {
    for (std::size_t byte = 0; byte < frame.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string mutated = frame;
        mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
        auto decoded = decode_frame(mutated);
        ASSERT_FALSE(decoded.message.has_value())
            << "bit " << bit << " of byte " << byte << " flipped in a "
            << frame.size() << "-byte frame was accepted";
        ASSERT_FALSE(decoded.error.empty());
      }
    }
  }
}

// Seeded random multi-byte mutations: never a crash; anything accepted must
// be byte-identical to the original (i.e. the mutation round-tripped to the
// same frame, which random multi-flips practically never do — but the
// invariant is "no mis-parse", not "always rejected").
TEST(FabricFramesFuzz, RandomMutationsNeverMisparse) {
  std::mt19937_64 rng{20260808};
  const auto frames = corpus();
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = frames[round % frames.size()];
    const int flips = 1 + static_cast<int>(rng() % 8);
    for (int i = 0; i < flips; ++i) {
      mutated[rng() % mutated.size()] ^= static_cast<char>(1 + rng() % 255);
    }
    // Occasionally also chop the tail.
    if (rng() % 4 == 0 && mutated.size() > 1) {
      mutated.resize(rng() % mutated.size());
    }
    auto decoded = decode_frame(mutated);
    if (decoded.message.has_value()) {
      EXPECT_EQ(mutated, frames[round % frames.size()])
          << "a mutated frame was accepted";
    } else {
      EXPECT_FALSE(decoded.error.empty());
    }
  }
}

// Purely random byte strings (with and without a valid-looking header).
TEST(FabricFramesFuzz, RandomGarbageRejected) {
  std::mt19937_64 rng{42};
  for (int round = 0; round < 2000; ++round) {
    std::string garbage(rng() % 128, '\0');
    for (auto& c : garbage) c = static_cast<char>(rng());
    auto decoded = decode_frame(garbage);
    if (decoded.message.has_value()) {
      // Only conceivable if the garbage happens to be a valid frame —
      // with a 32-bit magic + 64-bit checksum this does not occur for
      // these seeds; flag it if the protocol ever weakens.
      ADD_FAILURE() << "random garbage of size " << garbage.size()
                    << " decoded as " << msg_type_name(decoded.message->type);
    }
  }
}

// Hostile count prefixes must be rejected by the bound check before any
// allocation: a frame claiming 500 million records in a 100-byte body.
TEST(FabricFramesFuzz, HostileCountPrefixRejectedWithoutAllocation) {
  Message msg;
  msg.type = MsgType::kRecords;
  msg.seq = 1;
  std::string frame = encode_frame(msg);
  const std::size_t payload_len = frame.size() - kFrameOverhead;
  const std::uint32_t huge = 500'000'000;
  std::memcpy(frame.data() + 8 + payload_len - 4, &huge, 4);
  const std::uint64_t sum =
      frame_checksum(std::string_view(frame).substr(8, payload_len));
  std::memcpy(frame.data() + 8 + payload_len, &sum, 8);
  auto decoded = decode_frame(frame);
  ASSERT_FALSE(decoded.message.has_value());
  EXPECT_NE(decoded.error.find("exceeds remaining"), std::string::npos)
      << decoded.error;
}

// A length prefix lying upward past the buffer, and one lying downward
// (shorter than the actual payload), are both structural rejections.
TEST(FabricFramesFuzz, LyingLengthPrefixRejected) {
  Message msg;
  msg.type = MsgType::kHeartbeat;
  msg.worker = 1;
  const std::string frame = encode_frame(msg);

  std::string up = frame;
  std::uint32_t len;
  std::memcpy(&len, up.data() + 4, 4);
  const std::uint32_t bigger = len + 8;
  std::memcpy(up.data() + 4, &bigger, 4);
  EXPECT_FALSE(decode_frame(up).message.has_value());

  std::string down = frame;
  const std::uint32_t smaller = len - 4;
  std::memcpy(down.data() + 4, &smaller, 4);
  EXPECT_FALSE(decode_frame(down).message.has_value());
}

// --- Streamed reassembly (tcp_transport.h) ---------------------------------
//
// Over TCP the frame boundary guarantees vanish: the kernel hands back
// arbitrary byte spans. The FrameReassembler must recover exactly the sent
// frame sequence from ANY re-chunking, and must never mis-parse,
// over-allocate, or silently desynchronize on adversarial prefixes.

std::string concatenated_corpus() {
  std::string stream;
  for (const auto& frame : corpus()) stream += frame;
  return stream;
}

void expect_reassembles_exactly(const std::string& stream,
                                const std::vector<std::string>& expect,
                                FrameReassembler& sm) {
  std::vector<std::string> got;
  for (std::optional<std::string> frame; (frame = sm.next());) {
    got.push_back(std::move(*frame));
  }
  ASSERT_EQ(got.size(), expect.size()) << "stream size " << stream.size();
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(got[i], expect[i]) << "frame " << i;
    // Boundary recovery is exact, not just decodable-equivalent.
    EXPECT_TRUE(decode_frame(got[i]).message.has_value());
  }
  EXPECT_FALSE(sm.poisoned());
  EXPECT_EQ(sm.buffered(), 0u);
}

// Every split point: the whole corpus stream cut into two feeds at each
// possible byte offset reassembles to the identical frame sequence.
TEST(FabricFramesFuzz, StreamedEverySplitPointReassembles) {
  const auto frames = corpus();
  const std::string stream = concatenated_corpus();
  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    FrameReassembler sm;
    ASSERT_TRUE(sm.feed(std::string_view(stream).substr(0, cut)));
    ASSERT_TRUE(sm.feed(std::string_view(stream).substr(cut)));
    expect_reassembles_exactly(stream, frames, sm);
  }
}

// Seeded random re-chunkings, including 1-byte drip feeds: the kernel's
// worst segmentation cannot change the recovered frames.
TEST(FabricFramesFuzz, StreamedRandomChunkingReassembles) {
  const auto frames = corpus();
  const std::string stream = concatenated_corpus();
  std::mt19937_64 rng{7};
  for (int round = 0; round < 200; ++round) {
    const std::size_t max_chunk = 1 + rng() % 64;
    FrameReassembler sm;
    std::size_t off = 0;
    while (off < stream.size()) {
      const std::size_t n =
          std::min<std::size_t>(1 + rng() % max_chunk, stream.size() - off);
      ASSERT_TRUE(sm.feed(std::string_view(stream).substr(off, n)));
      off += n;
    }
    expect_reassembles_exactly(stream, frames, sm);
  }
}

// Interleaved feed/next: popping frames mid-stream must not disturb the
// boundaries of what follows.
TEST(FabricFramesFuzz, StreamedInterleavedDrainReassembles) {
  const auto frames = corpus();
  const std::string stream = concatenated_corpus();
  FrameReassembler sm;
  std::vector<std::string> got;
  for (std::size_t off = 0; off < stream.size(); off += 3) {
    ASSERT_TRUE(sm.feed(std::string_view(stream).substr(
        off, std::min<std::size_t>(3, stream.size() - off))));
    for (std::optional<std::string> frame; (frame = sm.next());) {
      got.push_back(std::move(*frame));
    }
  }
  ASSERT_EQ(got.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) EXPECT_EQ(got[i], frames[i]);
}

// An adversarial length prefix above kMaxPayload poisons the stream before
// any body is buffered: the buffer never grows past the header bytes, so a
// hostile peer cannot drive allocation.
TEST(FabricFramesFuzz, StreamedHostileLengthPoisonsWithoutAllocation) {
  for (std::uint32_t hostile :
       {static_cast<std::uint32_t>(kMaxPayload + 1), 0x7fffffffu,
        0xffffffffu}) {
    FrameReassembler sm;
    std::string header(8, '\0');
    std::memcpy(header.data(), "XFB1", 4);
    std::memcpy(header.data() + 4, &hostile, 4);
    EXPECT_FALSE(sm.feed(header));
    EXPECT_TRUE(sm.poisoned());
    EXPECT_NE(sm.error().find("length"), std::string::npos) << sm.error();
    EXPECT_LE(sm.buffered(), header.size());
    // Poison is latched: later bytes — even a whole valid frame — are
    // discarded rather than risking a desynchronized parse.
    Message msg;
    msg.type = MsgType::kHeartbeat;
    EXPECT_FALSE(sm.feed(encode_frame(msg)));
    EXPECT_EQ(sm.next(), std::nullopt);
  }
}

// Bad magic poisons immediately — a desynchronized stream has no
// trustworthy resync point, so the reassembler refuses to guess.
TEST(FabricFramesFuzz, StreamedBadMagicPoisons) {
  FrameReassembler sm;
  Message msg;
  msg.type = MsgType::kHeartbeat;
  msg.worker = 1;
  std::string frame = encode_frame(msg);
  ASSERT_TRUE(sm.feed(frame));  // one clean frame first
  std::string doctored = frame;
  doctored[0] = 'Z';
  // The bad magic hides behind the clean frame still buffered at the
  // front, so this feed succeeds; the poison fires when the front drains.
  EXPECT_TRUE(sm.feed(doctored));
  EXPECT_EQ(sm.next(), frame);
  EXPECT_EQ(sm.next(), std::nullopt);
  EXPECT_TRUE(sm.poisoned());
  EXPECT_NE(sm.error().find("magic"), std::string::npos) << sm.error();
}

// A length prefix lying *within* bounds desynchronizes the stream — the
// next "frame" then starts mid-body and its magic check fires. The
// reassembler never hands out a frame decode_frame accepts from such a
// stream: corruption surfaces as poison or decode rejection, not as a
// wrong message.
TEST(FabricFramesFuzz, StreamedLyingLengthNeverMisparses) {
  const std::string stream = concatenated_corpus();
  for (std::uint32_t lie : {0u, 1u, 9u, 24u, 200u}) {
    FrameReassembler sm;
    std::string doctored = stream;
    std::memcpy(doctored.data() + 4, &lie, 4);
    sm.feed(doctored);
    for (std::optional<std::string> frame; (frame = sm.next());) {
      auto decoded = decode_frame(*frame);
      if (decoded.message.has_value()) {
        // Only the truthful length reproduces the original first frame.
        EXPECT_EQ(*frame, stream.substr(0, frame->size()));
      }
    }
  }
}

// reset() forgets the poison and the buffer — the reuse path for a fresh
// connection after a reconnect.
TEST(FabricFramesFuzz, StreamedResetClearsPoisonForFreshConnection) {
  FrameReassembler sm;
  EXPECT_FALSE(sm.feed("ZZZZZZZZ"));
  EXPECT_TRUE(sm.poisoned());
  sm.reset();
  EXPECT_FALSE(sm.poisoned());
  EXPECT_EQ(sm.buffered(), 0u);
  const auto frames = corpus();
  for (const auto& frame : frames) ASSERT_TRUE(sm.feed(frame));
  std::size_t n = 0;
  for (std::optional<std::string> frame; (frame = sm.next());) {
    EXPECT_EQ(*frame, frames[n++]);
  }
  EXPECT_EQ(n, frames.size());
}

}  // namespace
}  // namespace xmap::fabric
