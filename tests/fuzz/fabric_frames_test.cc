// Fuzz harness for the fabric frame decoder (satellite requirement):
// every truncation and every single-bit flip of a valid frame must be
// rejected — never crash, never mis-parse into an accepted message — plus
// seeded random multi-byte mutations and hostile hand-built frames.
//
// Why every bit flip is detectable: a flip inside the payload always
// changes the FNV-1a checksum (each step h = (h ^ byte) * prime is
// injective in h, so two states differing at any step stay different
// through the tail), a flip in the stored checksum mismatches the computed
// one, and flips in the magic or length prefix are caught by their own
// checks before the checksum is even consulted.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "fabric/protocol.h"

namespace xmap::fabric {
namespace {

std::vector<std::string> corpus() {
  std::vector<std::string> frames;

  Message hello;
  hello.type = MsgType::kHello;
  hello.seq = 1;
  hello.worker = 3;
  frames.push_back(encode_frame(hello));

  Message assign;
  assign.type = MsgType::kAssign;
  assign.seq = 2;
  assign.shard = 5;
  assign.epoch = 1;
  assign.shards_total = 8;
  assign.budget_cut = 99999;
  assign.fingerprint = 0x0123456789abcdefULL;
  assign.has_resume = true;
  assign.cursor.frontier_slot = 4242;
  assign.cursor.spec_steps = {1, 2, 3, 4, 5};
  frames.push_back(encode_frame(assign));

  Message records;
  records.type = MsgType::kRecords;
  records.seq = 7;
  records.shard = 2;
  records.epoch = 0;
  for (int i = 0; i < 5; ++i) {
    WireRecord rec;
    rec.response.kind = scan::ResponseKind::kEchoReply;
    rec.response.responder = *net::Ipv6Address::parse("2001:db8::1");
    rec.response.probe_dst = *net::Ipv6Address::parse("2001:db8::2");
    rec.response.hop_limit = 62;
    rec.when = 1000 + static_cast<std::uint64_t>(i);
    rec.raw_slot = 512 + static_cast<std::uint64_t>(i);
    records.records.push_back(rec);
  }
  frames.push_back(encode_frame(records));

  Message ckpt;
  ckpt.type = MsgType::kCheckpoint;
  ckpt.seq = 8;
  ckpt.shard = 2;
  ckpt.cursor.frontier_slot = 300;
  ckpt.cursor.spec_steps = {9, 9};
  ckpt.stats.sent = 300;
  ckpt.stats.validated = 250;
  frames.push_back(encode_frame(ckpt));

  Message refuse;
  refuse.type = MsgType::kRefuse;
  refuse.seq = 3;
  refuse.diagnostic = "shard 5: scan fingerprint mismatch";
  frames.push_back(encode_frame(refuse));

  Message ack;
  ack.type = MsgType::kAck;
  ack.ack_seq = 17;
  frames.push_back(encode_frame(ack));

  return frames;
}

// The baseline: every corpus frame decodes cleanly.
TEST(FabricFramesFuzz, CorpusDecodes) {
  for (const auto& frame : corpus()) {
    auto decoded = decode_frame(frame);
    EXPECT_TRUE(decoded.message.has_value()) << decoded.error;
  }
}

// Every proper prefix of every valid frame is rejected with a diagnostic.
TEST(FabricFramesFuzz, EveryTruncationRejected) {
  for (const auto& frame : corpus()) {
    for (std::size_t len = 0; len < frame.size(); ++len) {
      auto decoded = decode_frame(frame.substr(0, len));
      ASSERT_FALSE(decoded.message.has_value())
          << "truncation to " << len << " of " << frame.size()
          << " bytes was accepted";
      ASSERT_FALSE(decoded.error.empty());
    }
  }
}

// Every single-bit flip of every valid frame is rejected: the checksum (or
// an earlier structural check) catches all of them, and none crashes.
TEST(FabricFramesFuzz, EveryBitFlipRejected) {
  for (const auto& frame : corpus()) {
    for (std::size_t byte = 0; byte < frame.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string mutated = frame;
        mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
        auto decoded = decode_frame(mutated);
        ASSERT_FALSE(decoded.message.has_value())
            << "bit " << bit << " of byte " << byte << " flipped in a "
            << frame.size() << "-byte frame was accepted";
        ASSERT_FALSE(decoded.error.empty());
      }
    }
  }
}

// Seeded random multi-byte mutations: never a crash; anything accepted must
// be byte-identical to the original (i.e. the mutation round-tripped to the
// same frame, which random multi-flips practically never do — but the
// invariant is "no mis-parse", not "always rejected").
TEST(FabricFramesFuzz, RandomMutationsNeverMisparse) {
  std::mt19937_64 rng{20260808};
  const auto frames = corpus();
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = frames[round % frames.size()];
    const int flips = 1 + static_cast<int>(rng() % 8);
    for (int i = 0; i < flips; ++i) {
      mutated[rng() % mutated.size()] ^= static_cast<char>(1 + rng() % 255);
    }
    // Occasionally also chop the tail.
    if (rng() % 4 == 0 && mutated.size() > 1) {
      mutated.resize(rng() % mutated.size());
    }
    auto decoded = decode_frame(mutated);
    if (decoded.message.has_value()) {
      EXPECT_EQ(mutated, frames[round % frames.size()])
          << "a mutated frame was accepted";
    } else {
      EXPECT_FALSE(decoded.error.empty());
    }
  }
}

// Purely random byte strings (with and without a valid-looking header).
TEST(FabricFramesFuzz, RandomGarbageRejected) {
  std::mt19937_64 rng{42};
  for (int round = 0; round < 2000; ++round) {
    std::string garbage(rng() % 128, '\0');
    for (auto& c : garbage) c = static_cast<char>(rng());
    auto decoded = decode_frame(garbage);
    if (decoded.message.has_value()) {
      // Only conceivable if the garbage happens to be a valid frame —
      // with a 32-bit magic + 64-bit checksum this does not occur for
      // these seeds; flag it if the protocol ever weakens.
      ADD_FAILURE() << "random garbage of size " << garbage.size()
                    << " decoded as " << msg_type_name(decoded.message->type);
    }
  }
}

// Hostile count prefixes must be rejected by the bound check before any
// allocation: a frame claiming 500 million records in a 100-byte body.
TEST(FabricFramesFuzz, HostileCountPrefixRejectedWithoutAllocation) {
  Message msg;
  msg.type = MsgType::kRecords;
  msg.seq = 1;
  std::string frame = encode_frame(msg);
  const std::size_t payload_len = frame.size() - kFrameOverhead;
  const std::uint32_t huge = 500'000'000;
  std::memcpy(frame.data() + 8 + payload_len - 4, &huge, 4);
  const std::uint64_t sum =
      frame_checksum(std::string_view(frame).substr(8, payload_len));
  std::memcpy(frame.data() + 8 + payload_len, &sum, 8);
  auto decoded = decode_frame(frame);
  ASSERT_FALSE(decoded.message.has_value());
  EXPECT_NE(decoded.error.find("exceeds remaining"), std::string::npos)
      << decoded.error;
}

// A length prefix lying upward past the buffer, and one lying downward
// (shorter than the actual payload), are both structural rejections.
TEST(FabricFramesFuzz, LyingLengthPrefixRejected) {
  Message msg;
  msg.type = MsgType::kHeartbeat;
  msg.worker = 1;
  const std::string frame = encode_frame(msg);

  std::string up = frame;
  std::uint32_t len;
  std::memcpy(&len, up.data() + 4, 4);
  const std::uint32_t bigger = len + 8;
  std::memcpy(up.data() + 4, &bigger, 4);
  EXPECT_FALSE(decode_frame(up).message.has_value());

  std::string down = frame;
  const std::uint32_t smaller = len - 4;
  std::memcpy(down.data() + 4, &smaller, 4);
  EXPECT_FALSE(decode_frame(down).message.has_value());
}

}  // namespace
}  // namespace xmap::fabric
