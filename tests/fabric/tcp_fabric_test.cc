// TCP transport integration tests: byte-identical merged results over real
// sockets — clean runs, kill-and-migrate, kill-and-reconnect through the
// chaos proxy's kernel-level faults (mid-frame cuts, split/coalesced
// segments, stalls, one-direction blackholes) — plus the reconnect
// handshake's refusal paths (zombie, fingerprint mismatch) and transport
// setup diagnostics naming address and errno.
#include "fabric/tcp_transport.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "engine/executor.h"
#include "fabric/chaos_proxy.h"
#include "fabric/coordinator.h"
#include "fabric/protocol.h"
#include "topology/paper_profiles.h"

namespace xmap::fabric {
namespace {

const net::Ipv6Address kScannerAddr = *net::Ipv6Address::parse("2001:500::1");

const scan::IcmpEchoProbe& shared_module() {
  static const scan::IcmpEchoProbe module{64};
  return module;
}

FabricConfig make_config(int nodes, int shards = 4) {
  FabricConfig cfg;
  cfg.world_specs = topo::paper::isp_specs();
  cfg.vendors = topo::paper::vendor_catalog();
  cfg.build.window_bits = 8;
  cfg.build.seed = 42;
  cfg.module = &shared_module();
  cfg.scan.source = kScannerAddr;
  cfg.scan.seed = 7;
  cfg.scan.probes_per_sec = 1e6;
  cfg.nodes = nodes;
  cfg.shards = shards;
  return cfg;
}

FabricConfig make_tcp_config(int nodes, int shards = 4) {
  FabricConfig cfg = make_config(nodes, shards);
  cfg.transport = TransportKind::kTcp;
  return cfg;
}

std::string records_fingerprint(const FabricResult& result) {
  std::ostringstream out;
  for (const auto& rec : result.records) {
    out << rec.when << '|' << rec.response.responder.to_string() << '|'
        << rec.response.probe_dst.to_string() << '|'
        << int(rec.response.kind) << '|' << int(rec.response.icmp_code)
        << '|' << int(rec.response.hop_limit) << '|' << rec.shard << '|'
        << rec.raw_slot << '\n';
  }
  return out.str();
}

void expect_unique_slots(const FabricResult& result) {
  std::set<std::pair<int, std::uint64_t>> slots;
  for (const auto& rec : result.records) {
    EXPECT_TRUE(slots.emplace(rec.shard, rec.raw_slot).second)
        << "shard " << rec.shard << " slot " << rec.raw_slot
        << " appears twice";
  }
}

// Routes one worker's connection through a chaos proxy (the proxy targets
// the coordinator's actual bound address, discovered at tweak time).
void route_node_through_proxy(FabricConfig& cfg, int node,
                              ChaosProxyOptions proxy_opts,
                              std::unique_ptr<ChaosProxy>& proxy,
                              std::function<void(TcpWorkerOptions&)> extra =
                                  {}) {
  cfg.tcp_worker_tweak = [&proxy, node, proxy_opts = std::move(proxy_opts),
                          extra = std::move(extra)](
                             int n, TcpWorkerOptions& opts) mutable {
    if (n != node) return;
    proxy_opts.upstream = opts.connect_address;
    std::string error;
    proxy = ChaosProxy::create(std::move(proxy_opts), error);
    ASSERT_NE(proxy, nullptr) << error;
    opts.connect_address = proxy->address();
    if (extra) extra(opts);
  };
}

// --- Address parsing and socket setup --------------------------------------

TEST(TcpTransport, ParsesNumericAddresses) {
  sockaddr_storage ss{};
  socklen_t len = 0;
  std::string error;
  ASSERT_TRUE(parse_socket_address("127.0.0.1:8080", ss, len, error)) << error;
  EXPECT_EQ(ss.ss_family, AF_INET);
  EXPECT_EQ(format_socket_address(ss), "127.0.0.1:8080");

  ASSERT_TRUE(parse_socket_address("[::1]:443", ss, len, error)) << error;
  EXPECT_EQ(ss.ss_family, AF_INET6);
  EXPECT_EQ(format_socket_address(ss), "[::1]:443");
}

TEST(TcpTransport, RejectsBadAddressesNamingThem) {
  sockaddr_storage ss{};
  socklen_t len = 0;
  for (const char* bad : {"nohost", "127.0.0.1", "127.0.0.1:99999",
                          "example.com:80", "[::1]", ":80", "1.2.3.4:-1"}) {
    std::string error;
    EXPECT_FALSE(parse_socket_address(bad, ss, len, error)) << bad;
    EXPECT_NE(error.find(bad), std::string::npos) << error;
  }
}

TEST(TcpTransport, BindsEphemeralPortAndReportsIt) {
  std::string error;
  auto fabric = TcpFabric::create(1, "127.0.0.1:0", error);
  ASSERT_NE(fabric, nullptr) << error;
  EXPECT_NE(fabric->port(), 0);
  EXPECT_EQ(fabric->bound_address(),
            "127.0.0.1:" + std::to_string(fabric->port()));
}

// SO_REUSEADDR in effect: the port a just-destroyed fabric listened on
// (with accepted connections in TIME_WAIT) rebinds immediately.
TEST(TcpTransport, ReusesAddressAfterClose) {
  std::string error;
  std::uint16_t port = 0;
  {
    auto fabric = TcpFabric::create(1, "127.0.0.1:0", error);
    ASSERT_NE(fabric, nullptr) << error;
    port = fabric->port();
    TcpWorkerOptions opts;
    opts.connect_address = fabric->bound_address();
    opts.worker = 0;
    auto wt = TcpWorkerTransport::create(opts, error);
    ASSERT_NE(wt, nullptr) << error;
    auto rx = fabric->recv_any(1000);
    ASSERT_EQ(rx.status, RecvStatus::kFrame);
    fabric->close_all();
  }
  auto again =
      TcpFabric::create(1, "127.0.0.1:" + std::to_string(port), error);
  EXPECT_NE(again, nullptr) << error;
}

TEST(TcpTransport, BindFailureNamesAddressAndErrno) {
  std::string error;
  auto fabric = TcpFabric::create(1, "203.0.113.7:9", error);
  EXPECT_EQ(fabric, nullptr);
  EXPECT_NE(error.find("203.0.113.7:9"), std::string::npos) << error;
  EXPECT_NE(error.find("errno"), std::string::npos) << error;
}

TEST(TcpTransport, ConnectFailureNamesAddressAndErrno) {
  TcpWorkerOptions opts;
  opts.connect_address = "127.0.0.1:1";  // reserved, nothing listens
  opts.worker = 0;
  opts.connect_timeout_ms = 500;
  std::string error;
  auto wt = TcpWorkerTransport::create(opts, error);
  EXPECT_EQ(wt, nullptr);
  EXPECT_NE(error.find("127.0.0.1:1"), std::string::npos) << error;
  EXPECT_NE(error.find("errno"), std::string::npos) << error;
}

// The transport-level fencing mechanics, exercised directly: a refused
// rejoin latches the diagnostic and the connection drops; a banned worker
// cannot rebind.
TEST(TcpTransport, RefusalLatchesDiagnosticAndFencesWorker) {
  std::string error;
  auto fabric = TcpFabric::create(2, "127.0.0.1:0", error);
  ASSERT_NE(fabric, nullptr) << error;
  TcpWorkerOptions opts;
  opts.connect_address = fabric->bound_address();
  opts.worker = 1;
  opts.fingerprint = 0xabcULL;
  opts.reconnect_window_ms = 300;
  auto wt = TcpWorkerTransport::create(opts, error);
  ASSERT_NE(wt, nullptr) << error;

  auto rx = fabric->recv_any(2000);
  ASSERT_EQ(rx.status, RecvStatus::kFrame);
  EXPECT_EQ(rx.worker, 1);
  auto decoded = decode_frame(rx.frame);
  ASSERT_TRUE(decoded.message.has_value()) << decoded.error;
  EXPECT_EQ(decoded.message->type, MsgType::kRejoin);
  EXPECT_EQ(decoded.message->worker, 1u);
  EXPECT_EQ(decoded.message->fingerprint, 0xabcULL);
  EXPECT_FALSE(decoded.message->has_lease);

  Message refused;
  refused.type = MsgType::kRejoinRefused;
  refused.worker = 1;
  refused.diagnostic = "zombie: worker was declared dead";
  ASSERT_TRUE(fabric->send_to(1, encode_frame(refused)));
  fabric->drop_worker(1);

  // The worker sees the refusal as a permanent failure: recv turns kClosed
  // and the diagnostic is latched.
  auto got = wt->recv(2000);
  EXPECT_EQ(got.status, RecvStatus::kClosed);
  EXPECT_NE(wt->refusal().find("zombie"), std::string::npos)
      << wt->refusal();
  fabric->close_all();
}

// --- Clean byte identity ---------------------------------------------------

// The tentpole acceptance: over real sockets the merged output is
// byte-identical to the loopback fabric at 1 node, at N nodes, and to the
// parallel engine at the same shard count.
TEST(TcpFabric, ByteIdenticalAcrossTransportsNodesAndEngine) {
  auto reference = run_fabric_scan(make_config(1));
  ASSERT_TRUE(reference.ok) << reference.error;
  ASSERT_GT(reference.records.size(), 500u);
  const std::string expect = records_fingerprint(reference);

  for (int nodes : {1, 3}) {
    SCOPED_TRACE("nodes=" + std::to_string(nodes));
    auto result = run_fabric_scan(make_tcp_config(nodes));
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_FALSE(result.failed);
    EXPECT_EQ(records_fingerprint(result), expect);
    EXPECT_EQ(result.stats, reference.stats);
    EXPECT_EQ(result.dead_workers, 0);
    EXPECT_EQ(result.reconnects, 0u);
    // Every frame crossed the kernel: the byte counters prove it.
    EXPECT_GT(result.bytes_sent, 0u);
    EXPECT_GT(result.bytes_received, 0u);
  }

  engine::EngineConfig ecfg;
  ecfg.world_specs = topo::paper::isp_specs();
  ecfg.vendors = topo::paper::vendor_catalog();
  ecfg.build.window_bits = 8;
  ecfg.build.seed = 42;
  ecfg.module = &shared_module();
  ecfg.scan.source = kScannerAddr;
  ecfg.scan.seed = 7;
  ecfg.scan.probes_per_sec = 1e6;
  ecfg.threads = 4;  // == the fabric shard count
  auto engine = engine::run_parallel_scan(ecfg);
  ASSERT_TRUE(engine.ok) << engine.error;
  auto tcp = run_fabric_scan(make_tcp_config(2));
  ASSERT_TRUE(tcp.ok) << tcp.error;
  ASSERT_EQ(tcp.records.size(), engine.records.size());
  for (std::size_t i = 0; i < tcp.records.size(); ++i) {
    EXPECT_EQ(tcp.records[i].response.responder,
              engine.records[i].response.responder);
    EXPECT_EQ(tcp.records[i].when, engine.records[i].when);
    EXPECT_EQ(tcp.records[i].shard, engine.records[i].worker);
    EXPECT_EQ(tcp.records[i].raw_slot, engine.records[i].raw_slot);
  }
}

// --- Kill and migrate over sockets -----------------------------------------

// A worker killed mid-shard with its connection closed: over TCP the FIN is
// only a link-down hint — the heartbeat timeout declares death — and the
// survivor resumes from the last streamed checkpoint, byte-identically.
TEST(TcpFabric, KillAndMigrateIsByteIdentical) {
  auto reference = run_fabric_scan(make_config(1));
  ASSERT_TRUE(reference.ok) << reference.error;
  const std::string expect = records_fingerprint(reference);

  auto cfg = make_tcp_config(4);
  cfg.checkpoint_interval_targets = 64;
  cfg.fabric_faults.kills.push_back(
      sim::FabricFaultPlan::Kill{1, 600, /*close_transport=*/true});
  std::ostringstream log;
  cfg.log = &log;
  auto result = run_fabric_scan(cfg);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_FALSE(result.failed) << log.str();
  EXPECT_EQ(records_fingerprint(result), expect) << log.str();
  EXPECT_EQ(result.dead_workers, 1);
  EXPECT_GE(result.reassignments, 1u);
  expect_unique_slots(result);
}

// A silent crash (no close): the socket stays open — the half-open peer —
// and only heartbeat silence reveals the death.
TEST(TcpFabric, SilentCrashHalfOpenSocketFailsOver) {
  auto reference = run_fabric_scan(make_config(1));
  ASSERT_TRUE(reference.ok) << reference.error;

  auto cfg = make_tcp_config(3);
  cfg.fabric_faults.kills.push_back(
      sim::FabricFaultPlan::Kill{2, 400, /*close_transport=*/false});
  auto result = run_fabric_scan(cfg);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_FALSE(result.failed);
  EXPECT_EQ(records_fingerprint(result), records_fingerprint(reference));
  EXPECT_EQ(result.dead_workers, 1);
  expect_unique_slots(result);
}

// --- Chaos proxy: kernel-level stream faults -------------------------------

// Mid-frame connection cut, then kill-and-reconnect: the rejoined worker
// resumes its own lease — no failover, no re-probe below its cursor, and
// the torn frame the coordinator held is discarded with the dead stream.
TEST(TcpFabric, ChaosCutMidFrameReconnectsWithoutFailover) {
  auto reference = run_fabric_scan(make_config(1));
  ASSERT_TRUE(reference.ok) << reference.error;

  auto cfg = make_tcp_config(2);
  std::unique_ptr<ChaosProxy> proxy;
  ChaosProxyOptions popts;
  popts.cut_connection = 0;  // node 1's first connection through this proxy
  popts.cut_after_frames = 4;
  popts.cut_frame_bytes = 3;  // strictly inside the next frame's header
  route_node_through_proxy(cfg, 1, popts, proxy);
  std::ostringstream log;
  cfg.log = &log;
  auto result = run_fabric_scan(cfg);
  proxy->stop();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_FALSE(result.failed) << log.str();
  EXPECT_EQ(proxy->cuts(), 1u);
  EXPECT_EQ(records_fingerprint(result), records_fingerprint(reference))
      << log.str();
  // The acceptance criterion: a reconnect, not a failover — the worker
  // kept its lease and its in-flight shard state.
  EXPECT_GE(result.reconnects, 1u);
  EXPECT_EQ(result.reassignments, 0u) << log.str();
  EXPECT_EQ(result.dead_workers, 0) << log.str();
  EXPECT_NE(log.str().find("rejoined"), std::string::npos) << log.str();
  expect_unique_slots(result);
}

// Pathological segmentation: every chunk re-split to at most 7 bytes, so
// frame headers and bodies arrive in fragments.
TEST(TcpFabric, ChaosSplitSegmentsAreByteIdentical) {
  auto reference = run_fabric_scan(make_config(1));
  ASSERT_TRUE(reference.ok) << reference.error;

  auto cfg = make_tcp_config(2);
  std::unique_ptr<ChaosProxy> proxy;
  ChaosProxyOptions popts;
  popts.split_max_bytes = 7;
  route_node_through_proxy(cfg, 1, popts, proxy);
  auto result = run_fabric_scan(cfg);
  proxy->stop();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_FALSE(result.failed);
  EXPECT_EQ(records_fingerprint(result), records_fingerprint(reference));
  EXPECT_EQ(result.dead_workers, 0);
}

// Coalesced delivery: bytes held until 4 KiB batches, so single reads hand
// the reassembler many frames at once.
TEST(TcpFabric, ChaosCoalescedSegmentsAreByteIdentical) {
  auto reference = run_fabric_scan(make_config(1));
  ASSERT_TRUE(reference.ok) << reference.error;

  auto cfg = make_tcp_config(2);
  std::unique_ptr<ChaosProxy> proxy;
  ChaosProxyOptions popts;
  popts.coalesce_min_bytes = 4096;
  popts.coalesce_hold_ms = 5;
  route_node_through_proxy(cfg, 1, popts, proxy);
  auto result = run_fabric_scan(cfg);
  proxy->stop();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_FALSE(result.failed);
  EXPECT_EQ(records_fingerprint(result), records_fingerprint(reference));
  EXPECT_EQ(result.dead_workers, 0);
}

// Seeded byte-level stalls well under the heartbeat timeout: jittered
// delivery, identical bytes.
TEST(TcpFabric, ChaosStallsAreByteIdentical) {
  auto reference = run_fabric_scan(make_config(1));
  ASSERT_TRUE(reference.ok) << reference.error;

  auto cfg = make_tcp_config(2);
  std::unique_ptr<ChaosProxy> proxy;
  ChaosProxyOptions popts;
  popts.seed = 7;
  popts.stall_probability = 0.3;
  popts.stall_ms = 20;
  route_node_through_proxy(cfg, 1, popts, proxy);
  auto result = run_fabric_scan(cfg);
  proxy->stop();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_FALSE(result.failed);
  EXPECT_EQ(records_fingerprint(result), records_fingerprint(reference));
  EXPECT_EQ(result.dead_workers, 0);
}

// One-direction blackhole: the worker's uplink silently discards forever —
// the half-open peer only the heartbeat timeout can catch. Its shard fails
// over; the merge is still byte-identical.
TEST(TcpFabric, ChaosBlackholeTriggersFailover) {
  auto reference = run_fabric_scan(make_config(1));
  ASSERT_TRUE(reference.ok) << reference.error;

  auto cfg = make_tcp_config(2);
  std::unique_ptr<ChaosProxy> proxy;
  ChaosProxyOptions popts;
  popts.blackhole_connection = 0;
  popts.blackhole_up = true;
  popts.blackhole_after_bytes = 600;
  route_node_through_proxy(cfg, 1, popts, proxy);
  std::ostringstream log;
  cfg.log = &log;
  auto result = run_fabric_scan(cfg);
  proxy->stop();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_FALSE(result.failed) << log.str();
  EXPECT_GT(proxy->blackholed_bytes(), 0u);
  EXPECT_EQ(records_fingerprint(result), records_fingerprint(reference))
      << log.str();
  EXPECT_EQ(result.dead_workers, 1);
  EXPECT_GE(result.reassignments, 1u);
  expect_unique_slots(result);
}

// --- Reconnect handshake refusals ------------------------------------------

// A worker whose stored fingerprint disagrees with the coordinator's is
// refused at its first handshake, with both hashes in the diagnostic.
TEST(TcpFabric, FingerprintMismatchRefusedWithStoredAndComputed) {
  auto cfg = make_tcp_config(2);
  cfg.tcp_worker_tweak = [](int node, TcpWorkerOptions& opts) {
    if (node == 1) opts.fingerprint ^= 0x1;
  };
  std::ostringstream log;
  cfg.log = &log;
  auto result = run_fabric_scan(cfg);
  ASSERT_TRUE(result.ok) << result.error;
  // Node 0 absorbs every shard; the run completes without node 1.
  EXPECT_FALSE(result.failed) << log.str();
  EXPECT_EQ(result.dead_workers, 1);
  bool saw = false;
  for (const auto& err : result.worker_errors) {
    if (err.find("fingerprint mismatch") == std::string::npos) continue;
    saw = true;
    EXPECT_NE(err.find("stored 0x"), std::string::npos) << err;
    EXPECT_NE(err.find("computed 0x"), std::string::npos) << err;
  }
  EXPECT_TRUE(saw) << log.str();

  auto reference = run_fabric_scan(make_config(1));
  ASSERT_TRUE(reference.ok) << reference.error;
  EXPECT_EQ(records_fingerprint(result), records_fingerprint(reference));
}

// A zombie: the worker's link is cut and its reconnect delay outlasts the
// heartbeat timeout, so the coordinator declares it dead and migrates its
// lease first. The late rejoin — proving a now-stale epoch — is refused
// and the worker is fenced; the merge stays byte-identical. The shard
// count is sized so the survivor is still grinding when the zombie knocks.
TEST(TcpFabric, ZombieRejoinRefusedWithStaleEpoch) {
  const int kShards = 192;
  auto cfg = make_tcp_config(2, kShards);
  cfg.heartbeat_interval_ms = 10;
  cfg.heartbeat_timeout_ms = 100;
  std::unique_ptr<ChaosProxy> proxy;
  ChaosProxyOptions popts;
  popts.cut_connection = 0;
  popts.cut_after_frames = 4;
  route_node_through_proxy(cfg, 1, popts, proxy,
                           [](TcpWorkerOptions& opts) {
                             opts.reconnect_delay_ms = 150;
                             opts.reconnect_window_ms = 5000;
                           });
  std::ostringstream log;
  cfg.log = &log;
  auto result = run_fabric_scan(cfg);
  proxy->stop();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_FALSE(result.failed) << log.str();
  EXPECT_EQ(result.dead_workers, 1) << log.str();
  EXPECT_GE(result.reassignments, 1u);
  bool saw = false;
  for (const auto& err : result.worker_errors) {
    if (err.find("rejoin refused") != std::string::npos &&
        err.find("zombie") != std::string::npos) {
      saw = true;
    }
  }
  EXPECT_TRUE(saw) << log.str();
  expect_unique_slots(result);

  auto reference = run_fabric_scan(make_config(1, kShards));
  ASSERT_TRUE(reference.ok) << reference.error;
  EXPECT_EQ(records_fingerprint(result), records_fingerprint(reference));
}

// --- Config validation -----------------------------------------------------

TEST(TcpFabric, RefusesLoopbackMessageFaults) {
  auto cfg = make_tcp_config(2);
  cfg.fabric_faults.messages.duplicate = 0.5;
  auto result = run_fabric_scan(cfg);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("chaos proxy"), std::string::npos)
      << result.error;
}

TEST(TcpFabric, BindFailureFailsRunNamingAddressAndErrno) {
  auto cfg = make_tcp_config(1);
  cfg.listen_address = "203.0.113.7:9";
  auto result = run_fabric_scan(cfg);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("203.0.113.7:9"), std::string::npos)
      << result.error;
  EXPECT_NE(result.error.find("errno"), std::string::npos) << result.error;
}

}  // namespace
}  // namespace xmap::fabric
