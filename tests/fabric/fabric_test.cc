// Fabric integration tests: byte-identical merged results across node
// counts, across kill-and-migrate failovers, and against the parallel
// engine at the same shard count; no permutation slot double-probed after
// fail-over; lease refusal diagnostics; config validation; metrics.
#include "fabric/coordinator.h"

#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/executor.h"
#include "fabric/protocol.h"
#include "fabric/transport.h"
#include "fabric/worker.h"
#include "topology/paper_profiles.h"

namespace xmap::fabric {
namespace {

const net::Ipv6Address kScannerAddr = *net::Ipv6Address::parse("2001:500::1");

const scan::IcmpEchoProbe& shared_module() {
  static const scan::IcmpEchoProbe module{64};
  return module;
}

FabricConfig make_config(int nodes, int shards = 4) {
  FabricConfig cfg;
  cfg.world_specs = topo::paper::isp_specs();
  cfg.vendors = topo::paper::vendor_catalog();
  cfg.build.window_bits = 8;
  cfg.build.seed = 42;
  cfg.module = &shared_module();
  cfg.scan.source = kScannerAddr;
  cfg.scan.seed = 7;
  cfg.scan.probes_per_sec = 1e6;
  cfg.nodes = nodes;
  cfg.shards = shards;
  return cfg;
}

// The byte-stability oracle: the full content of every merged record, in
// merge order. Two runs agree iff these strings are equal.
std::string records_fingerprint(const FabricResult& result) {
  std::ostringstream out;
  for (const auto& rec : result.records) {
    out << rec.when << '|' << rec.response.responder.to_string() << '|'
        << rec.response.probe_dst.to_string() << '|'
        << int(rec.response.kind) << '|' << int(rec.response.icmp_code)
        << '|' << int(rec.response.hop_limit) << '|' << rec.shard << '|'
        << rec.raw_slot << '\n';
  }
  return out.str();
}

std::set<std::string> hop_set(const scan::ResultCollector& collector) {
  std::set<std::string> out;
  for (const auto& hop : collector.last_hops()) {
    out.insert(hop.address.to_string());
  }
  return out;
}

// Acceptance: for a fixed seed the merged output is byte-identical at every
// node count — the node count is pure deployment, invisible in the bytes.
TEST(Fabric, ByteIdenticalAcrossNodeCounts) {
  auto reference = run_fabric_scan(make_config(1));
  ASSERT_TRUE(reference.ok) << reference.error;
  ASSERT_FALSE(reference.failed);
  ASSERT_GT(reference.records.size(), 500u);
  const std::string expect = records_fingerprint(reference);

  for (int nodes : {2, 4}) {
    SCOPED_TRACE("nodes=" + std::to_string(nodes));
    auto result = run_fabric_scan(make_config(nodes));
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_FALSE(result.failed);
    EXPECT_EQ(records_fingerprint(result), expect);
    EXPECT_EQ(result.stats, reference.stats);
    EXPECT_EQ(hop_set(result.collector), hop_set(reference.collector));
    EXPECT_EQ(result.dead_workers, 0);
    EXPECT_EQ(result.reassignments, 0u);
  }
}

// The fabric's shard composition is the engine's thread sub-sharding: a
// fabric run at S shards matches run_parallel_scan at S threads record for
// record (engine worker index == fabric shard index).
TEST(Fabric, MatchesParallelEngineAtSameShardCount) {
  const int kShards = 4;
  auto fabric = run_fabric_scan(make_config(2, kShards));
  ASSERT_TRUE(fabric.ok) << fabric.error;

  engine::EngineConfig ecfg;
  ecfg.world_specs = topo::paper::isp_specs();
  ecfg.vendors = topo::paper::vendor_catalog();
  ecfg.build.window_bits = 8;
  ecfg.build.seed = 42;
  ecfg.module = &shared_module();
  ecfg.scan.source = kScannerAddr;
  ecfg.scan.seed = 7;
  ecfg.scan.probes_per_sec = 1e6;
  ecfg.threads = kShards;
  auto engine = engine::run_parallel_scan(ecfg);
  ASSERT_TRUE(engine.ok) << engine.error;

  ASSERT_EQ(fabric.records.size(), engine.records.size());
  for (std::size_t i = 0; i < fabric.records.size(); ++i) {
    EXPECT_EQ(fabric.records[i].response.responder,
              engine.records[i].response.responder);
    EXPECT_EQ(fabric.records[i].response.probe_dst,
              engine.records[i].response.probe_dst);
    EXPECT_EQ(fabric.records[i].when, engine.records[i].when);
    EXPECT_EQ(fabric.records[i].shard, engine.records[i].worker);
  }
  EXPECT_EQ(fabric.stats.sent, engine.stats.sent);
  EXPECT_EQ(fabric.stats.validated, engine.stats.validated);
  EXPECT_EQ(hop_set(fabric.collector), hop_set(engine.collector));
}

// Acceptance (the tentpole): kill a node mid-shard; the survivor resumes
// from the dead worker's last streamed checkpoint and the merged output is
// byte-identical to the failure-free run. Also asserts the no-double-probe
// invariant: no (shard, raw_slot) pair appears twice in the merge.
TEST(Fabric, KillAndMigrateIsByteIdentical) {
  auto reference = run_fabric_scan(make_config(1));
  ASSERT_TRUE(reference.ok) << reference.error;
  const std::string expect = records_fingerprint(reference);

  auto cfg = make_config(4);
  cfg.checkpoint_interval_targets = 64;
  cfg.fabric_faults.kills.push_back(
      sim::FabricFaultPlan::Kill{1, 600, /*close_transport=*/true});
  std::ostringstream log;
  cfg.log = &log;
  auto result = run_fabric_scan(cfg);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_FALSE(result.failed) << log.str();

  EXPECT_EQ(records_fingerprint(result), expect) << log.str();
  EXPECT_EQ(result.dead_workers, 1);
  EXPECT_GE(result.reassignments, 1u);
  EXPECT_NE(log.str().find("failover"), std::string::npos) << log.str();

  // No permutation slot is probed twice below a handoff cursor: every
  // record's (shard, raw_slot) is unique in the merge (a duplicate would
  // mean a slot was re-probed and its response double-counted).
  std::set<std::pair<int, std::uint64_t>> slots;
  for (const auto& rec : result.records) {
    EXPECT_TRUE(slots.emplace(rec.shard, rec.raw_slot).second)
        << "shard " << rec.shard << " slot " << rec.raw_slot
        << " appears twice";
  }

  // The failover is visible in the shard ledger: some shard has a second
  // epoch and two lease holders, the rest completed in one.
  int failovers = 0;
  for (const auto& shard : result.shards) {
    EXPECT_TRUE(shard.completed);
    if (shard.epochs > 1) {
      ++failovers;
      EXPECT_GE(shard.workers.size(), 2u);
      EXPECT_EQ(shard.workers.front(), 1);  // the killed node held it first
    }
  }
  EXPECT_GE(failovers, 1);
}

// The kill above lands before the stable cursor advances (responses still
// in flight), so the handoff is a full shard rescan. This variant paces
// the scan slowly enough (sim time is free) that checkpoints carry a
// nonzero stable cursor: the survivor must fast-forward past the kept
// records and regenerate only the tail — still byte-identical, and the
// ledger shows the nonzero handoff.
TEST(Fabric, FailoverResumesFromNonzeroCursor) {
  auto slow = [](int nodes) {
    auto cfg = make_config(nodes, 8);
    cfg.scan.probes_per_sec = 1000;  // sim-paced: lifecycles complete
    return cfg;
  };
  auto reference = run_fabric_scan(slow(1));
  ASSERT_TRUE(reference.ok) << reference.error;

  auto cfg = slow(4);
  cfg.checkpoint_interval_targets = 64;
  cfg.fabric_faults.kills.push_back(
      sim::FabricFaultPlan::Kill{1, 3000, /*close_transport=*/true});
  auto result = run_fabric_scan(cfg);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_FALSE(result.failed);
  EXPECT_EQ(records_fingerprint(result), records_fingerprint(reference));
  EXPECT_EQ(result.dead_workers, 1);
  // The handoff cursor was past zero: slots below it were never re-probed
  // (the byte-identity above plus the unique-slot scan proves the rest).
  EXPECT_GT(result.resumed_slots, 0u);
  bool nonzero_handoff = false;
  for (const auto& shard : result.shards) {
    if (shard.epochs > 1 && shard.resumed_from_slot > 0) {
      nonzero_handoff = true;
    }
  }
  EXPECT_TRUE(nonzero_handoff);
  std::set<std::pair<int, std::uint64_t>> slots;
  for (const auto& rec : result.records) {
    EXPECT_TRUE(slots.emplace(rec.shard, rec.raw_slot).second);
  }
}

// A silent crash (no transport close) is detected by heartbeat timeout
// instead of a connection drop — and the result is still byte-identical.
TEST(Fabric, SilentCrashDetectedByHeartbeatTimeout) {
  auto reference = run_fabric_scan(make_config(1));
  ASSERT_TRUE(reference.ok) << reference.error;

  auto cfg = make_config(2);
  cfg.checkpoint_interval_targets = 64;
  cfg.heartbeat_interval_ms = 10;
  cfg.heartbeat_timeout_ms = 80;
  cfg.fabric_faults.kills.push_back(
      sim::FabricFaultPlan::Kill{0, 500, /*close_transport=*/false});
  auto result = run_fabric_scan(cfg);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_FALSE(result.failed);
  EXPECT_EQ(records_fingerprint(result), records_fingerprint(reference));
  EXPECT_EQ(result.dead_workers, 1);
  EXPECT_GT(result.missed_heartbeats, 0u);
}

// Message-level chaos — duplication, truncation, delivery delay, heartbeat
// drops — is absorbed by the checksum + stop-and-wait layers: some frames
// are rejected or retransmitted, but the merged bytes never change.
TEST(Fabric, HostileTransportPreservesByteIdentity) {
  auto reference = run_fabric_scan(make_config(1));
  ASSERT_TRUE(reference.ok) << reference.error;

  auto cfg = make_config(3);
  cfg.fabric_faults.seed = 1234;
  cfg.fabric_faults.messages.duplicate = 0.3;
  cfg.fabric_faults.messages.truncate = 0.2;
  cfg.fabric_faults.messages.delay_ms = 5.0;
  cfg.fabric_faults.messages.drop_heartbeat = 0.3;
  auto result = run_fabric_scan(cfg);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_FALSE(result.failed);
  EXPECT_EQ(records_fingerprint(result), records_fingerprint(reference));
  // Truncated frames fail the checksum and vanish; the reliable layer
  // retransmits through them.
  EXPECT_GT(result.frames_rejected, 0u);
  EXPECT_GT(result.retransmits, 0u);
}

TEST(Fabric, FabricMetricsCountersExported) {
  auto cfg = make_config(2);
  cfg.fabric_faults.kills.push_back(
      sim::FabricFaultPlan::Kill{0, 400, /*close_transport=*/true});
  cfg.checkpoint_interval_targets = 64;
  auto result = run_fabric_scan(cfg);
  ASSERT_TRUE(result.ok) << result.error;

  const auto counter = [&](const char* name) -> std::uint64_t {
    const auto* entry = result.metrics.find(name);
    EXPECT_NE(entry, nullptr) << name << " not exported";
    return entry ? entry->value : 0;
  };
  EXPECT_EQ(counter("fabric_workers_dead_total"),
            static_cast<std::uint64_t>(result.dead_workers));
  EXPECT_EQ(counter("fabric_reassignments_total"), result.reassignments);
  EXPECT_EQ(counter("fabric_resumed_slots_total"), result.resumed_slots);
  EXPECT_EQ(counter("fabric_retransmits_total"), result.retransmits);
  EXPECT_EQ(counter("fabric_frames_rejected_total"),
            result.frames_rejected);
  EXPECT_EQ(counter("fabric_shards_completed_total"),
            static_cast<std::uint64_t>(cfg.shards));
}

TEST(Fabric, RejectsBadConfigs) {
  auto cfg = make_config(0);
  EXPECT_FALSE(run_fabric_scan(cfg).ok);  // nodes < 1

  cfg = make_config(kMaxNodes + 1);
  EXPECT_FALSE(run_fabric_scan(cfg).ok);

  cfg = make_config(2);
  cfg.module = nullptr;
  EXPECT_FALSE(run_fabric_scan(cfg).ok);

  cfg = make_config(2);
  cfg.world_specs.clear();
  EXPECT_FALSE(run_fabric_scan(cfg).ok);

  cfg = make_config(2);
  cfg.shards = 0;
  EXPECT_FALSE(run_fabric_scan(cfg).ok);

  cfg = make_config(2);
  cfg.scan.adaptive_rate = true;  // no stable cursor under adaptive pacing
  auto result = run_fabric_scan(cfg);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("adaptive"), std::string::npos)
      << result.error;

  cfg = make_config(2);
  cfg.heartbeat_timeout_ms = cfg.heartbeat_interval_ms;  // timeout <= beat
  EXPECT_FALSE(run_fabric_scan(cfg).ok);

  cfg = make_config(2);
  cfg.fabric_faults.kills.push_back(
      sim::FabricFaultPlan::Kill{5, 100, false});  // node out of range
  EXPECT_FALSE(run_fabric_scan(cfg).ok);
}

// ---- manually driven worker: lease refusal diagnostics ---------------------

// A minimal coordinator side: acks every reliable frame and returns the
// first message of the wanted type.
Message await_message(LoopbackFabric& fabric, MsgType want) {
  for (int spin = 0; spin < 400; ++spin) {
    auto recv = fabric.recv_any(25);
    if (recv.status != RecvStatus::kFrame) continue;
    auto decoded = decode_frame(recv.frame);
    if (!decoded.message) continue;
    if (decoded.message->seq != 0) {
      Message ack;
      ack.type = MsgType::kAck;
      ack.ack_seq = decoded.message->seq;
      fabric.send_to(recv.worker, encode_frame(ack));
    }
    if (decoded.message->type == want) return *decoded.message;
  }
  ADD_FAILURE() << "timed out waiting for " << msg_type_name(want);
  return Message{};
}

struct ManualWorker {
  LoopbackFabric fabric{1, nullptr};
  WorkerConfig cfg;
  std::vector<topo::IspSpec> specs = topo::paper::isp_specs();
  std::vector<topo::VendorProfile> vendors = topo::paper::vendor_catalog();

  ManualWorker() {
    cfg.id = 0;
    cfg.world_specs = &specs;
    cfg.vendors = &vendors;
    cfg.build.window_bits = 8;
    cfg.build.seed = 42;
    cfg.module = &shared_module();
    cfg.base.source = kScannerAddr;
    cfg.base.seed = 7;
    cfg.base.probes_per_sec = 1e6;
    cfg.base.targets.push_back(*scan::TargetSpec::parse("2001:db8::/32-40"));
    cfg.base.targets.push_back(*scan::TargetSpec::parse("2001:db9::/32-40"));
    cfg.fingerprint = 0x1111222233334444ULL;
    cfg.heartbeat_interval_ms = 10;
  }

  // Runs `body` against a live worker, then shuts it down cleanly.
  void drive(const std::function<void()>& body) {
    FabricWorker worker{cfg, fabric.worker_endpoint(0)};
    std::thread thread{[&] { worker.run(); }};
    (void)await_message(fabric, MsgType::kHello);
    body();
    Message bye;
    bye.type = MsgType::kBye;
    fabric.send_to(0, encode_frame(bye));
    thread.join();
    EXPECT_TRUE(worker.error().empty()) << worker.error();
  }
};

// Satellite requirement: a worker offered a lease stamped with a foreign
// scan fingerprint refuses with a "stored ..., computed ..." diagnostic.
TEST(FabricWorkerRefusal, FingerprintMismatchRefusedWithDiagnostic) {
  ManualWorker rig;
  rig.drive([&] {
    Message assign;
    assign.type = MsgType::kAssign;
    assign.seq = 1;
    assign.shard = 3;
    assign.epoch = 2;
    assign.shards_total = 4;
    assign.fingerprint = 0x9999888877776666ULL;  // not this worker's scan
    rig.fabric.send_to(0, encode_frame(assign));

    const Message refuse = await_message(rig.fabric, MsgType::kRefuse);
    EXPECT_EQ(refuse.shard, 3u);
    EXPECT_EQ(refuse.epoch, 2u);
    EXPECT_NE(refuse.diagnostic.find("fingerprint mismatch"),
              std::string::npos)
        << refuse.diagnostic;
    EXPECT_NE(refuse.diagnostic.find("stored 0x9999888877776666"),
              std::string::npos)
        << refuse.diagnostic;
    EXPECT_NE(refuse.diagnostic.find("computed 0x1111222233334444"),
              std::string::npos)
        << refuse.diagnostic;
  });
}

// Satellite requirement: a resume handoff whose cursor has the wrong
// spec-step arity (a torn checkpoint) is refused, never silently mangled.
TEST(FabricWorkerRefusal, TornResumeCursorRefusedWithDiagnostic) {
  ManualWorker rig;
  rig.drive([&] {
    Message assign;
    assign.type = MsgType::kAssign;
    assign.seq = 1;
    assign.shard = 0;
    assign.epoch = 1;
    assign.shards_total = 4;
    assign.fingerprint = rig.cfg.fingerprint;  // right scan...
    assign.has_resume = true;
    assign.cursor.frontier_slot = 512;
    assign.cursor.spec_steps = {7};  // ...but 1 step for 2 target specs
    rig.fabric.send_to(0, encode_frame(assign));

    const Message refuse = await_message(rig.fabric, MsgType::kRefuse);
    EXPECT_NE(refuse.diagnostic.find("torn checkpoint cursor"),
              std::string::npos)
        << refuse.diagnostic;
    EXPECT_NE(refuse.diagnostic.find("stored 1 spec steps"),
              std::string::npos)
        << refuse.diagnostic;
    EXPECT_NE(refuse.diagnostic.find("computed 2 target specs"),
              std::string::npos)
        << refuse.diagnostic;
  });
}

// A fabric whose every node dies leaves the scan cleanly failed — partial
// records, the failure flagged, the shard ledger naming the incomplete
// shards — rather than hanging or crashing.
TEST(Fabric, AllNodesDeadFailsCleanly) {
  auto cfg = make_config(2);
  cfg.checkpoint_interval_targets = 64;
  cfg.fabric_faults.kills.push_back(
      sim::FabricFaultPlan::Kill{0, 300, /*close_transport=*/true});
  cfg.fabric_faults.kills.push_back(
      sim::FabricFaultPlan::Kill{1, 300, /*close_transport=*/true});
  auto result = run_fabric_scan(cfg);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.failed);
  EXPECT_EQ(result.dead_workers, 2);
  bool any_incomplete = false;
  for (const auto& shard : result.shards) {
    if (!shard.completed) any_incomplete = true;
  }
  EXPECT_TRUE(any_incomplete);
}

}  // namespace
}  // namespace xmap::fabric
