// ReliableLink state-machine tests: stop-and-wait sequencing, bounded
// exponential backoff with deterministic seeded jitter, retransmission
// budget death, and exactly-once in-order receiver delivery.
#include "fabric/channel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

namespace xmap::fabric {
namespace {

using Clock = ReliableLink::Clock;
using std::chrono::milliseconds;

Message heartbeat_msg(std::uint32_t worker) {
  Message msg;
  msg.type = MsgType::kHeartbeat;
  msg.worker = worker;
  return msg;
}

Message with_seq(MsgType type, std::uint64_t seq) {
  Message msg;
  msg.type = type;
  msg.seq = seq;
  return msg;
}

TEST(BackoffPolicy, DoublesAndCaps) {
  BackoffPolicy policy;
  policy.base_ms = 10;
  policy.max_ms = 500;
  policy.jitter_ms = 0;  // isolate the deterministic schedule
  EXPECT_DOUBLE_EQ(policy.delay_ms(1, 0), 10);
  EXPECT_DOUBLE_EQ(policy.delay_ms(1, 1), 20);
  EXPECT_DOUBLE_EQ(policy.delay_ms(1, 2), 40);
  EXPECT_DOUBLE_EQ(policy.delay_ms(1, 5), 320);
  EXPECT_DOUBLE_EQ(policy.delay_ms(1, 6), 500);   // capped
  EXPECT_DOUBLE_EQ(policy.delay_ms(1, 11), 500);  // stays capped
}

TEST(BackoffPolicy, JitterIsSeededAndBounded) {
  BackoffPolicy policy;
  policy.base_ms = 10;
  policy.jitter_ms = 5;
  policy.seed = 99;
  BackoffPolicy same = policy;
  BackoffPolicy other = policy;
  other.seed = 100;
  bool any_differs = false;
  for (std::uint64_t seq = 1; seq <= 8; ++seq) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      const double d = policy.delay_ms(seq, attempt);
      // Same seed, same key -> same delay; jitter within [0, jitter_ms).
      EXPECT_DOUBLE_EQ(d, same.delay_ms(seq, attempt));
      const double base = std::min(policy.base_ms * (1 << attempt),
                                   policy.max_ms);
      EXPECT_GE(d, base);
      EXPECT_LT(d, base + policy.jitter_ms);
      if (d != other.delay_ms(seq, attempt)) any_differs = true;
    }
  }
  EXPECT_TRUE(any_differs);  // a different seed decorrelates the schedule
}

TEST(ReliableLink, StampsSequenceNumbersFromOne) {
  ReliableLink link{BackoffPolicy{}};
  link.enqueue(heartbeat_msg(0));
  link.enqueue(heartbeat_msg(0));
  const auto t0 = Clock::now();
  auto wire = link.poll(t0);
  ASSERT_EQ(wire.frames.size(), 1u);  // stop-and-wait: one in flight
  auto first = decode_frame(wire.frames[0]);
  ASSERT_TRUE(first.message.has_value());
  EXPECT_EQ(first.message->seq, 1u);

  link.on_ack(1);
  wire = link.poll(t0);
  ASSERT_EQ(wire.frames.size(), 1u);
  auto second = decode_frame(wire.frames[0]);
  ASSERT_TRUE(second.message.has_value());
  EXPECT_EQ(second.message->seq, 2u);

  link.on_ack(2);
  EXPECT_FALSE(link.busy());
  EXPECT_TRUE(link.poll(t0).frames.empty());
}

TEST(ReliableLink, RetransmitsAfterDeadlineVerbatim) {
  BackoffPolicy policy;
  policy.base_ms = 10;
  policy.jitter_ms = 0;
  ReliableLink link{policy};
  link.enqueue(heartbeat_msg(0));
  const auto t0 = Clock::now();
  auto wire = link.poll(t0);
  ASSERT_EQ(wire.frames.size(), 1u);
  const std::string original = wire.frames[0];
  ASSERT_TRUE(wire.next_deadline.has_value());

  // Before the deadline: silence.
  EXPECT_TRUE(link.poll(t0 + milliseconds(5)).frames.empty());
  // After it: the identical frame again, and the counter ticks.
  wire = link.poll(t0 + milliseconds(11));
  ASSERT_EQ(wire.frames.size(), 1u);
  EXPECT_EQ(wire.frames[0], original);
  EXPECT_EQ(link.retransmits(), 1u);
  EXPECT_FALSE(link.dead());
}

TEST(ReliableLink, DiesAfterRetransmissionBudget) {
  BackoffPolicy policy;
  policy.base_ms = 1;
  policy.max_ms = 1;
  policy.jitter_ms = 0;
  policy.max_attempts = 4;
  ReliableLink link{policy};
  link.enqueue(heartbeat_msg(0));
  auto now = Clock::now();
  int transmissions = 0;
  for (int i = 0; i < 20 && !link.dead(); ++i) {
    transmissions += static_cast<int>(link.poll(now).frames.size());
    now += milliseconds(2);
  }
  EXPECT_TRUE(link.dead());
  EXPECT_EQ(transmissions, 4);
  EXPECT_EQ(link.retransmits(), 3u);
  // Dead is latched; nothing further goes on the wire.
  EXPECT_TRUE(link.poll(now).frames.empty());
}

TEST(ReliableLink, IgnoresAcksForUnknownSequences) {
  ReliableLink link{BackoffPolicy{}};
  link.enqueue(heartbeat_msg(0));
  (void)link.poll(Clock::now());
  link.on_ack(99);  // not the in-flight frame
  EXPECT_TRUE(link.busy());
  link.on_ack(1);
  EXPECT_FALSE(link.busy());
}

TEST(ReliableLink, ReceiverDeliversExactlyOnceInOrder) {
  ReliableLink link{BackoffPolicy{}};

  auto in1 = link.on_reliable(with_seq(MsgType::kRecords, 1));
  EXPECT_TRUE(in1.deliver);
  ASSERT_FALSE(in1.ack.empty());
  auto ack1 = decode_frame(in1.ack);
  ASSERT_TRUE(ack1.message.has_value());
  EXPECT_EQ(ack1.message->type, MsgType::kAck);
  EXPECT_EQ(ack1.message->ack_seq, 1u);

  // A duplicate (retransmission after a lost ack) is re-acked, not
  // re-delivered.
  auto dup = link.on_reliable(with_seq(MsgType::kRecords, 1));
  EXPECT_FALSE(dup.deliver);
  ASSERT_FALSE(dup.ack.empty());
  auto ack_dup = decode_frame(dup.ack);
  ASSERT_TRUE(ack_dup.message.has_value());
  EXPECT_EQ(ack_dup.message->ack_seq, 1u);

  // Ahead-of-sequence frames (a misbehaving peer under stop-and-wait) are
  // dropped without an ack, so the peer keeps retransmitting.
  auto ahead = link.on_reliable(with_seq(MsgType::kRecords, 5));
  EXPECT_FALSE(ahead.deliver);
  EXPECT_TRUE(ahead.ack.empty());

  auto in2 = link.on_reliable(with_seq(MsgType::kCheckpoint, 2));
  EXPECT_TRUE(in2.deliver);
}

TEST(ReliableLink, FifoAcrossManyFrames) {
  ReliableLink sender{BackoffPolicy{}};
  ReliableLink receiver{BackoffPolicy{}};
  for (int i = 0; i < 10; ++i) {
    Message msg;
    msg.type = MsgType::kRecords;
    msg.shard = static_cast<std::uint32_t>(i);
    sender.enqueue(msg);
  }
  std::vector<std::uint32_t> delivered;
  auto now = Clock::now();
  while (sender.busy()) {
    auto wire = sender.poll(now);
    for (const auto& frame : wire.frames) {
      auto decoded = decode_frame(frame);
      ASSERT_TRUE(decoded.message.has_value());
      auto inbound = receiver.on_reliable(*decoded.message);
      if (inbound.deliver) delivered.push_back(decoded.message->shard);
      auto ack = decode_frame(inbound.ack);
      ASSERT_TRUE(ack.message.has_value());
      sender.on_ack(ack.message->ack_seq);
    }
  }
  ASSERT_EQ(delivered.size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(delivered[i], i);
  EXPECT_EQ(sender.retransmits(), 0u);
}

}  // namespace
}  // namespace xmap::fabric
