// Frame protocol round-trips and rejection diagnostics: every message type
// survives encode -> decode bit-exactly, and every malformed frame class
// (magic, length, checksum, type, body bounds, count-prefix abuse) is
// rejected with a precise diagnostic.
#include "fabric/protocol.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace xmap::fabric {
namespace {

net::Ipv6Address addr(const char* s) { return *net::Ipv6Address::parse(s); }

WireRecord sample_record(int i) {
  WireRecord rec;
  rec.response.kind = static_cast<scan::ResponseKind>(
      i % (static_cast<int>(scan::ResponseKind::kOther) + 1));
  rec.response.responder = addr("2001:db8::1");
  rec.response.probe_dst = addr("2001:db8:ffff::2");
  rec.response.icmp_code = static_cast<std::uint8_t>(i);
  rec.response.hop_limit = static_cast<std::uint8_t>(64 - i % 8);
  rec.when = 1000 + static_cast<std::uint64_t>(i) * 17;
  rec.raw_slot = 4096 + static_cast<std::uint64_t>(i);
  return rec;
}

void expect_roundtrip(const Message& msg) {
  const std::string frame = encode_frame(msg);
  auto decoded = decode_frame(frame);
  ASSERT_TRUE(decoded.message.has_value()) << decoded.error;
  const Message& got = *decoded.message;
  EXPECT_EQ(got.type, msg.type);
  EXPECT_EQ(got.seq, msg.seq);
  EXPECT_EQ(got.worker, msg.worker);
  EXPECT_EQ(got.ack_seq, msg.ack_seq);
  EXPECT_EQ(got.shard, msg.shard);
  EXPECT_EQ(got.epoch, msg.epoch);
  EXPECT_EQ(got.shards_total, msg.shards_total);
  EXPECT_EQ(got.budget_cut, msg.budget_cut);
  EXPECT_EQ(got.fingerprint, msg.fingerprint);
  EXPECT_EQ(got.has_resume, msg.has_resume);
  EXPECT_EQ(got.has_lease, msg.has_lease);
  EXPECT_EQ(got.cursor.frontier_slot, msg.cursor.frontier_slot);
  EXPECT_EQ(got.cursor.spec_steps, msg.cursor.spec_steps);
  EXPECT_EQ(got.stats, msg.stats);
  EXPECT_EQ(got.diagnostic, msg.diagnostic);
  ASSERT_EQ(got.records.size(), msg.records.size());
  for (std::size_t i = 0; i < msg.records.size(); ++i) {
    EXPECT_EQ(got.records[i].response.kind, msg.records[i].response.kind);
    EXPECT_EQ(got.records[i].response.responder,
              msg.records[i].response.responder);
    EXPECT_EQ(got.records[i].response.probe_dst,
              msg.records[i].response.probe_dst);
    EXPECT_EQ(got.records[i].response.icmp_code,
              msg.records[i].response.icmp_code);
    EXPECT_EQ(got.records[i].response.hop_limit,
              msg.records[i].response.hop_limit);
    EXPECT_EQ(got.records[i].when, msg.records[i].when);
    EXPECT_EQ(got.records[i].raw_slot, msg.records[i].raw_slot);
  }
}

TEST(FabricProtocol, RoundTripsEveryMessageType) {
  Message hello;
  hello.type = MsgType::kHello;
  hello.seq = 1;
  hello.worker = 7;
  expect_roundtrip(hello);

  Message assign;
  assign.type = MsgType::kAssign;
  assign.seq = 3;
  assign.shard = 5;
  assign.epoch = 2;
  assign.shards_total = 8;
  assign.budget_cut = 123456;
  assign.fingerprint = 0xdeadbeefcafef00dULL;
  assign.has_resume = true;
  assign.cursor.frontier_slot = 977;
  assign.cursor.spec_steps = {12, 0, 55, 7};
  expect_roundtrip(assign);

  // The no-resume variant round-trips too (fixed Assign layout: the cursor
  // travels either way, has_resume gates whether the worker honours it).
  assign.has_resume = false;
  expect_roundtrip(assign);

  Message refuse;
  refuse.type = MsgType::kRefuse;
  refuse.seq = 2;
  refuse.shard = 5;
  refuse.epoch = 2;
  refuse.diagnostic =
      "shard 5: scan fingerprint mismatch (stored 0x1, computed 0x2)";
  expect_roundtrip(refuse);

  Message heartbeat;
  heartbeat.type = MsgType::kHeartbeat;
  heartbeat.worker = 3;
  expect_roundtrip(heartbeat);

  Message ack;
  ack.type = MsgType::kAck;
  ack.ack_seq = 42;
  expect_roundtrip(ack);

  Message records;
  records.type = MsgType::kRecords;
  records.seq = 9;
  records.shard = 1;
  records.epoch = 1;
  for (int i = 0; i < 200; ++i) records.records.push_back(sample_record(i));
  expect_roundtrip(records);

  Message ckpt;
  ckpt.type = MsgType::kCheckpoint;
  ckpt.seq = 10;
  ckpt.shard = 1;
  ckpt.epoch = 1;
  ckpt.cursor.frontier_slot = 512;
  ckpt.cursor.spec_steps = {1, 2, 3};
  ckpt.stats.sent = 100;
  ckpt.stats.received = 80;
  ckpt.stats.validated = 75;
  expect_roundtrip(ckpt);

  Message done;
  done.type = MsgType::kShardDone;
  done.seq = 11;
  done.shard = 1;
  done.epoch = 1;
  done.stats.sent = 480;
  done.stats.targets_generated = 480;
  expect_roundtrip(done);

  Message bye;
  bye.type = MsgType::kBye;
  expect_roundtrip(bye);

  Message rejoin;
  rejoin.type = MsgType::kRejoin;
  rejoin.worker = 4;
  rejoin.fingerprint = 0x0123456789abcdefULL;
  rejoin.has_lease = true;
  rejoin.shard = 6;
  rejoin.epoch = 3;
  expect_roundtrip(rejoin);

  // The no-lease variant: shard/epoch travel zeroed, has_lease gates them.
  rejoin.has_lease = false;
  rejoin.shard = 0;
  rejoin.epoch = 0;
  expect_roundtrip(rejoin);

  Message rejoin_ok;
  rejoin_ok.type = MsgType::kRejoinOk;
  rejoin_ok.worker = 4;
  expect_roundtrip(rejoin_ok);

  Message rejoin_refused;
  rejoin_refused.type = MsgType::kRejoinRefused;
  rejoin_refused.worker = 4;
  rejoin_refused.diagnostic =
      "stale lease on shard 6 (held epoch 3, current epoch 5)";
  expect_roundtrip(rejoin_refused);
}

// The wire size of one record is load-bearing: the decoder validates count
// prefixes against it before allocating, so it must match what put_record
// actually writes. A 128-record batch (the default flush size) must decode.
TEST(FabricProtocol, RecordBatchSizeMatchesWireConstant) {
  Message batch;
  batch.type = MsgType::kRecords;
  batch.seq = 1;
  for (int i = 0; i < 128; ++i) batch.records.push_back(sample_record(i));
  const std::string one = encode_frame([] {
    Message m;
    m.type = MsgType::kRecords;
    m.seq = 1;
    return m;
  }());
  const std::string many = encode_frame(batch);
  EXPECT_EQ(many.size() - one.size(), 128 * kWireRecordBytes);
  auto decoded = decode_frame(many);
  ASSERT_TRUE(decoded.message.has_value()) << decoded.error;
  EXPECT_EQ(decoded.message->records.size(), 128u);
}

TEST(FabricProtocol, RejectsBadMagic) {
  Message msg;
  msg.type = MsgType::kHeartbeat;
  std::string frame = encode_frame(msg);
  frame[0] = 'Z';
  auto decoded = decode_frame(frame);
  EXPECT_FALSE(decoded.message.has_value());
  EXPECT_NE(decoded.error.find("magic"), std::string::npos) << decoded.error;
}

TEST(FabricProtocol, RejectsShortAndTruncatedFrames) {
  EXPECT_FALSE(decode_frame("").message.has_value());
  EXPECT_FALSE(decode_frame("XFB").message.has_value());

  Message msg;
  msg.type = MsgType::kHello;
  msg.seq = 1;
  msg.worker = 2;
  const std::string frame = encode_frame(msg);
  for (std::size_t len = 0; len < frame.size(); ++len) {
    auto decoded = decode_frame(frame.substr(0, len));
    EXPECT_FALSE(decoded.message.has_value()) << "length " << len;
    EXPECT_FALSE(decoded.error.empty()) << "length " << len;
  }
}

TEST(FabricProtocol, RejectsTrailingBytes) {
  Message msg;
  msg.type = MsgType::kAck;
  msg.ack_seq = 1;
  auto decoded = decode_frame(encode_frame(msg) + "x");
  EXPECT_FALSE(decoded.message.has_value());
}

TEST(FabricProtocol, RejectsChecksumMismatchWithStoredAndComputed) {
  Message msg;
  msg.type = MsgType::kHeartbeat;
  msg.worker = 1;
  std::string frame = encode_frame(msg);
  frame[frame.size() - 1] ^= 0x01;  // corrupt the stored checksum
  auto decoded = decode_frame(frame);
  ASSERT_FALSE(decoded.message.has_value());
  EXPECT_NE(decoded.error.find("checksum mismatch"), std::string::npos)
      << decoded.error;
  EXPECT_NE(decoded.error.find("stored"), std::string::npos);
  EXPECT_NE(decoded.error.find("computed"), std::string::npos);
}

TEST(FabricProtocol, RejectsUnknownType) {
  // Build a frame whose only defect is an out-of-range type byte: payload
  // must be re-checksummed so the checksum check passes and the type check
  // is what fires.
  Message msg;
  msg.type = MsgType::kHeartbeat;
  msg.worker = 1;
  std::string frame = encode_frame(msg);
  const std::size_t payload_len = frame.size() - kFrameOverhead;
  // 15 is the first value past kRejoinRefused — the smallest out-of-range
  // type.
  for (std::uint8_t bad : {std::uint8_t{0}, std::uint8_t{15},
                           std::uint8_t{255}}) {
    std::string doctored = frame;
    doctored[8] = static_cast<char>(bad);
    const std::uint64_t sum =
        frame_checksum(std::string_view(doctored).substr(8, payload_len));
    std::memcpy(doctored.data() + 8 + payload_len, &sum, 8);
    auto decoded = decode_frame(doctored);
    EXPECT_FALSE(decoded.message.has_value()) << "type " << int(bad);
    EXPECT_NE(decoded.error.find("type"), std::string::npos) << decoded.error;
  }
}

// A hostile count prefix (huge record count over a small body) must be
// rejected by the pre-allocation bound check, not drive a giant reserve.
TEST(FabricProtocol, RejectsLyingRecordCountPrefix) {
  Message msg;
  msg.type = MsgType::kRecords;
  msg.seq = 1;
  msg.shard = 0;
  msg.epoch = 0;
  std::string frame = encode_frame(msg);  // zero records
  const std::size_t payload_len = frame.size() - kFrameOverhead;
  // The count prefix is the last u32 of the payload (no record bytes
  // follow). Rewrite it to claim 2^31 records and fix the checksum.
  const std::uint32_t lie = 1u << 31;
  std::memcpy(frame.data() + 8 + payload_len - 4, &lie, 4);
  const std::uint64_t sum =
      frame_checksum(std::string_view(frame).substr(8, payload_len));
  std::memcpy(frame.data() + 8 + payload_len, &sum, 8);
  auto decoded = decode_frame(frame);
  ASSERT_FALSE(decoded.message.has_value());
  EXPECT_NE(decoded.error.find("exceeds remaining"), std::string::npos)
      << decoded.error;
}

TEST(FabricProtocol, RejectsOversizedLengthPrefix) {
  Message msg;
  msg.type = MsgType::kHeartbeat;
  std::string frame = encode_frame(msg);
  const std::uint32_t huge = static_cast<std::uint32_t>(kMaxPayload + 1);
  std::memcpy(frame.data() + 4, &huge, 4);
  auto decoded = decode_frame(frame);
  ASSERT_FALSE(decoded.message.has_value());
  EXPECT_NE(decoded.error.find("payload"), std::string::npos)
      << decoded.error;
}

TEST(FabricProtocol, ChecksumIsFnv1aOverPayload) {
  // Pin the checksum primitive: FNV-1a 64 with the standard offset basis
  // and prime, byte order as written.
  EXPECT_EQ(frame_checksum(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(frame_checksum("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(frame_checksum("foobar"), 0x85944171f73967e8ULL);
}

}  // namespace
}  // namespace xmap::fabric
