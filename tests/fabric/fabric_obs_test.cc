// Fabric observability tests (the tentpole acceptance checks):
//
//   * the deployment trace of a kill-and-migrate run is one connected
//     causal span tree across the coordinator and worker tracks — every
//     parent link resolves, span ids are unique, and the failover story
//     (death verdict -> lease migration -> resumed shard_run) hangs off
//     the dead shard's spans;
//   * scan-content trace and metrics shipped over the protocol are
//     byte-identical to the parallel engine at the same shard count,
//     including across failovers (full-shard replay on resume);
//   * flight recorders dump JSONL on worker death and capture refusals;
//   * the health timeline emits well-formed interval snapshots;
//   * hostile transport (duplication, truncation, delay) never produces
//     orphan or duplicate spans.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/executor.h"
#include "fabric/coordinator.h"
#include "fabric/protocol.h"
#include "fabric/transport.h"
#include "fabric/worker.h"
#include "obs/fabric_trace.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "topology/paper_profiles.h"

namespace xmap::fabric {
namespace {

const net::Ipv6Address kScannerAddr = *net::Ipv6Address::parse("2001:500::1");

const scan::IcmpEchoProbe& shared_module() {
  static const scan::IcmpEchoProbe module{64};
  return module;
}

FabricConfig make_config(int nodes, int shards = 4) {
  FabricConfig cfg;
  cfg.world_specs = topo::paper::isp_specs();
  cfg.vendors = topo::paper::vendor_catalog();
  cfg.build.window_bits = 8;
  cfg.build.seed = 42;
  cfg.module = &shared_module();
  cfg.scan.source = kScannerAddr;
  cfg.scan.seed = 7;
  cfg.scan.probes_per_sec = 1e6;
  cfg.nodes = nodes;
  cfg.shards = shards;
  return cfg;
}

engine::EngineConfig engine_config(int threads) {
  engine::EngineConfig cfg;
  cfg.world_specs = topo::paper::isp_specs();
  cfg.vendors = topo::paper::vendor_catalog();
  cfg.build.window_bits = 8;
  cfg.build.seed = 42;
  cfg.module = &shared_module();
  cfg.scan.source = kScannerAddr;
  cfg.scan.seed = 7;
  cfg.scan.probes_per_sec = 1e6;
  cfg.threads = threads;
  return cfg;
}

const obs::FabricSpan* find_span(const std::vector<obs::FabricSpan>& spans,
                                 std::uint64_t id) {
  for (const auto& s : spans) {
    if (s.span_id == id) return &s;
  }
  return nullptr;
}

const obs::FabricSpan* find_named(const std::vector<obs::FabricSpan>& spans,
                                  const std::string& name) {
  for (const auto& s : spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string arg_of(const obs::FabricSpan& span, const std::string& key) {
  for (const auto& [k, v] : span.args) {
    if (k == key) return v;
  }
  return {};
}

// Every span id unique; every nonzero parent link resolves; exactly one
// root. The structural invariant behind "one connected causal tree".
void assert_connected_tree(const std::vector<obs::FabricSpan>& spans) {
  std::set<std::uint64_t> ids;
  for (const auto& s : spans) {
    EXPECT_TRUE(ids.insert(s.span_id).second)
        << "duplicate span id 0x" << std::hex << s.span_id << " (" << s.name
        << ")";
  }
  int roots = 0;
  for (const auto& s : spans) {
    if (s.parent_id == 0) {
      ++roots;
      EXPECT_EQ(s.name, "fabric_run");
    } else {
      EXPECT_TRUE(ids.count(s.parent_id) != 0)
          << "orphan span " << s.name << " (node " << s.node
          << "): parent 0x" << std::hex << s.parent_id << " not in trace";
    }
  }
  EXPECT_EQ(roots, 1);
}

// Walks parent links from `span` to the root, returning the visited names
// (span first). Fails the test on a broken link or a cycle.
std::vector<std::string> path_to_root(
    const std::vector<obs::FabricSpan>& spans, const obs::FabricSpan& span) {
  std::vector<std::string> names;
  const obs::FabricSpan* cur = &span;
  for (int depth = 0; depth < 64; ++depth) {
    names.push_back(cur->name);
    if (cur->parent_id == 0) return names;
    cur = find_span(spans, cur->parent_id);
    if (cur == nullptr) {
      ADD_FAILURE() << "broken parent link under " << span.name;
      return names;
    }
  }
  ADD_FAILURE() << "parent chain too deep (cycle?) from " << span.name;
  return names;
}

// The tentpole acceptance: kill a node mid-shard with tracing on; the span
// tree is connected across coordinator and worker tracks and renders the
// shard's whole life — lease, worker run, death verdict, migration,
// resumed run — as one causal chain.
TEST(FabricObs, SpanTreeConnectedAcrossKillAndMigrate) {
  auto cfg = make_config(4);
  cfg.fabric_trace = true;
  cfg.checkpoint_interval_targets = 64;
  cfg.fabric_faults.kills.push_back(
      sim::FabricFaultPlan::Kill{1, 600, /*close_transport=*/true});
  auto result = run_fabric_scan(cfg);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_FALSE(result.failed);
  ASSERT_EQ(result.dead_workers, 1);
  ASSERT_FALSE(result.fabric_spans.empty());
  ASSERT_NE(result.fabric_trace_id, 0u);

  assert_connected_tree(result.fabric_spans);
  for (const auto& s : result.fabric_spans) {
    EXPECT_EQ(s.trace_id, result.fabric_trace_id);
  }

  // Both sides of the wire are present as separate tracks.
  std::set<int> nodes;
  for (const auto& s : result.fabric_spans) nodes.insert(s.node);
  EXPECT_TRUE(nodes.count(obs::kCoordinatorNode) != 0);
  EXPECT_GE(nodes.size(), 3u);  // coordinator + at least two workers

  // The failover story. Find the migration instant; its shard had a dead
  // epoch 0 lease (with the death verdict under it) and a resumed epoch 1
  // shard_run on a surviving worker, causally chained to the re-lease.
  const obs::FabricSpan* migration =
      find_named(result.fabric_spans, "lease_migration");
  ASSERT_NE(migration, nullptr);
  EXPECT_EQ(migration->node, obs::kCoordinatorNode);
  const std::string shard = arg_of(*migration, "shard");

  const obs::FabricSpan* verdict =
      find_named(result.fabric_spans, "death_verdict");
  ASSERT_NE(verdict, nullptr);
  const obs::FabricSpan* dead_lease = find_span(result.fabric_spans,
                                                verdict->parent_id);
  ASSERT_NE(dead_lease, nullptr);
  EXPECT_EQ(dead_lease->name, "lease");
  EXPECT_EQ(arg_of(*dead_lease, "node"), "1");  // the killed node held it

  // The dead epoch's worker-side shard_run sits on the killed node's track
  // and is marked crashed; the resumed epoch's run is on a survivor.
  const obs::FabricSpan* dead_run = nullptr;
  const obs::FabricSpan* resumed_run = nullptr;
  for (const auto& s : result.fabric_spans) {
    if (s.name != "shard_run" || arg_of(s, "shard") != shard) continue;
    if (arg_of(s, "epoch") == "0") dead_run = &s;
    if (arg_of(s, "epoch") == "1") resumed_run = &s;
  }
  ASSERT_NE(dead_run, nullptr);
  ASSERT_NE(resumed_run, nullptr);
  EXPECT_EQ(dead_run->node, 1);
  EXPECT_EQ(arg_of(*dead_run, "outcome"), "crashed");
  EXPECT_NE(resumed_run->node, 1);
  EXPECT_EQ(arg_of(*resumed_run, "outcome"), "completed");
  // A resumed lease announces how it resumed.
  const obs::FabricSpan* resume =
      find_named(result.fabric_spans, "cursor_resume");
  ASSERT_NE(resume, nullptr);
  EXPECT_EQ(resume->parent_id, resumed_run->span_id);

  // The cross-node causal chain: resumed worker run -> coordinator Assign
  // frame -> lease -> shard -> root, alternating tracks.
  const auto chain = path_to_root(result.fabric_spans, *resumed_run);
  ASSERT_GE(chain.size(), 5u);
  EXPECT_EQ(chain[0], "shard_run");
  EXPECT_EQ(chain[1], "frame:assign");
  EXPECT_EQ(chain[2], "lease");
  EXPECT_EQ(chain[3], "shard:" + shard);
  EXPECT_EQ(chain.back(), "fabric_run");

  // Chrome serialization is syntactically sane and names both track kinds.
  std::ostringstream out;
  obs::write_fabric_chrome_trace(out, result.fabric_spans);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("coordinator"), std::string::npos);
  EXPECT_NE(json.find("worker-1"), std::string::npos);
  EXPECT_NE(json.find("lease_migration"), std::string::npos);
}

// Acceptance: the scan-content trace and metrics that rode the protocol
// are byte-identical to the engine's at the same shard count — with a
// failover in the middle (the resumed lease replays its shard in full).
TEST(FabricObs, ScanTraceAndMetricsByteIdenticalToEngine) {
  const int kShards = 4;
  obs::ObsConfig obs_cfg;
  obs_cfg.trace_level = obs::TraceLevel::kScan;
  obs_cfg.metrics = true;

  auto ecfg = engine_config(kShards);
  ecfg.obs = obs_cfg;
  auto engine = engine::run_parallel_scan(ecfg);
  ASSERT_TRUE(engine.ok) << engine.error;
  ASSERT_FALSE(engine.trace.empty());

  auto fcfg = make_config(3, kShards);
  fcfg.obs = obs_cfg;
  fcfg.checkpoint_interval_targets = 64;
  fcfg.fabric_faults.kills.push_back(
      sim::FabricFaultPlan::Kill{1, 600, /*close_transport=*/true});
  auto fabric = run_fabric_scan(fcfg);
  ASSERT_TRUE(fabric.ok) << fabric.error;
  ASSERT_FALSE(fabric.failed);
  ASSERT_EQ(fabric.dead_workers, 1);  // the failover actually happened

  // Byte-for-byte: the serialized trace and the deterministic Prometheus
  // export are what --trace-file / --metrics-file write.
  std::ostringstream fabric_trace;
  std::ostringstream engine_trace;
  obs::write_trace_jsonl(fabric_trace, fabric.trace);
  obs::write_trace_jsonl(engine_trace, engine.trace);
  EXPECT_EQ(fabric_trace.str(), engine_trace.str());
  EXPECT_EQ(obs::prometheus_text(fabric.scan_metrics),
            obs::prometheus_text(engine.metrics_snapshot));
  // The wall-clock fabric_* series stay quarantined: absent from the
  // deterministic export, present in the full one.
  EXPECT_EQ(obs::prometheus_text(fabric.metrics).find("fabric_"),
            std::string::npos);
  EXPECT_NE(obs::prometheus_text(fabric.metrics, true).find(
                "xmap_fabric_reassignments_total"),
            std::string::npos);
}

// Fabric metrics carry per-node labels next to the unlabeled totals.
TEST(FabricObs, PerNodeMetricLabels) {
  auto cfg = make_config(3);
  cfg.checkpoint_interval_targets = 64;
  cfg.fabric_faults.kills.push_back(
      sim::FabricFaultPlan::Kill{1, 600, /*close_transport=*/true});
  auto result = run_fabric_scan(cfg);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.dead_workers, 1);

  const auto* total = result.metrics.find("fabric_workers_dead_total");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->value, 1u);
  const auto* labeled = result.metrics.find("fabric_workers_dead_total",
                                            {{"node", "worker-1"}});
  ASSERT_NE(labeled, nullptr);
  EXPECT_EQ(labeled->value, 1u);
  // Shards completed per node sum to the total.
  const auto* done = result.metrics.find("fabric_shards_completed_total");
  ASSERT_NE(done, nullptr);
  std::uint64_t per_node_sum = 0;
  for (int w = 0; w < cfg.nodes; ++w) {
    const auto* e = result.metrics.find(
        "fabric_shards_completed_total",
        {{"node", "worker-" + std::to_string(w)}});
    if (e != nullptr) per_node_sum += e->value;
  }
  EXPECT_EQ(per_node_sum, done->value);
}

// Worker death dumps every node's flight-recorder ring to JSONL.
TEST(FabricObs, FlightRecorderDumpsOnWorkerDeath) {
  const std::string prefix =
      testing::TempDir() + "fabric_obs_flightrec_death";
  auto cfg = make_config(3);
  cfg.checkpoint_interval_targets = 64;
  cfg.flight_recorder_events = 128;
  cfg.flight_recorder_prefix = prefix;
  cfg.fabric_faults.kills.push_back(
      sim::FabricFaultPlan::Kill{1, 600, /*close_transport=*/true});
  auto result = run_fabric_scan(cfg);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.dead_workers, 1);

  // One dump per worker plus the coordinator's.
  ASSERT_EQ(result.recorder_dumps.size(), 4u);
  for (const auto& path : result.recorder_dumps) {
    std::ifstream in{path};
    ASSERT_TRUE(in.good()) << path;
    std::string meta;
    ASSERT_TRUE(static_cast<bool>(std::getline(in, meta))) << path;
    EXPECT_NE(meta.find("\"node\""), std::string::npos) << meta;
    EXPECT_NE(meta.find("\"recorded\""), std::string::npos) << meta;
    std::remove(path.c_str());
  }
  // The dead node's dump exists and records protocol traffic.
  bool dead_node_dumped = false;
  for (const auto& path : result.recorder_dumps) {
    if (path.find(".node1.jsonl") != std::string::npos) {
      dead_node_dumped = true;
    }
  }
  EXPECT_TRUE(dead_node_dumped);
}

// No failure, no dump: a clean run writes nothing.
TEST(FabricObs, FlightRecorderSilentOnCleanRun) {
  const std::string prefix =
      testing::TempDir() + "fabric_obs_flightrec_clean";
  auto cfg = make_config(2);
  cfg.flight_recorder_events = 64;
  cfg.flight_recorder_prefix = prefix;
  auto result = run_fabric_scan(cfg);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_FALSE(result.failed);
  EXPECT_TRUE(result.recorder_dumps.empty());
  std::ifstream probe{prefix + ".coordinator.jsonl"};
  EXPECT_FALSE(probe.good());
}

// A lease refusal lands in the worker's flight recorder with the full
// diagnostic, so a post-mortem has the "stored ..., computed ..." story.
TEST(FabricObs, FlightRecorderCapturesRefusal) {
  obs::FlightRecorder recorder{64};
  std::vector<topo::IspSpec> specs = topo::paper::isp_specs();
  std::vector<topo::VendorProfile> vendors = topo::paper::vendor_catalog();
  LoopbackFabric fabric{1, nullptr};
  WorkerConfig cfg;
  cfg.id = 0;
  cfg.world_specs = &specs;
  cfg.vendors = &vendors;
  cfg.build.window_bits = 8;
  cfg.build.seed = 42;
  cfg.module = &shared_module();
  cfg.base.source = kScannerAddr;
  cfg.base.seed = 7;
  cfg.base.probes_per_sec = 1e6;
  cfg.base.targets.push_back(*scan::TargetSpec::parse("2001:db8::/32-40"));
  cfg.fingerprint = 0x1111222233334444ULL;
  cfg.heartbeat_interval_ms = 10;
  cfg.recorder = &recorder;

  FabricWorker worker{cfg, fabric.worker_endpoint(0)};
  std::thread thread{[&] { worker.run(); }};
  // Wait for Hello, send a foreign-fingerprint Assign, await the Refuse.
  bool refused = false;
  bool assigned = false;
  for (int spin = 0; spin < 400 && !refused; ++spin) {
    auto recv = fabric.recv_any(25);
    if (recv.status != RecvStatus::kFrame) continue;
    auto decoded = decode_frame(recv.frame);
    if (!decoded.message) continue;
    if (decoded.message->seq != 0) {
      Message ack;
      ack.type = MsgType::kAck;
      ack.ack_seq = decoded.message->seq;
      fabric.send_to(0, encode_frame(ack));
    }
    if (decoded.message->type == MsgType::kHello && !assigned) {
      assigned = true;
      Message assign;
      assign.type = MsgType::kAssign;
      assign.seq = 1;
      assign.shard = 2;
      assign.epoch = 0;
      assign.shards_total = 4;
      assign.fingerprint = 0x9999888877776666ULL;
      fabric.send_to(0, encode_frame(assign));
    }
    if (decoded.message->type == MsgType::kRefuse) refused = true;
  }
  Message bye;
  bye.type = MsgType::kBye;
  fabric.send_to(0, encode_frame(bye));
  thread.join();
  ASSERT_TRUE(refused);

  std::ostringstream dump;
  recorder.dump_jsonl(dump, "worker-0");
  const std::string text = dump.str();
  EXPECT_NE(text.find("\"refusal\""), std::string::npos) << text;
  EXPECT_NE(text.find("fingerprint mismatch"), std::string::npos) << text;
}

// Hostile transport — duplicated, truncated, delayed frames — may force
// retransmissions, but the span tree stays connected and duplicate-free:
// the trace context is bound to the frame payload, so replays never mint
// new spans and drops never orphan children.
TEST(FabricObs, NoOrphanOrDuplicateSpansUnderHostileTransport) {
  auto cfg = make_config(3);
  cfg.fabric_trace = true;
  cfg.obs.trace_level = obs::TraceLevel::kScan;
  cfg.obs.metrics = true;
  cfg.fabric_faults.seed = 1234;
  cfg.fabric_faults.messages.duplicate = 0.3;
  cfg.fabric_faults.messages.truncate = 0.2;
  cfg.fabric_faults.messages.delay_ms = 5.0;
  auto result = run_fabric_scan(cfg);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_FALSE(result.failed);
  EXPECT_GT(result.retransmits, 0u);  // the chaos actually bit

  assert_connected_tree(result.fabric_spans);
  // Retransmit instants chain to the frame span they retried.
  int retransmit_spans = 0;
  for (const auto& s : result.fabric_spans) {
    if (s.name != "retransmit") continue;
    ++retransmit_spans;
    const obs::FabricSpan* frame = find_span(result.fabric_spans,
                                             s.parent_id);
    ASSERT_NE(frame, nullptr);
    EXPECT_EQ(frame->name.rfind("frame:", 0), 0u) << frame->name;
  }
  EXPECT_GT(retransmit_spans, 0);

  // And the scan content still matches the engine byte for byte.
  auto ecfg = engine_config(4);
  ecfg.obs = cfg.obs;
  auto engine = engine::run_parallel_scan(ecfg);
  ASSERT_TRUE(engine.ok) << engine.error;
  std::ostringstream fabric_trace;
  std::ostringstream engine_trace;
  obs::write_trace_jsonl(fabric_trace, result.trace);
  obs::write_trace_jsonl(engine_trace, engine.trace);
  EXPECT_EQ(fabric_trace.str(), engine_trace.str());
}

// The health timeline emits interval snapshots and a terminal one whose
// shard counts add up.
TEST(FabricObs, HealthTimelineEmitsSnapshots) {
  auto cfg = make_config(2);
  std::ostringstream timeline;
  cfg.timeline = &timeline;
  cfg.timeline_interval_ms = 1;
  auto result = run_fabric_scan(cfg);
  ASSERT_TRUE(result.ok) << result.error;

  std::istringstream lines{timeline.str()};
  std::string line;
  std::string last;
  int count = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"t_ms\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"workers_live\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"shards_done\":"), std::string::npos) << line;
    last = line;
    ++count;
  }
  ASSERT_GE(count, 1);
  // The forced final snapshot shows the run's terminal state.
  EXPECT_NE(last.find("\"shards_done\":4"), std::string::npos) << last;
  EXPECT_NE(last.find("\"shards_pending\":0"), std::string::npos) << last;
}

// Observability off: none of the new result fields populate and the
// failover stats bookkeeping stays on the fast-forward path.
TEST(FabricObs, ObsOffLeavesFabricResultLean) {
  auto cfg = make_config(2);
  cfg.checkpoint_interval_targets = 64;
  cfg.fabric_faults.kills.push_back(
      sim::FabricFaultPlan::Kill{0, 500, /*close_transport=*/true});
  auto result = run_fabric_scan(cfg);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.trace.empty());
  EXPECT_TRUE(result.scan_metrics.empty());
  EXPECT_TRUE(result.fabric_spans.empty());
  EXPECT_TRUE(result.recorder_dumps.empty());
  EXPECT_TRUE(result.stage_profile.empty());
}

}  // namespace
}  // namespace xmap::fabric
