#include "loopattack/attack_lab.h"

#include <gtest/gtest.h>

namespace xmap::atk {
namespace {

TEST(AttackLab, AmplificationFactorExceeds200) {
  AttackLabConfig cfg;
  cfg.transit_hops = 2;
  AttackLab lab{cfg};
  const auto result = lab.attack(255);
  // Hop count before the ISP: attacker link + 2 transits; the paper's bound
  // is ~(255 - n) packets on the victim link.
  EXPECT_GT(result.amplification(), 200.0);
  EXPECT_LE(result.amplification(), 255.0);
  EXPECT_EQ(result.attacker_packets, 1u);
}

TEST(AttackLab, AmplificationScalesWithHopLimit) {
  AttackLabConfig cfg;
  AttackLab lab{cfg};
  const auto full = lab.attack(255);
  const auto half = lab.attack(128);
  EXPECT_GT(full.access_link_packets, half.access_link_packets);
  EXPECT_NEAR(static_cast<double>(half.access_link_packets),
              static_cast<double>(full.access_link_packets) / 2.0, 6.0);
}

TEST(AttackLab, MoreTransitHopsMeansLessAmplification) {
  AttackLabConfig near_cfg;
  near_cfg.transit_hops = 0;
  AttackLabConfig far_cfg;
  far_cfg.transit_hops = 8;
  AttackLab near_lab{near_cfg};
  AttackLab far_lab{far_cfg};
  const auto near_result = near_lab.attack(255);
  const auto far_result = far_lab.attack(255);
  EXPECT_GT(near_result.access_link_packets,
            far_result.access_link_packets);
  // Difference is roughly the extra hop count (8 extra decrements).
  EXPECT_NEAR(static_cast<double>(near_result.access_link_packets -
                                  far_result.access_link_packets),
              8.0, 3.0);
}

TEST(AttackLab, WanTargetAlsoLoops) {
  AttackLab lab{AttackLabConfig{}};
  const auto result = lab.attack(255, 1, /*target_wan=*/true);
  EXPECT_GT(result.amplification(), 200.0);
}

TEST(AttackLab, SpoofedSourceDoublesTheLoop) {
  AttackLab lab{AttackLabConfig{}};
  const auto plain = lab.attack(255, 1, false, /*spoof_inside_lan=*/false);
  const auto spoofed = lab.attack(255, 1, false, /*spoof_inside_lan=*/true);
  // The Time Exceeded generated at the end of the first loop is itself
  // routed into the not-used prefix and loops again (Section VI-A).
  EXPECT_GT(spoofed.access_link_packets,
            plain.access_link_packets + plain.access_link_packets / 2);
}

TEST(AttackLab, AttackerSeesTimeExceededAtLoopEnd) {
  AttackLab lab{AttackLabConfig{}};
  const auto result = lab.attack(255, 3);
  EXPECT_EQ(result.time_exceeded_received, 3u);
}

TEST(AttackLab, LoopCapLimitsDamage) {
  AttackLabConfig cfg;
  cfg.cpe_loop_cap = 20;
  AttackLab lab{cfg};
  const auto result = lab.attack(255);
  // Capped firmware forwards the flow >10 but far fewer than 255-n times.
  EXPECT_GT(result.access_link_packets, 10u);
  EXPECT_LT(result.access_link_packets, 60u);
}

TEST(AttackLab, PatchedCpeStopsTheAttack) {
  AttackLab lab{AttackLabConfig{}};
  const auto before = lab.attack(255);
  EXPECT_GT(before.amplification(), 200.0);
  lab.patch_cpe();
  const auto after = lab.attack(255);
  EXPECT_LE(after.access_link_packets, 2u);
  EXPECT_EQ(after.unreachable_received, 1u);  // RFC 7084 unreachable route
}

TEST(AttackLab, MultiplePacketsMultiplyTraffic) {
  AttackLab lab{AttackLabConfig{}};
  const auto one = lab.attack(255, 1);
  const auto ten = lab.attack(255, 10);
  EXPECT_NEAR(static_cast<double>(ten.access_link_packets),
              static_cast<double>(one.access_link_packets) * 10.0,
              static_cast<double>(one.access_link_packets));
}

TEST(CaseStudy, ModelCatalogMatchesTableXII) {
  const auto& models = case_study_models();
  EXPECT_EQ(models.size(), 99u);  // 95 routers + 4 open-source OSes
  int tp_link = 0, zte = 0, os_count = 0;
  for (const auto& m : models) {
    EXPECT_TRUE(m.wan_vulnerable);  // all 99 tested routers looped
    if (m.brand == "TP-Link") ++tp_link;
    if (m.brand == "ZTE") ++zte;
    if (m.brand == "OpenWRT" || m.brand == "DD-Wrt" || m.brand == "Gargoyle" ||
        m.brand == "librecmc") {
      ++os_count;
    }
  }
  EXPECT_EQ(tp_link, 42);
  EXPECT_EQ(zte, 9);
  EXPECT_EQ(os_count, 4);
}

TEST(CaseStudy, ExplicitModelsBehaveAsInTheTable) {
  const auto& models = case_study_models();
  // ASUS GT-AC5300: WAN vulnerable, LAN immune.
  const auto asus = test_router_model(models[0]);
  EXPECT_TRUE(asus.wan_loop_observed);
  EXPECT_FALSE(asus.lan_loop_observed);
  EXPECT_TRUE(asus.fixed_after_patch);
  // Huawei WS5100: both vulnerable.
  const auto huawei = test_router_model(models[2]);
  EXPECT_TRUE(huawei.wan_loop_observed);
  EXPECT_TRUE(huawei.lan_loop_observed);
  // Xiaomi AX5: capped loop (>10 forwards, far below (255-n)/2).
  const auto xiaomi = test_router_model(models[7]);
  EXPECT_TRUE(xiaomi.wan_loop_observed);
  EXPECT_GT(xiaomi.wan_link_packets, 10u);
  EXPECT_LT(xiaomi.wan_link_packets, 60u);
}

TEST(CaseStudy, UncappedModelLoopsNearFullHopBudget) {
  const auto& models = case_study_models();
  const auto netgear = test_router_model(models[4]);  // R6400v2, uncapped
  EXPECT_GT(netgear.wan_link_packets, 200u);
  EXPECT_GT(netgear.lan_link_packets, 200u);
}

TEST(CaseStudy, EveryModelIsFixedByTheMitigation) {
  for (const auto& model : case_study_models()) {
    const auto row = test_router_model(model);
    EXPECT_TRUE(row.fixed_after_patch) << model.brand << " " << model.model;
  }
}

}  // namespace
}  // namespace xmap::atk
