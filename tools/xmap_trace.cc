// xmap_trace — post-mortem analysis of a fabric deployment trace.
//
// Reads the Perfetto/chrome JSON written by --fabric-trace-file and prints
// what an operator actually asks after a failover drill:
//
//   * failover latency breakdown per lease migration: death verdict ->
//     migration decision -> re-lease -> worker cursor resume
//   * per-link retransmission histograms (uplink per worker, coordinator
//     downlink), bucketed by attempt number
//   * per-shard timelines: every lease epoch with its node, duration and
//     resume cursor
//
//   $ xmap_trace fabric-trace.json
//   $ xmap_trace --failover fabric-trace.json
//
// Exit codes: 0 ok, 2 unreadable or malformed trace.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "netbase/json.h"

namespace {

struct Ev {
  std::string name;
  int node = 0;  // tid - 2: coordinator = -1, worker w = w
  double ts_us = 0;
  double dur_us = 0;
  bool has_dur = false;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  std::map<std::string, std::string> args;

  [[nodiscard]] std::string arg(const std::string& key) const {
    auto it = args.find(key);
    return it == args.end() ? std::string{} : it->second;
  }
};

std::uint64_t parse_hex_id(const std::string& text) {
  return std::strtoull(text.c_str(), nullptr, 0);
}

std::string node_label(int node) {
  return node == -1 ? std::string("coordinator")
                    : "worker-" + std::to_string(node);
}

std::string fmt_us(double us) {
  char buf[48];
  if (us >= 1000.0) {
    std::snprintf(buf, sizeof buf, "%.3f ms", us / 1000.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f us", us);
  }
  return buf;
}

// Loads the traceEvents array, skipping metadata records.
bool load_trace(const std::string& path, std::vector<Ev>& out,
                std::string& error) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = xmap::net::json_parse(buf.str());
  if (!parsed.value) {
    error = path + ": " + parsed.error.to_string();
    return false;
  }
  const xmap::net::JsonValue* events = parsed.value->find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    error = path + ": no traceEvents array (not a fabric trace?)";
    return false;
  }
  for (const auto& ev : events->as_array()) {
    if (!ev.is_object()) continue;
    if (ev.string_or("ph", "") == "M") continue;
    Ev e;
    e.name = ev.string_or("name", "");
    e.node = static_cast<int>(ev.number_or("tid", 2)) - 2;
    e.ts_us = ev.number_or("ts", 0);
    if (const xmap::net::JsonValue* dur = ev.find("dur");
        dur != nullptr && dur->is_number()) {
      e.dur_us = dur->as_number();
      e.has_dur = true;
    }
    if (const xmap::net::JsonValue* args = ev.find("args");
        args != nullptr && args->is_object()) {
      for (const auto& [k, v] : args->as_object()) {
        if (v.is_string()) e.args[k] = v.as_string();
      }
    }
    e.span_id = parse_hex_id(e.arg("span_id"));
    e.parent_id = parse_hex_id(e.arg("parent_id"));
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const Ev& a, const Ev& b) { return a.ts_us < b.ts_us; });
  return true;
}

const Ev* find_span(const std::vector<Ev>& evs, std::uint64_t span_id) {
  for (const Ev& e : evs) {
    if (e.span_id == span_id) return &e;
  }
  return nullptr;
}

// The lease span of (shard, epoch): child of the shard:<s> coordinator
// span, distinguished by its "epoch" arg.
const Ev* find_lease(const std::vector<Ev>& evs, const std::string& shard,
                     const std::string& epoch) {
  for (const Ev& e : evs) {
    if (e.name != "lease" || e.arg("epoch") != epoch) continue;
    const Ev* parent = find_span(evs, e.parent_id);
    if (parent != nullptr && parent->arg("shard") == shard) return &e;
  }
  return nullptr;
}

// The shard_run worker span of (shard, epoch).
const Ev* find_shard_run(const std::vector<Ev>& evs, const std::string& shard,
                         const std::string& epoch) {
  for (const Ev& e : evs) {
    if (e.name == "shard_run" && e.arg("shard") == shard &&
        e.arg("epoch") == epoch) {
      return &e;
    }
  }
  return nullptr;
}

void print_failover(const std::vector<Ev>& evs) {
  std::printf("== failover latency ==\n");
  int migrations = 0;
  for (const Ev& mig : evs) {
    if (mig.name != "lease_migration") continue;
    ++migrations;
    const std::string shard = mig.arg("shard");
    const std::string from_epoch = mig.arg("from_epoch");
    const std::string to_epoch =
        std::to_string(std::atoi(from_epoch.c_str()) + 1);
    std::printf("shard %s  epoch %s -> %s  resume slot %s\n", shard.c_str(),
                from_epoch.c_str(), to_epoch.c_str(),
                mig.arg("resume_slot").c_str());

    // The verdict instant lives under the dead epoch's lease span.
    const Ev* lease = find_lease(evs, shard, from_epoch);
    const Ev* verdict = nullptr;
    if (lease != nullptr) {
      for (const Ev& e : evs) {
        if (e.name == "death_verdict" && e.parent_id == lease->span_id) {
          verdict = &e;
          break;
        }
      }
    }
    const Ev* release = find_lease(evs, shard, to_epoch);
    const Ev* run = find_shard_run(evs, shard, to_epoch);
    const Ev* resume = nullptr;
    if (run != nullptr) {
      for (const Ev& e : evs) {
        if (e.name == "cursor_resume" && e.parent_id == run->span_id) {
          resume = &e;
          break;
        }
      }
    }
    if (verdict != nullptr) {
      std::printf("  death verdict   @ %-14s (%s)\n",
                  fmt_us(verdict->ts_us).c_str(),
                  verdict->arg("reason").c_str());
      std::printf("  verdict -> migration decision  %s\n",
                  fmt_us(mig.ts_us - verdict->ts_us).c_str());
    }
    if (release != nullptr) {
      std::printf("  migration -> re-lease          %s (node %s)\n",
                  fmt_us(release->ts_us - mig.ts_us).c_str(),
                  release->arg("node").c_str());
    }
    if (resume != nullptr && release != nullptr) {
      std::printf("  re-lease -> cursor resume      %s (%s)\n",
                  fmt_us(resume->ts_us - release->ts_us).c_str(),
                  resume->arg("mode").c_str());
    }
    if (verdict != nullptr && resume != nullptr) {
      std::printf("  total verdict -> resume        %s\n",
                  fmt_us(resume->ts_us - verdict->ts_us).c_str());
    }
  }
  if (migrations == 0) std::printf("no lease migrations in this trace\n");
  std::printf("\n");
}

void print_retransmits(const std::vector<Ev>& evs) {
  std::printf("== retransmissions per link ==\n");
  // Sender track identifies the link: the coordinator retransmits on its
  // downlinks, worker w on its uplink. Bucket by attempt number.
  std::map<int, std::map<int, int>> per_link;  // node -> attempt -> count
  for (const Ev& e : evs) {
    if (e.name != "retransmit") continue;
    ++per_link[e.node][std::atoi(e.arg("attempt").c_str())];
  }
  if (per_link.empty()) {
    std::printf("no retransmissions in this trace\n\n");
    return;
  }
  for (const auto& [node, hist] : per_link) {
    int total = 0;
    for (const auto& [attempt, count] : hist) total += count;
    std::printf("%s (%s): %d retransmit(s)\n", node_label(node).c_str(),
                node == -1 ? "downlink" : "uplink", total);
    for (const auto& [attempt, count] : hist) {
      std::printf("  attempt %d  %5d  ", attempt, count);
      for (int i = 0; i < count && i < 50; ++i) std::putchar('#');
      std::putchar('\n');
    }
  }
  std::printf("\n");
}

void print_shards(const std::vector<Ev>& evs) {
  std::printf("== per-shard timeline ==\n");
  std::vector<const Ev*> shards;
  for (const Ev& e : evs) {
    if (e.name.rfind("shard:", 0) == 0 && e.node == -1) {
      shards.push_back(&e);
    }
  }
  std::sort(shards.begin(), shards.end(), [](const Ev* a, const Ev* b) {
    return std::atoi(a->arg("shard").c_str()) <
           std::atoi(b->arg("shard").c_str());
  });
  for (const Ev* shard : shards) {
    std::printf("shard %s  start %s  span %s\n", shard->arg("shard").c_str(),
                fmt_us(shard->ts_us).c_str(), fmt_us(shard->dur_us).c_str());
    for (const Ev& e : evs) {
      if (e.name != "lease" || e.parent_id != shard->span_id) continue;
      const Ev* run =
          find_shard_run(evs, shard->arg("shard"), e.arg("epoch"));
      std::printf("  epoch %s -> node %-3s  start %-12s dur %-12s resume %s%s%s\n",
                  e.arg("epoch").c_str(), e.arg("node").c_str(),
                  fmt_us(e.ts_us).c_str(), fmt_us(e.dur_us).c_str(),
                  e.arg("resume").c_str(),
                  run != nullptr && !run->arg("outcome").empty() ? "  " : "",
                  run != nullptr ? run->arg("outcome").c_str() : "");
    }
  }
  if (shards.empty()) std::printf("no shard spans in this trace\n");
  std::printf("\n");
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--failover] [--retransmits] [--shards] "
               "<fabric-trace.json>\n"
               "(no section flag = print every section)\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool failover = false;
  bool retransmits = false;
  bool shards = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--failover") {
      failover = true;
    } else if (arg == "--retransmits") {
      retransmits = true;
    } else if (arg == "--shards") {
      shards = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (path.empty()) return usage(argv[0]);
  if (!failover && !retransmits && !shards) {
    failover = retransmits = shards = true;
  }

  std::vector<Ev> evs;
  std::string error;
  if (!load_trace(path, evs, error)) {
    std::fprintf(stderr, "xmap_trace: %s\n", error.c_str());
    return 2;
  }
  std::printf("%s: %zu span(s)\n\n", path.c_str(), evs.size());
  if (failover) print_failover(evs);
  if (retransmits) print_retransmits(evs);
  if (shards) print_shards(evs);
  return 0;
}
