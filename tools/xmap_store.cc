// xmap_store: inspect and query periphery results store files.
#include <iostream>

#include "store/cli.h"

int main(int argc, char** argv) {
  return xmap::store::store_cli_main(argc, argv, std::cout, std::cerr);
}
