// xmap_sim — the XMap scanner as a command-line tool, driven against the
// simulated Internet (the repo's substitute for a raw-socket backend; see
// DESIGN.md). Run --help for the flag reference; the vocabulary mirrors
// the released XMap/ZMap tools.
//
//   $ xmap_sim --world paper --probe-module icmp_echo --rate 100000
//              --output-format jsonl --output-file scan.jsonl
//   $ xmap_sim --threads 4 --status-updates-file -
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>

#include "engine/executor.h"
#include "engine/probe_factory.h"
#include "obs/config.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "topology/paper_profiles.h"
#include "topology/world.h"
#include "xmap/cli.h"
#include "xmap/output.h"
#include "xmap/scanner.h"
#include "xmap/traceroute.h"

using namespace xmap;

namespace {

void print_stats_footer(const scan::ScanStats& stats, int threads,
                        double wall_seconds) {
  std::fprintf(
      stderr,
      "xmap_sim: %llu probes sent (%llu blocked, %llu retransmits), "
      "%llu responses (%llu validated, %llu discarded), hit rate %.2f%%, "
      "simulated duration %.2fs",
      static_cast<unsigned long long>(stats.sent),
      static_cast<unsigned long long>(stats.blocked),
      static_cast<unsigned long long>(stats.retransmits),
      static_cast<unsigned long long>(stats.received),
      static_cast<unsigned long long>(stats.validated),
      static_cast<unsigned long long>(stats.discarded),
      100.0 * stats.hit_rate(),
      static_cast<double>(stats.last_send - stats.first_send) /
          static_cast<double>(sim::kSecond));
  if (stats.duplicates > 0 || stats.corrupted > 0 || stats.late > 0) {
    std::fprintf(stderr, " [%llu duplicate, %llu corrupt, %llu late]",
                 static_cast<unsigned long long>(stats.duplicates),
                 static_cast<unsigned long long>(stats.corrupted),
                 static_cast<unsigned long long>(stats.late));
  }
  if (stats.rate_adjustments > 0) {
    std::fprintf(stderr, ", %llu rate adjustments",
                 static_cast<unsigned long long>(stats.rate_adjustments));
  }
  if (threads > 0) {
    std::fprintf(stderr, ", %d workers, wall %.2fs", threads, wall_seconds);
  }
  std::fputc('\n', stderr);
}

// Installs `plan` (if non-empty) on a freshly built classic-path network,
// registering every periphery device as a silent-window candidate.
void install_faults(sim::Network& net, const topo::BuiltInternet& internet,
                    const sim::FaultPlan& plan) {
  if (!plan.any()) return;
  sim::FaultInjector* injector = net.install_faults(plan);
  std::vector<sim::NodeId> candidates;
  for (const auto& isp : internet.isps) {
    for (const auto& device : isp.devices) {
      candidates.push_back(device.node);
    }
  }
  injector->choose_silent(candidates);
}

// Resolves the effective observability configuration: a file: world's
// "obs" section supplies the defaults, explicit CLI flags override field
// by field, and --trace-file / --metrics-file imply the matching pillar.
obs::ObsConfig resolve_obs(const scan::CliOptions& opts,
                           const std::optional<obs::ObsConfig>& world_obs) {
  obs::ObsConfig cfg = world_obs.value_or(obs::ObsConfig{});
  if (opts.trace_level) cfg.trace_level = *opts.trace_level;
  if (!opts.trace_file.empty() && cfg.trace_level == obs::TraceLevel::kOff &&
      !opts.trace_level) {
    cfg.trace_level = obs::TraceLevel::kScan;
  }
  if (!opts.metrics_file.empty()) cfg.metrics = true;
  if (opts.profile) cfg.profile = true;
  return cfg;
}

// Writes the trace and metrics files and prints the --profile table.
// Returns false (after a diagnostic) if an output file cannot be opened.
bool write_obs_outputs(const scan::CliOptions& opts,
                       const std::vector<obs::TraceEvent>& trace,
                       const obs::MetricsSnapshot& metrics,
                       const obs::StageProfile& profile) {
  if (!opts.trace_file.empty()) {
    std::ofstream out{opts.trace_file};
    if (!out) {
      std::fprintf(stderr, "xmap_sim: cannot open %s\n",
                   opts.trace_file.c_str());
      return false;
    }
    // --trace-format wins; otherwise a .json suffix selects the Chrome
    // trace-event form (Perfetto / chrome://tracing), anything else JSONL.
    const std::string& path = opts.trace_file;
    const bool chrome =
        opts.trace_format == "chrome" ||
        (opts.trace_format.empty() && path.size() >= 5 &&
         path.compare(path.size() - 5, 5, ".json") == 0);
    if (chrome) {
      obs::write_chrome_trace(out, trace);
    } else {
      obs::write_trace_jsonl(out, trace);
    }
  }
  if (!opts.metrics_file.empty()) {
    std::ofstream out{opts.metrics_file};
    if (!out) {
      std::fprintf(stderr, "xmap_sim: cannot open %s\n",
                   opts.metrics_file.c_str());
      return false;
    }
    out << obs::prometheus_text(metrics);
  }
  if (opts.profile) {
    std::fputs(obs::stage_profile_table(profile).c_str(), stderr);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = scan::parse_cli(argc, argv);
  if (!parsed.options) {
    std::fprintf(stderr, "xmap_sim: %s\n(try --help)\n",
                 parsed.error.c_str());
    return 2;
  }
  const scan::CliOptions& opts = *parsed.options;
  if (opts.help) {
    std::fputs(scan::cli_usage().c_str(), stdout);
    return 0;
  }
  if (opts.list_probe_modules) {
    for (const auto& name : scan::probe_module_names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  // --- World ---------------------------------------------------------------
  topo::BuildConfig build_cfg;
  build_cfg.window_bits = opts.window_bits;
  build_cfg.seed = opts.seed;
  build_cfg.device_icmp_rate = opts.device_icmp_rate;
  build_cfg.router_icmp_rate = opts.router_icmp_rate;
  auto world = topo::resolve_world(opts.world, opts.seed,
                                   topo::paper::vendor_catalog());
  if (!world.specs) {
    std::fprintf(stderr, "xmap_sim: %s\n", world.error.c_str());
    return 2;
  }
  const std::vector<topo::IspSpec>& specs = *world.specs;
  // CLI fault flags build a complete plan and beat a file: world's
  // embedded one; either way the plan is empty unless dials are nonzero.
  const sim::FaultPlan fault_plan = opts.faults_given
                                        ? opts.faults
                                        : world.faults.value_or(
                                              sim::FaultPlan{});
  const obs::ObsConfig obs_cfg = resolve_obs(opts, world.obs);

  // --- Output --------------------------------------------------------------
  std::ofstream file;
  if (!opts.output_file.empty()) {
    file.open(opts.output_file);
    if (!file) {
      std::fprintf(stderr, "xmap_sim: cannot open %s\n",
                   opts.output_file.c_str());
      return 2;
    }
  }
  std::ostream& out = opts.output_file.empty() ? std::cout : file;
  auto writer = scan::make_writer(opts.output_format, out);

  // --- Scan configuration --------------------------------------------------
  scan::ScanConfig cfg;
  cfg.targets = opts.targets;
  cfg.source = *net::Ipv6Address::parse("2001:500::1");
  cfg.seed = opts.seed;
  cfg.probes_per_sec = opts.rate_pps;
  cfg.shard = opts.shard;
  cfg.shards = opts.shards;
  cfg.max_probes = opts.max_probes;
  cfg.retries = opts.retries;
  cfg.retry_spacing_ms = opts.retry_spacing_ms;
  cfg.cooldown_secs = opts.cooldown_secs;
  cfg.adaptive_rate = opts.adaptive_rate;
  const scan::Blocklist blocklist = scan::Blocklist::well_behaved_defaults();
  if (opts.use_default_blocklist) cfg.blocklist = &blocklist;

  if (opts.probe_module == "traceroute") {
    // Traceroute mode: hop-walk one address per delegation slot (bounded by
    // --max-probes, counted in targets). Each responding hop is one record.
    sim::Network net{opts.seed};
    auto internet = topo::build_internet(net, specs,
                                         topo::paper::vendor_catalog(),
                                         build_cfg);
    install_faults(net, internet, fault_plan);
    if (cfg.targets.empty()) {
      for (const auto& isp : internet.isps) {
        cfg.targets.push_back(
            scan::TargetSpec{isp.scan_base, isp.window_lo, isp.window_hi});
      }
    }
    scan::TracerouteRunner::Config tr_cfg;
    tr_cfg.source = cfg.source;
    tr_cfg.seed = opts.seed;
    auto* runner = net.make_node<scan::TracerouteRunner>(tr_cfg);
    const int tr_iface = topo::attach_vantage(
        net, internet, runner, *net::Ipv6Prefix::parse("2001:500::/48"));
    runner->set_iface(tr_iface);

    std::uint64_t traced = 0;
    const std::uint64_t cap = opts.max_probes > 0 ? opts.max_probes : 256;
    for (const auto& spec : cfg.targets) {
      const std::uint64_t slots =
          spec.count().fits_u64() ? spec.count().to_u64() : cap;
      for (std::uint64_t i = 0; i < slots && traced < cap; ++i, ++traced) {
        runner->trace(spec.nth_address(net::Uint128{i}, opts.seed));
      }
    }
    net.run();

    writer->begin();
    std::uint64_t hops = 0;
    for (const auto& result : runner->results()) {
      for (const auto& hop : result.hops) {
        scan::ProbeResponse record;
        record.kind = hop.kind;
        record.responder = hop.router;
        record.probe_dst = result.target;
        record.hop_limit = static_cast<std::uint8_t>(hop.distance);
        writer->record(record, net.now());
        ++hops;
      }
    }
    writer->end();
    if (!opts.quiet) {
      std::fprintf(stderr,
                   "xmap_sim: traced %llu targets, observed %llu hops\n",
                   static_cast<unsigned long long>(traced),
                   static_cast<unsigned long long>(hops));
    }
    return 0;
  }

  auto module = engine::make_probe_module(opts.probe_module);
  if (!module.module) {
    std::fprintf(stderr, "xmap_sim: %s\n", module.error.c_str());
    return 2;
  }

  // --- Parallel engine path ------------------------------------------------
  if (opts.threads > 0 || !opts.status_updates_file.empty()) {
    std::ofstream status_file;
    std::ostream* status_out = nullptr;
    if (opts.status_updates_file == "-") {
      status_out = &std::clog;  // stderr, keeps result output clean
    } else if (!opts.status_updates_file.empty()) {
      status_file.open(opts.status_updates_file);
      if (!status_file) {
        std::fprintf(stderr, "xmap_sim: cannot open %s\n",
                     opts.status_updates_file.c_str());
        return 2;
      }
      status_out = &status_file;
    }

    engine::EngineConfig engine_cfg;
    engine_cfg.world_specs = specs;
    engine_cfg.vendors = topo::paper::vendor_catalog();
    engine_cfg.build = build_cfg;
    engine_cfg.module = module.module.get();
    engine_cfg.scan = cfg;
    engine_cfg.threads = opts.threads > 0 ? opts.threads : 1;
    engine_cfg.status_out = status_out;
    engine_cfg.status_interval_ms = opts.status_interval_ms;
    engine_cfg.faults = fault_plan;
    engine_cfg.obs = obs_cfg;
    auto result = engine::run_parallel_scan(engine_cfg);
    if (!result.ok) {
      std::fprintf(stderr, "xmap_sim: %s\n", result.error.c_str());
      return 2;
    }

    // Records are pre-sorted deterministically by the engine, so the
    // output stream is byte-identical across runs for a fixed seed.
    writer->begin();
    for (const auto& record : result.records) {
      writer->record(record.response, record.when);
    }
    writer->end();
    if (!opts.quiet) {
      print_stats_footer(result.stats, engine_cfg.threads,
                         result.wall_seconds);
    }
    if (!write_obs_outputs(opts, result.trace, result.metrics_snapshot,
                           result.stage_profile)) {
      return 2;
    }
    if (result.failed_workers > 0) {
      std::fprintf(stderr, "xmap_sim: %d worker(s) failed; results partial\n",
                   result.failed_workers);
      return 1;
    }
    return 0;
  }

  // --- Classic single-thread in-process path -------------------------------
  obs::TraceBuffer trace_buf{obs_cfg.trace_level};
  obs::MetricsShard shard;
  obs::StageProfile stage_profile;
  obs::TraceBuffer* trace =
      obs_cfg.trace_level != obs::TraceLevel::kOff ? &trace_buf : nullptr;
  obs::MetricsShard* metrics = obs_cfg.metrics ? &shard : nullptr;
  obs::StageProfile* profile = obs_cfg.profile ? &stage_profile : nullptr;

  sim::Network net{opts.seed};
  net.set_obs(trace, metrics);
  auto internet = [&] {
    obs::ScopedStageTimer build_timer{profile, obs::Stage::kBuild};
    return topo::build_internet(net, specs, topo::paper::vendor_catalog(),
                                build_cfg);
  }();
  install_faults(net, internet, fault_plan);
  if (cfg.targets.empty()) {
    for (const auto& isp : internet.isps) {
      cfg.targets.push_back(
          scan::TargetSpec{isp.scan_base, isp.window_lo, isp.window_hi});
    }
  }
  auto* scanner = net.make_node<scan::SimChannelScanner>(cfg, *module.module);
  scanner->set_obs(obs_cfg, trace, metrics, profile);
  const int iface = topo::attach_vantage(
      net, internet, scanner, *net::Ipv6Prefix::parse("2001:500::/48"));
  scanner->set_iface(iface);

  writer->begin();
  scanner->on_response(
      [&writer](const scan::ProbeResponse& r, sim::SimTime when) {
        writer->record(r, when);
      });
  scanner->start();
  net.run();
  writer->end();

  if (!opts.quiet) print_stats_footer(scanner->stats(), 0, 0);
  const std::vector<obs::TraceEvent> events =
      obs::merge_traces({trace_buf.take()});
  const obs::MetricsSnapshot snapshot = obs::merge_shards({&shard});
  if (!write_obs_outputs(opts, events, snapshot, stage_profile)) return 2;
  return 0;
}
