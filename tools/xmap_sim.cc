// xmap_sim — the XMap scanner as a command-line tool, driven against the
// simulated Internet (the repo's substitute for a raw-socket backend; see
// DESIGN.md). Run --help for the flag reference; the vocabulary mirrors
// the released XMap/ZMap tools.
//
//   $ xmap_sim --world paper --probe-module icmp_echo --rate 100000
//              --output-format jsonl --output-file scan.jsonl
//   $ xmap_sim --threads 4 --status-updates-file -
//
// Exit codes: 0 complete, 1 worker failure (partial results), 2 bad
// config / I/O error, 3 interrupted by SIGINT/SIGTERM (resumable — a state
// file was written; see docs/recovery.md).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <tuple>

#include "analysis/store_export.h"
#include "engine/executor.h"
#include "engine/probe_factory.h"
#include "fabric/coordinator.h"
#include "netbase/exit_codes.h"
#include "store/writer.h"
#include "obs/config.h"
#include "obs/fabric_trace.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "recover/checkpoint.h"
#include "recover/signals.h"
#include "recover/state.h"
#include "topology/paper_profiles.h"
#include "topology/world.h"
#include "xmap/cli.h"
#include "xmap/output.h"
#include "xmap/scanner.h"
#include "xmap/traceroute.h"

using namespace xmap;

namespace {

// Exit codes come from the shared taxonomy (netbase/exit_codes.h):
// kExitOk, kExitWorkerFailure, kExitConfig, kExitInterrupted.

void print_stats_footer(const scan::ScanStats& stats, int threads,
                        double wall_seconds) {
  std::fprintf(
      stderr,
      "xmap_sim: %llu probes sent (%llu blocked, %llu retransmits), "
      "%llu responses (%llu validated, %llu discarded), hit rate %.2f%%, "
      "simulated duration %.2fs",
      static_cast<unsigned long long>(stats.sent),
      static_cast<unsigned long long>(stats.blocked),
      static_cast<unsigned long long>(stats.retransmits),
      static_cast<unsigned long long>(stats.received),
      static_cast<unsigned long long>(stats.validated),
      static_cast<unsigned long long>(stats.discarded),
      100.0 * stats.hit_rate(),
      static_cast<double>(stats.last_send - stats.first_send) /
          static_cast<double>(sim::kSecond));
  if (stats.duplicates > 0 || stats.corrupted > 0 || stats.late > 0) {
    std::fprintf(stderr, " [%llu duplicate, %llu corrupt, %llu late]",
                 static_cast<unsigned long long>(stats.duplicates),
                 static_cast<unsigned long long>(stats.corrupted),
                 static_cast<unsigned long long>(stats.late));
  }
  if (stats.rate_adjustments > 0) {
    std::fprintf(stderr, ", %llu rate adjustments",
                 static_cast<unsigned long long>(stats.rate_adjustments));
  }
  if (threads > 0) {
    std::fprintf(stderr, ", %d workers, wall %.2fs", threads, wall_seconds);
  }
  std::fputc('\n', stderr);
}

// Installs `plan` (if non-empty) on a freshly built classic-path network,
// registering every periphery device as a silent-window candidate.
void install_faults(sim::Network& net, const topo::BuiltInternet& internet,
                    const sim::FaultPlan& plan) {
  if (!plan.any()) return;
  sim::FaultInjector* injector = net.install_faults(plan);
  std::vector<sim::NodeId> candidates;
  for (const auto& isp : internet.isps) {
    for (const auto& device : isp.devices) {
      candidates.push_back(device.node);
    }
  }
  injector->choose_silent(candidates);
}

// Resolves the effective observability configuration: a file: world's
// "obs" section supplies the defaults, explicit CLI flags override field
// by field, and --trace-file / --metrics-file imply the matching pillar.
obs::ObsConfig resolve_obs(const scan::CliOptions& opts,
                           const std::optional<obs::ObsConfig>& world_obs) {
  obs::ObsConfig cfg = world_obs.value_or(obs::ObsConfig{});
  if (opts.trace_level) cfg.trace_level = *opts.trace_level;
  if (!opts.trace_file.empty() && cfg.trace_level == obs::TraceLevel::kOff &&
      !opts.trace_level) {
    cfg.trace_level = obs::TraceLevel::kScan;
  }
  if (!opts.metrics_file.empty()) cfg.metrics = true;
  if (opts.profile) cfg.profile = true;
  return cfg;
}

// Atomic artifact write (tmp + rename): a crash leaves the previous
// complete file or the new one, never a truncation. Paths under /dev/
// (e.g. --output-file /dev/null) are character devices a rename would
// clobber, so those stream directly.
bool emit_artifact(const std::string& path, const std::string& content) {
  if (path.rfind("/dev/", 0) == 0) {
    std::ofstream out{path};
    out << content;
    return static_cast<bool>(out);
  }
  std::string error;
  if (!recover::write_file_atomic(path, content, &error)) {
    std::fprintf(stderr, "xmap_sim: %s\n", error.c_str());
    return false;
  }
  return true;
}

// Writes the trace and metrics files and prints the --profile table.
// Returns false (after a diagnostic) if an output file cannot be written.
bool write_obs_outputs(const scan::CliOptions& opts,
                       const std::vector<obs::TraceEvent>& trace,
                       const obs::MetricsSnapshot& metrics,
                       const obs::StageProfile& profile) {
  if (!opts.trace_file.empty()) {
    // --trace-format wins; otherwise a .json suffix selects the Chrome
    // trace-event form (Perfetto / chrome://tracing), anything else JSONL.
    const std::string& path = opts.trace_file;
    const bool chrome =
        opts.trace_format == "chrome" ||
        (opts.trace_format.empty() && path.size() >= 5 &&
         path.compare(path.size() - 5, 5, ".json") == 0);
    std::ostringstream buf;
    if (chrome) {
      obs::write_chrome_trace(buf, trace);
    } else {
      obs::write_trace_jsonl(buf, trace);
    }
    if (!emit_artifact(path, buf.str())) return false;
  }
  if (!opts.metrics_file.empty()) {
    if (!emit_artifact(opts.metrics_file, obs::prometheus_text(metrics))) {
      return false;
    }
  }
  if (opts.profile) {
    std::fputs(obs::stage_profile_table(profile).c_str(), stderr);
  }
  return true;
}

// The scan-configuration identity a checkpoint is bound to (and validated
// against on --resume). `targets` records the explicit --target specs;
// world-default targets are pinned by (world, window_bits, seed) instead.
recover::Fingerprint make_fingerprint(const scan::CliOptions& opts,
                                      const scan::Blocklist* blocklist,
                                      const sim::FaultPlan& faults) {
  recover::Fingerprint fp;
  fp.seed = opts.seed;
  fp.world = opts.world;
  fp.window_bits = opts.window_bits;
  fp.probe_module = opts.probe_module;
  fp.rate_pps = opts.rate_pps;
  fp.shard = opts.shard;
  fp.shards = opts.shards;
  // The effective worker count: the engine path runs max(threads, 1)
  // workers, the classic path records 0. Cursor counts follow from it.
  fp.threads = (opts.threads > 0 || !opts.status_updates_file.empty())
                   ? std::max(opts.threads, 1)
                   : 0;
  fp.retries = opts.retries;
  fp.retry_spacing_ms = opts.retry_spacing_ms;
  fp.cooldown_secs = opts.cooldown_secs;
  fp.max_probes = opts.max_probes;
  fp.adaptive_rate = opts.adaptive_rate;
  fp.output_format = opts.output_format;
  fp.blocklist_hash =
      blocklist != nullptr ? recover::blocklist_fingerprint(*blocklist) : 0;
  fp.fault_plan_hash = recover::fault_plan_fingerprint(faults);
  for (const auto& target : opts.targets) {
    fp.targets.push_back(target.to_string());
  }
  return fp;
}

// Builds and atomically writes the --store-file snapshot from the merged
// record stream. StoreBuilder's order-independent duplicate merge plus the
// deterministic geo/vendor sections make the written bytes a pure function
// of (config, seed) — identical across --threads values. Works over both
// paths' record types (each exposes .response and .when).
template <typename Records>
bool write_store_file(const scan::CliOptions& opts,
                      const recover::Fingerprint& fingerprint,
                      const topo::BuiltInternet& internet,
                      const Records& records) {
  store::StoreBuilder builder;
  ana::fill_geo(builder, internet.geo);
  builder.set_config_fingerprint(ana::scan_config_fingerprint(fingerprint));
  for (const auto& record : records) {
    ana::add_response(builder, record.response,
                      record.when / sim::kMicrosecond, internet.oui);
  }
  std::string error;
  if (!builder.write(opts.store_file, &error)) {
    std::fprintf(stderr, "xmap_sim: --store-file: %s\n", error.c_str());
    return false;
  }
  return true;
}

std::string default_checkpoint_path(const scan::CliOptions& opts) {
  if (!opts.checkpoint_file.empty()) return opts.checkpoint_file;
  if (!opts.output_file.empty() &&
      opts.output_file.rfind("/dev/", 0) != 0) {
    return opts.output_file + ".state";
  }
  return "xmap.state";
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = scan::parse_cli(argc, argv);
  if (!parsed.options) {
    std::fprintf(stderr, "xmap_sim: %s\n(try --help)\n",
                 parsed.error.c_str());
    return kExitConfig;
  }
  const scan::CliOptions& opts = *parsed.options;
  if (opts.help) {
    std::fputs(scan::cli_usage().c_str(), stdout);
    return kExitOk;
  }
  if (opts.list_probe_modules) {
    for (const auto& name : scan::probe_module_names()) {
      std::printf("%s\n", name.c_str());
    }
    return kExitOk;
  }

  // --- World ---------------------------------------------------------------
  topo::BuildConfig build_cfg;
  build_cfg.window_bits = opts.window_bits;
  build_cfg.seed = opts.seed;
  build_cfg.device_icmp_rate = opts.device_icmp_rate;
  build_cfg.router_icmp_rate = opts.router_icmp_rate;
  auto world = topo::resolve_world(opts.world, opts.seed,
                                   topo::paper::vendor_catalog());
  if (!world.specs) {
    std::fprintf(stderr, "xmap_sim: %s\n", world.error.c_str());
    return kExitConfig;
  }
  const std::vector<topo::IspSpec>& specs = *world.specs;
  // CLI fault flags build a complete plan and beat a file: world's
  // embedded one; either way the plan is empty unless dials are nonzero.
  const sim::FaultPlan fault_plan = opts.faults_given
                                        ? opts.faults
                                        : world.faults.value_or(
                                              sim::FaultPlan{});
  const obs::ObsConfig obs_cfg = resolve_obs(opts, world.obs);

  // --- Output --------------------------------------------------------------
  // File output is buffered and written atomically at exit; a resumed run
  // rewrites the whole artifact, so the final file never mixes runs.
  const bool buffered_output = !opts.output_file.empty();
  std::ostringstream out_buf;
  std::ostream& out = buffered_output ? static_cast<std::ostream&>(out_buf)
                                      : std::cout;
  auto writer = scan::make_writer(opts.output_format, out);
  auto flush_output = [&]() -> bool {
    if (!buffered_output) return true;
    return emit_artifact(opts.output_file, out_buf.str());
  };

  // --- Scan configuration --------------------------------------------------
  scan::ScanConfig cfg;
  cfg.targets = opts.targets;
  cfg.source = *net::Ipv6Address::parse("2001:500::1");
  cfg.seed = opts.seed;
  cfg.probes_per_sec = opts.rate_pps;
  cfg.shard = opts.shard;
  cfg.shards = opts.shards;
  cfg.max_probes = opts.max_probes;
  cfg.retries = opts.retries;
  cfg.retry_spacing_ms = opts.retry_spacing_ms;
  cfg.cooldown_secs = opts.cooldown_secs;
  cfg.adaptive_rate = opts.adaptive_rate;
  const scan::Blocklist blocklist = scan::Blocklist::well_behaved_defaults();
  if (opts.use_default_blocklist) cfg.blocklist = &blocklist;

  if (opts.probe_module == "traceroute" && !opts.store_file.empty()) {
    // Traceroute records are per-hop path samples, not unique-responder
    // periphery results; the store's one-record-per-key model does not fit.
    std::fprintf(stderr,
                 "xmap_sim: --store-file is not supported with the "
                 "traceroute module\n");
    return kExitConfig;
  }

  if (opts.probe_module == "traceroute") {
    // Traceroute mode: hop-walk one address per delegation slot (bounded by
    // --max-probes, counted in targets). Each responding hop is one record.
    sim::Network net{opts.seed};
    auto internet = topo::build_internet(net, specs,
                                         topo::paper::vendor_catalog(),
                                         build_cfg);
    install_faults(net, internet, fault_plan);
    if (cfg.targets.empty()) {
      for (const auto& isp : internet.isps) {
        cfg.targets.push_back(
            scan::TargetSpec{isp.scan_base, isp.window_lo, isp.window_hi});
      }
    }
    scan::TracerouteRunner::Config tr_cfg;
    tr_cfg.source = cfg.source;
    tr_cfg.seed = opts.seed;
    auto* runner = net.make_node<scan::TracerouteRunner>(tr_cfg);
    const int tr_iface = topo::attach_vantage(
        net, internet, runner, *net::Ipv6Prefix::parse("2001:500::/48"));
    runner->set_iface(tr_iface);

    std::uint64_t traced = 0;
    const std::uint64_t cap = opts.max_probes > 0 ? opts.max_probes : 256;
    for (const auto& spec : cfg.targets) {
      const std::uint64_t slots =
          spec.count().fits_u64() ? spec.count().to_u64() : cap;
      for (std::uint64_t i = 0; i < slots && traced < cap; ++i, ++traced) {
        runner->trace(spec.nth_address(net::Uint128{i}, opts.seed));
      }
    }
    net.run();

    writer->begin();
    std::uint64_t hops = 0;
    for (const auto& result : runner->results()) {
      for (const auto& hop : result.hops) {
        scan::ProbeResponse record;
        record.kind = hop.kind;
        record.responder = hop.router;
        record.probe_dst = result.target;
        record.hop_limit = static_cast<std::uint8_t>(hop.distance);
        writer->record(record, net.now());
        ++hops;
      }
    }
    writer->end();
    if (!flush_output()) return kExitConfig;
    if (!opts.quiet) {
      std::fprintf(stderr,
                   "xmap_sim: traced %llu targets, observed %llu hops\n",
                   static_cast<unsigned long long>(traced),
                   static_cast<unsigned long long>(hops));
    }
    return kExitOk;
  }

  auto module = engine::make_probe_module(opts.probe_module);
  if (!module.module) {
    std::fprintf(stderr, "xmap_sim: %s\n", module.error.c_str());
    return kExitConfig;
  }

  // --- Checkpoint/resume plumbing (bulk paths) -----------------------------
  const recover::Fingerprint fingerprint = make_fingerprint(
      opts, opts.use_default_blocklist ? &blocklist : nullptr, fault_plan);
  const std::string checkpoint_path = default_checkpoint_path(opts);

  recover::CheckpointState resume_state;
  bool resuming = false;
  if (!opts.resume_file.empty()) {
    auto loaded = recover::load_checkpoint(opts.resume_file);
    if (!loaded.state) {
      std::fprintf(stderr, "xmap_sim: --resume %s: %s\n",
                   opts.resume_file.c_str(), loaded.error.c_str());
      return kExitConfig;
    }
    resume_state = std::move(*loaded.state);
    const std::string mismatch = resume_state.fingerprint.diff(fingerprint);
    if (!mismatch.empty()) {
      std::fprintf(stderr,
                   "xmap_sim: --resume %s: configuration does not match the "
                   "checkpoint (%s); rerun with the original flags\n",
                   opts.resume_file.c_str(), mismatch.c_str());
      return kExitConfig;
    }
    if (!resume_state.has_obs &&
        (!opts.trace_file.empty() || !opts.metrics_file.empty())) {
      std::fprintf(
          stderr,
          "xmap_sim: --resume %s: this is a mid-flight snapshot without "
          "trace/metrics state, so resumed observability artifacts would be "
          "incomplete; resume from a shutdown checkpoint or drop "
          "--trace-file/--metrics-file\n",
          opts.resume_file.c_str());
      return kExitConfig;
    }
    resuming = true;
  }

  recover::ShutdownController shutdown;
  shutdown.install();
  auto write_state = [&](recover::CheckpointState& state) -> bool {
    state.fingerprint = fingerprint;
    std::string error;
    if (!recover::write_checkpoint(checkpoint_path, state, &error)) {
      std::fprintf(stderr, "xmap_sim: checkpoint write failed: %s\n",
                   error.c_str());
      return false;
    }
    return true;
  };

  // --- Distributed fabric path ---------------------------------------------
  if (opts.fabric_nodes > 0) {
    fabric::FabricConfig fcfg;
    fcfg.world_specs = specs;
    fcfg.vendors = topo::paper::vendor_catalog();
    fcfg.build = build_cfg;
    fcfg.module = module.module.get();
    fcfg.scan = cfg;
    fcfg.faults = fault_plan;
    fcfg.fabric_faults = opts.fabric_faults;
    fcfg.nodes = opts.fabric_nodes;
    fcfg.shards = opts.fabric_shards;
    if (opts.checkpoint_interval != 0) {
      fcfg.checkpoint_interval_targets = opts.checkpoint_interval;
    }
    fcfg.heartbeat_interval_ms = opts.fabric_heartbeat_ms;
    fcfg.heartbeat_timeout_ms = opts.fabric_heartbeat_timeout_ms;
    if (opts.fabric_transport == "tcp") {
      fcfg.transport = fabric::TransportKind::kTcp;
      fcfg.listen_address = opts.fabric_listen;
      fcfg.connect_address = opts.fabric_connect;
    }
    fcfg.backoff.seed = opts.seed;
    fcfg.fingerprint = fingerprint;
    if (!opts.quiet) fcfg.log = &std::clog;
    // Scan-content observability rides the protocol: --trace-file /
    // --metrics-file / --profile come back byte-identical to an engine run
    // at --fabric-shards threads. The fabric-specific artifacts are wall
    // clock and live in their own files.
    fcfg.obs = obs_cfg;
    fcfg.fabric_trace = !opts.fabric_trace_file.empty();
    fcfg.flight_recorder_events = opts.flight_recorder_events;
    fcfg.flight_recorder_prefix = opts.flight_recorder_prefix;
    if (fcfg.flight_recorder_events > 0 &&
        fcfg.flight_recorder_prefix.empty()) {
      fcfg.flight_recorder_prefix =
          (!opts.output_file.empty() && opts.output_file != "-" &&
           opts.output_file.rfind("/dev/", 0) != 0)
              ? opts.output_file + ".flightrec"
              : "fabric.flightrec";
    } else if (fcfg.flight_recorder_events == 0 &&
               !fcfg.flight_recorder_prefix.empty()) {
      fcfg.flight_recorder_events = obs::FlightRecorder::kDefaultCapacity;
    }
    std::ofstream timeline_file;
    if (!opts.fabric_timeline_file.empty()) {
      timeline_file.open(opts.fabric_timeline_file);
      if (!timeline_file) {
        std::fprintf(stderr, "xmap_sim: cannot open %s\n",
                     opts.fabric_timeline_file.c_str());
        return kExitConfig;
      }
      fcfg.timeline = &timeline_file;
    }
    auto result = fabric::run_fabric_scan(fcfg);
    if (!result.ok) {
      std::fprintf(stderr, "xmap_sim: %s\n", result.error.c_str());
      return kExitConfig;
    }
    if (timeline_file.is_open()) timeline_file.close();

    writer->begin();
    for (const auto& record : result.records) {
      writer->record(record.response, record.when);
    }
    writer->end();
    if (!flush_output()) return kExitConfig;
    if (!opts.store_file.empty()) {
      // Workers build their worlds in their own threads; rebuild one on a
      // scratch network for the deterministic geo/vendor attribution.
      sim::Network store_net{opts.seed};
      const auto store_internet = topo::build_internet(
          store_net, specs, topo::paper::vendor_catalog(), build_cfg);
      if (!write_store_file(opts, fingerprint, store_internet,
                            result.records)) {
        return kExitConfig;
      }
    }
    for (const auto& error : result.worker_errors) {
      std::fprintf(stderr, "xmap_sim: fabric: %s\n", error.c_str());
    }
    // Deterministic scan observability first (identical bytes to the
    // engine), then the wall-clock fabric artifacts.
    if (!write_obs_outputs(opts, result.trace, result.scan_metrics,
                           result.stage_profile)) {
      return kExitConfig;
    }
    if (!opts.fabric_trace_file.empty()) {
      std::ostringstream buf;
      obs::write_fabric_chrome_trace(buf, result.fabric_spans);
      if (!emit_artifact(opts.fabric_trace_file, buf.str())) {
        return kExitConfig;
      }
    }
    if (!opts.fabric_metrics_file.empty()) {
      // Everything, deployment series included: the scan registry plus the
      // wall-clock fabric_* counters (per-node labels and all).
      const obs::MetricsSnapshot full = obs::merge_snapshots(
          {&result.scan_metrics, &result.metrics});
      if (!emit_artifact(opts.fabric_metrics_file,
                         obs::prometheus_text(full, true))) {
        return kExitConfig;
      }
    }
    for (const auto& dump : result.recorder_dumps) {
      std::fprintf(stderr, "xmap_sim: fabric: flight recorder dumped to %s\n",
                   dump.c_str());
    }
    if (!opts.quiet) {
      print_stats_footer(result.stats, opts.fabric_nodes,
                         result.wall_seconds);
      std::fprintf(
          stderr,
          "xmap_sim: fabric: %d node(s), %d shard(s), %llu reassignment(s), "
          "%d dead worker(s), %llu missed heartbeat(s), %llu retransmit(s), "
          "%llu rejected frame(s)\n",
          opts.fabric_nodes, opts.fabric_shards,
          static_cast<unsigned long long>(result.reassignments),
          result.dead_workers,
          static_cast<unsigned long long>(result.missed_heartbeats),
          static_cast<unsigned long long>(result.retransmits),
          static_cast<unsigned long long>(result.frames_rejected));
      if (opts.fabric_transport == "tcp") {
        std::fprintf(
            stderr,
            "xmap_sim: fabric: tcp transport: %llu reconnect(s), %llu bytes "
            "sent, %llu bytes received\n",
            static_cast<unsigned long long>(result.reconnects),
            static_cast<unsigned long long>(result.bytes_sent),
            static_cast<unsigned long long>(result.bytes_received));
      }
    }
    if (result.failed) {
      std::fprintf(stderr,
                   "xmap_sim: fabric: incomplete shards; results partial\n");
      return kExitWorkerFailure;
    }
    return kExitOk;
  }

  // --- Parallel engine path ------------------------------------------------
  if (opts.threads > 0 || !opts.status_updates_file.empty()) {
    // Live status streams to "<path>.tmp" (tail-able mid-scan) and is
    // renamed into place at exit, like every other artifact.
    std::ofstream status_file;
    std::ostream* status_out = nullptr;
    std::string status_tmp;
    if (opts.status_updates_file == "-") {
      status_out = &std::clog;  // stderr, keeps result output clean
    } else if (!opts.status_updates_file.empty()) {
      status_tmp = opts.status_updates_file.rfind("/dev/", 0) == 0
                       ? opts.status_updates_file
                       : opts.status_updates_file + ".tmp";
      status_file.open(status_tmp);
      if (!status_file) {
        std::fprintf(stderr, "xmap_sim: cannot open %s\n",
                     status_tmp.c_str());
        return kExitConfig;
      }
      status_out = &status_file;
    }
    auto finish_status = [&] {
      if (!status_file.is_open()) return;
      status_file.flush();
      status_file.close();
      if (status_tmp != opts.status_updates_file) {
        std::rename(status_tmp.c_str(), opts.status_updates_file.c_str());
      }
    };

    engine::EngineConfig engine_cfg;
    engine_cfg.world_specs = specs;
    engine_cfg.vendors = topo::paper::vendor_catalog();
    engine_cfg.build = build_cfg;
    engine_cfg.module = module.module.get();
    engine_cfg.scan = cfg;
    engine_cfg.threads = opts.threads > 0 ? opts.threads : 1;
    engine_cfg.status_out = status_out;
    engine_cfg.status_interval_ms = opts.status_interval_ms;
    engine_cfg.faults = fault_plan;
    engine_cfg.obs = obs_cfg;
    engine_cfg.shutdown_flag = shutdown.flag();
    if (opts.shutdown_after_probes != 0) {
      engine_cfg.shutdown_at_raw_slot = opts.shutdown_after_probes;
    }
    if (resuming) engine_cfg.resume = &resume_state;
    if (opts.checkpoint_interval != 0) {
      engine_cfg.checkpoint_interval_targets = opts.checkpoint_interval;
      engine_cfg.checkpoint_file = checkpoint_path;
      engine_cfg.checkpoint_sink = [&](recover::CheckpointState& state) {
        (void)write_state(state);
      };
    }
    auto result = engine::run_parallel_scan(engine_cfg);
    if (!result.ok) {
      std::fprintf(stderr, "xmap_sim: %s\n", result.error.c_str());
      finish_status();
      return kExitConfig;
    }

    // Records are pre-sorted deterministically by the engine (checkpoint
    // records included), so the output stream is byte-identical across
    // runs — interrupted-then-resumed or not — for a fixed seed.
    writer->begin();
    for (const auto& record : result.records) {
      writer->record(record.response, record.when);
    }
    writer->end();
    if (!flush_output()) {
      finish_status();
      return kExitConfig;
    }
    if (!opts.store_file.empty()) {
      // The engine builds its worlds inside the workers; rebuild one on a
      // scratch network to recover the deterministic geo/vendor attribution.
      sim::Network store_net{opts.seed};
      const auto store_internet = topo::build_internet(
          store_net, specs, topo::paper::vendor_catalog(), build_cfg);
      if (!write_store_file(opts, fingerprint, store_internet,
                            result.records)) {
        finish_status();
        return kExitConfig;
      }
    }
    if (!opts.quiet) {
      print_stats_footer(result.stats, engine_cfg.threads,
                         result.wall_seconds);
    }
    if (!write_obs_outputs(opts, result.trace, result.metrics_snapshot,
                           result.stage_profile)) {
      finish_status();
      return kExitConfig;
    }
    int exit_code = kExitOk;
    if (result.interrupted) {
      // Quiescent shutdown checkpoint: every drawn lifecycle drained, so
      // records, trace and metrics snapshot the scan exactly.
      recover::CheckpointState state;
      state.quiescent = true;
      state.signal = shutdown.signal();
      state.stats = result.stats;
      for (const auto& cursor : result.cursors) {
        state.cursors.push_back(
            recover::WorkerCursor{cursor.spec_steps, cursor.frontier_slot});
      }
      for (const auto& record : result.records) {
        state.records.push_back(recover::CheckpointRecord{
            record.response, record.when, record.worker, record.raw_slot});
      }
      state.has_obs = true;
      state.trace = result.trace;
      state.metrics = result.metrics_snapshot;
      if (!write_state(state)) {
        finish_status();
        return kExitConfig;
      }
      if (!opts.quiet) {
        std::fprintf(stderr,
                     "xmap_sim: interrupted; resume with --resume %s\n",
                     checkpoint_path.c_str());
      }
      exit_code = kExitInterrupted;
    }
    finish_status();
    if (result.failed_workers > 0) {
      std::fprintf(stderr, "xmap_sim: %d worker(s) failed; results partial\n",
                   result.failed_workers);
      return kExitWorkerFailure;
    }
    return exit_code;
  }

  // --- Classic single-thread in-process path -------------------------------
  obs::TraceBuffer trace_buf{obs_cfg.trace_level};
  obs::MetricsShard shard;
  obs::StageProfile stage_profile;
  obs::TraceBuffer* trace =
      obs_cfg.trace_level != obs::TraceLevel::kOff ? &trace_buf : nullptr;
  obs::MetricsShard* metrics = obs_cfg.metrics ? &shard : nullptr;
  obs::StageProfile* profile = obs_cfg.profile ? &stage_profile : nullptr;

  cfg.shutdown_flag = shutdown.flag();
  if (opts.shutdown_after_probes != 0) {
    cfg.shutdown_at_raw_slot = opts.shutdown_after_probes;
  }
  if (resuming) {
    if (resume_state.cursors.size() != 1) {
      std::fprintf(stderr,
                   "xmap_sim: --resume %s: expected 1 cursor for the "
                   "classic path, found %zu\n",
                   opts.resume_file.c_str(), resume_state.cursors.size());
      return kExitConfig;
    }
    cfg.resume_spec_steps = resume_state.cursors[0].spec_steps;
  }

  sim::Network net{opts.seed};
  net.set_obs(trace, metrics);
  auto internet = [&] {
    obs::ScopedStageTimer build_timer{profile, obs::Stage::kBuild};
    return topo::build_internet(net, specs, topo::paper::vendor_catalog(),
                                build_cfg);
  }();
  install_faults(net, internet, fault_plan);
  if (cfg.targets.empty()) {
    for (const auto& isp : internet.isps) {
      cfg.targets.push_back(
          scan::TargetSpec{isp.scan_base, isp.window_lo, isp.window_hi});
    }
  }
  auto* scanner = net.make_node<scan::SimChannelScanner>(cfg, *module.module);
  scanner->set_obs(obs_cfg, trace, metrics, profile);
  const int iface = topo::attach_vantage(
      net, internet, scanner, *net::Ipv6Prefix::parse("2001:500::/48"));
  scanner->set_iface(iface);

  // Records are retained (seeded from the checkpoint when resuming) and
  // written content-sorted at the end, the same deterministic order the
  // engine path uses — a resumed run's output is byte-identical to an
  // uninterrupted one.
  struct ClassicRecord {
    scan::ProbeResponse response;
    sim::SimTime when = 0;
    std::uint64_t raw_slot = 0;
  };
  std::vector<ClassicRecord> records;
  if (resuming) {
    records.reserve(resume_state.records.size());
    for (const auto& r : resume_state.records) {
      records.push_back(ClassicRecord{r.response, r.when, r.raw_slot});
    }
  }
  scanner->on_response_slotted(
      [&records](const scan::ProbeResponse& r, sim::SimTime when,
                 std::uint64_t raw_slot) {
        records.push_back(ClassicRecord{r, when, raw_slot});
      });
  if (opts.checkpoint_interval != 0) {
    scanner->set_checkpoint_hook(
        opts.checkpoint_interval, [&](const scan::ScanCursor& cursor) {
          recover::CheckpointState state;
          state.quiescent = false;
          state.signal = 0;
          state.stats = scanner->stats();
          if (resuming) state.stats += resume_state.stats;
          state.cursors.push_back(recover::WorkerCursor{
              cursor.spec_steps, cursor.frontier_slot});
          for (const auto& r : records) {
            if (r.raw_slot < cursor.frontier_slot) {
              state.records.push_back(recover::CheckpointRecord{
                  r.response, r.when, 0, r.raw_slot});
            }
          }
          (void)write_state(state);
        });
  }
  scanner->start();
  net.run();

  scan::ScanStats total_stats = scanner->stats();
  if (resuming) total_stats += resume_state.stats;

  std::sort(records.begin(), records.end(),
            [](const ClassicRecord& a, const ClassicRecord& b) {
              return std::tuple(a.when, a.response.responder,
                                a.response.probe_dst,
                                static_cast<int>(a.response.kind),
                                a.raw_slot) <
                     std::tuple(b.when, b.response.responder,
                                b.response.probe_dst,
                                static_cast<int>(b.response.kind),
                                b.raw_slot);
            });
  writer->begin();
  for (const auto& record : records) {
    writer->record(record.response, record.when);
  }
  writer->end();
  if (!flush_output()) return kExitConfig;
  if (!opts.store_file.empty() &&
      !write_store_file(opts, fingerprint, internet, records)) {
    return kExitConfig;
  }

  if (!opts.quiet) print_stats_footer(total_stats, 0, 0);
  std::vector<std::vector<obs::TraceEvent>> trace_parts;
  trace_parts.push_back(trace_buf.take());
  if (resuming && resume_state.has_obs) {
    trace_parts.push_back(resume_state.trace);
  }
  const std::vector<obs::TraceEvent> events =
      obs::merge_traces(std::move(trace_parts));
  obs::MetricsSnapshot snapshot = obs::merge_shards({&shard});
  if (resuming && resume_state.has_obs) {
    snapshot = obs::merge_snapshots({&resume_state.metrics, &snapshot});
  }
  if (!write_obs_outputs(opts, events, snapshot, stage_profile)) {
    return kExitConfig;
  }

  if (scanner->interrupted()) {
    recover::CheckpointState state;
    state.quiescent = true;
    state.signal = shutdown.signal();
    state.stats = total_stats;
    const scan::ScanCursor cursor = scanner->cursor();
    state.cursors.push_back(
        recover::WorkerCursor{cursor.spec_steps, cursor.frontier_slot});
    for (const auto& r : records) {
      state.records.push_back(
          recover::CheckpointRecord{r.response, r.when, 0, r.raw_slot});
    }
    state.has_obs = true;
    state.trace = events;
    state.metrics = snapshot;
    if (!write_state(state)) return kExitConfig;
    if (!opts.quiet) {
      std::fprintf(stderr, "xmap_sim: interrupted; resume with --resume %s\n",
                   checkpoint_path.c_str());
    }
    return kExitInterrupted;
  }
  return kExitOk;
}
