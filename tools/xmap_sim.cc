// xmap_sim — the XMap scanner as a command-line tool, driven against the
// simulated Internet (the repo's substitute for a raw-socket backend; see
// DESIGN.md). Run --help for the flag reference; the vocabulary mirrors
// the released XMap/ZMap tools.
//
//   $ xmap_sim --world paper --probe-module icmp_echo --rate 100000
//              --output-format jsonl --output-file scan.jsonl
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>

#include "services/dns_codec.h"
#include "topology/paper_profiles.h"
#include "topology/spec_loader.h"
#include "xmap/cli.h"
#include "xmap/output.h"
#include "xmap/scanner.h"
#include "xmap/traceroute.h"

using namespace xmap;

namespace {

std::unique_ptr<scan::ProbeModule> make_module(const std::string& selector) {
  if (selector == "icmp_echo") {
    return std::make_unique<scan::IcmpEchoProbe>(64);
  }
  if (selector.rfind("icmp_echo:", 0) == 0) {
    return std::make_unique<scan::IcmpEchoProbe>(
        static_cast<std::uint8_t>(std::atoi(selector.c_str() + 10)));
  }
  if (selector.rfind("tcp_syn:", 0) == 0) {
    return std::make_unique<scan::TcpSynProbe>(
        static_cast<std::uint16_t>(std::atoi(selector.c_str() + 8)));
  }
  if (selector == "udp_dns") {
    return std::make_unique<scan::UdpProbe>(
        53, svc::make_version_query(0x4242).encode(), "udp_dns");
  }
  if (selector == "udp_ntp") {
    pkt::Bytes ntp(48, 0);
    ntp[0] = (4 << 3) | 3;
    return std::make_unique<scan::UdpProbe>(123, std::move(ntp), "udp_ntp");
  }
  return nullptr;  // "traceroute" handled by the runner path below
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = scan::parse_cli(argc, argv);
  if (!parsed.options) {
    std::fprintf(stderr, "xmap_sim: %s\n(try --help)\n",
                 parsed.error.c_str());
    return 2;
  }
  const scan::CliOptions& opts = *parsed.options;
  if (opts.help) {
    std::fputs(scan::cli_usage().c_str(), stdout);
    return 0;
  }
  if (opts.list_probe_modules) {
    for (const auto& name : scan::probe_module_names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  // --- Substrate -----------------------------------------------------------
  sim::Network net{opts.seed};
  topo::BuildConfig build_cfg;
  build_cfg.window_bits = opts.window_bits;
  build_cfg.seed = opts.seed;
  std::vector<topo::IspSpec> specs;
  if (opts.world == "paper") {
    specs = topo::paper::isp_specs();
  } else if (opts.world.rfind("bgp:", 0) == 0) {
    specs = topo::paper::bgp_specs(std::atoi(opts.world.c_str() + 4),
                                   opts.seed);
  } else {  // file:<path>
    auto loaded = topo::load_specs_from_file(
        opts.world.substr(5), topo::paper::vendor_catalog());
    if (!loaded.specs) {
      std::fprintf(stderr, "xmap_sim: %s\n", loaded.error.c_str());
      return 2;
    }
    specs = std::move(*loaded.specs);
  }
  auto internet = topo::build_internet(net, specs,
                                       topo::paper::vendor_catalog(),
                                       build_cfg);

  // --- Output --------------------------------------------------------------
  std::ofstream file;
  if (!opts.output_file.empty()) {
    file.open(opts.output_file);
    if (!file) {
      std::fprintf(stderr, "xmap_sim: cannot open %s\n",
                   opts.output_file.c_str());
      return 2;
    }
  }
  std::ostream& out = opts.output_file.empty() ? std::cout : file;
  auto writer = scan::make_writer(opts.output_format, out);

  // --- Scan ----------------------------------------------------------------
  scan::ScanConfig cfg;
  cfg.targets = opts.targets;
  if (cfg.targets.empty()) {
    for (const auto& isp : internet.isps) {
      cfg.targets.push_back(
          scan::TargetSpec{isp.scan_base, isp.window_lo, isp.window_hi});
    }
  }

  if (opts.probe_module == "traceroute") {
    // Traceroute mode: hop-walk one address per delegation slot (bounded by
    // --max-probes, counted in targets). Each responding hop is one record.
    scan::TracerouteRunner::Config tr_cfg;
    tr_cfg.source = *net::Ipv6Address::parse("2001:500::1");
    tr_cfg.seed = opts.seed;
    auto* runner = net.make_node<scan::TracerouteRunner>(tr_cfg);
    const int tr_iface = topo::attach_vantage(
        net, internet, runner, *net::Ipv6Prefix::parse("2001:500::/48"));
    runner->set_iface(tr_iface);

    std::uint64_t traced = 0;
    const std::uint64_t cap = opts.max_probes > 0 ? opts.max_probes : 256;
    for (const auto& spec : cfg.targets) {
      const std::uint64_t slots =
          spec.count().fits_u64() ? spec.count().to_u64() : cap;
      for (std::uint64_t i = 0; i < slots && traced < cap; ++i, ++traced) {
        runner->trace(spec.nth_address(net::Uint128{i}, opts.seed));
      }
    }
    net.run();

    writer->begin();
    std::uint64_t hops = 0;
    for (const auto& result : runner->results()) {
      for (const auto& hop : result.hops) {
        scan::ProbeResponse record;
        record.kind = hop.kind;
        record.responder = hop.router;
        record.probe_dst = result.target;
        record.hop_limit = static_cast<std::uint8_t>(hop.distance);
        writer->record(record, net.now());
        ++hops;
      }
    }
    writer->end();
    if (!opts.quiet) {
      std::fprintf(stderr,
                   "xmap_sim: traced %llu targets, observed %llu hops\n",
                   static_cast<unsigned long long>(traced),
                   static_cast<unsigned long long>(hops));
    }
    return 0;
  }
  cfg.source = *net::Ipv6Address::parse("2001:500::1");
  cfg.seed = opts.seed;
  cfg.probes_per_sec = opts.rate_pps;
  cfg.shard = opts.shard;
  cfg.shards = opts.shards;
  cfg.max_probes = opts.max_probes;
  cfg.retries = opts.retries;
  const scan::Blocklist blocklist = scan::Blocklist::well_behaved_defaults();
  if (opts.use_default_blocklist) cfg.blocklist = &blocklist;

  auto module = make_module(opts.probe_module);
  if (!module) {
    std::fprintf(stderr, "xmap_sim: probe module '%s' is not available in "
                         "the bulk driver\n",
                 opts.probe_module.c_str());
    return 2;
  }

  auto* scanner = net.make_node<scan::SimChannelScanner>(cfg, *module);
  const int iface = topo::attach_vantage(
      net, internet, scanner, *net::Ipv6Prefix::parse("2001:500::/48"));
  scanner->set_iface(iface);

  writer->begin();
  scanner->on_response(
      [&writer](const scan::ProbeResponse& r, sim::SimTime when) {
        writer->record(r, when);
      });
  scanner->start();
  net.run();
  writer->end();

  if (!opts.quiet) {
    const auto& stats = scanner->stats();
    std::fprintf(
        stderr,
        "xmap_sim: %llu probes sent (%llu blocked), %llu responses "
        "(%llu validated, %llu discarded), hit rate %.2f%%, "
        "simulated duration %.2fs\n",
        static_cast<unsigned long long>(stats.sent),
        static_cast<unsigned long long>(stats.blocked),
        static_cast<unsigned long long>(stats.received),
        static_cast<unsigned long long>(stats.validated),
        static_cast<unsigned long long>(stats.discarded),
        100.0 * stats.hit_rate(),
        static_cast<double>(stats.last_send - stats.first_send) /
            static_cast<double>(sim::kSecond));
  }
  return 0;
}
