#!/usr/bin/env python3
"""Compare BENCH_*.json outputs against checked-in baselines.

Usage:
    check_bench_regression.py BASELINE CURRENT [--threshold 0.40]

BASELINE and CURRENT are either two JSON files (as written by
bench::BenchJson) or two directories, in which case every BENCH_*.json in
BASELINE is matched by filename in CURRENT.

A metric regresses when it moves against its direction by more than the
threshold (relative to the baseline value). The direction comes from the
entry's `direction` field ("higher" = bigger is better, "lower" = smaller
is better, e.g. latencies and overheads); older files carry only the
boolean `higher_is_better`, which is honoured as a fallback. The default
threshold is deliberately loose (40%): CI runners are noisy and share
hardware, so this is a smoke test for step-change regressions — a probe
path that stops using its template, a checksum gone quadratic — not a
micro-benchmark gate. Improvements and missing/extra metrics are reported
but never fail the check.

--floor FILE:METRIC:VALUE (repeatable) additionally enforces an absolute
bar on a current-run metric, independent of the baseline: a
higher-is-better metric fails below VALUE, a lower-is-better metric fails
above it. This is how acceptance bars ("the batched scan path must sustain
at least N pps") ride the same CI step as the relative smoke check.

Exit status: 0 = no regressions, 1 = at least one, 2 = usage/IO error.
"""

import argparse
import json
import os
import sys


def load_results(path):
    """Returns {metric: (value, higher_is_better)} from one bench JSON."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for entry in doc.get("results", []):
        direction = entry.get("direction")
        if direction is not None:
            if direction not in ("higher", "lower"):
                raise ValueError(
                    f"metric {entry['metric']!r}: direction must be "
                    f"'higher' or 'lower', got {direction!r}")
            higher_is_better = direction == "higher"
        else:
            higher_is_better = bool(entry.get("higher_is_better", True))
        out[entry["metric"]] = (float(entry["value"]), higher_is_better)
    return out


def compare(name, baseline, current, threshold):
    """Prints a report for one bench; returns the list of regressed metrics."""
    regressions = []
    print(f"== {name} (threshold {threshold:.0%})")
    for metric, (base, higher_is_better) in sorted(baseline.items()):
        if metric not in current:
            print(f"   {metric}: MISSING from current run (skipped)")
            continue
        cur = current[metric][0]
        if base == 0:
            print(f"   {metric}: baseline is 0, skipped")
            continue
        change = (cur - base) / abs(base)
        regressed = (-change if higher_is_better else change) > threshold
        verdict = "REGRESSED" if regressed else "ok"
        print(
            f"   {metric}: {base:.6g} -> {cur:.6g} "
            f"({change:+.1%}) {verdict}"
        )
        if regressed:
            regressions.append(metric)
    for metric in sorted(set(current) - set(baseline)):
        print(f"   {metric}: new metric, no baseline (skipped)")
    return regressions


def file_pairs(baseline, current):
    if os.path.isdir(baseline) != os.path.isdir(current):
        sys.exit("error: BASELINE and CURRENT must both be files or both "
                 "be directories")
    if not os.path.isdir(baseline):
        yield os.path.basename(baseline), baseline, current
        return
    names = sorted(n for n in os.listdir(baseline)
                   if n.startswith("BENCH_") and n.endswith(".json"))
    if not names:
        sys.exit(f"error: no BENCH_*.json in {baseline}")
    for name in names:
        cur = os.path.join(current, name)
        if not os.path.exists(cur):
            sys.exit(f"error: {name} has a baseline but was not produced "
                     f"by the current run ({cur} missing)")
        yield name, os.path.join(baseline, name), cur


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.40,
                        help="max fractional move against the metric's "
                             "direction (default 0.40)")
    parser.add_argument("--floor", action="append", default=[],
                        metavar="FILE:METRIC:VALUE",
                        help="absolute bar on a current-run metric, e.g. "
                             "BENCH_hotpath_batching.json:"
                             "sim_scan_batched_pps:1200000 (repeatable)")
    args = parser.parse_args()

    floors = {}
    for spec in args.floor:
        try:
            fname, metric, value = spec.rsplit(":", 2)
            floors[(fname, metric)] = float(value)
        except ValueError:
            sys.exit(f"error: bad --floor {spec!r} "
                     "(want FILE:METRIC:VALUE)")

    all_regressions = []
    for name, base_path, cur_path in file_pairs(args.baseline, args.current):
        try:
            baseline = load_results(base_path)
            current = load_results(cur_path)
        except (OSError, ValueError, KeyError) as err:
            sys.exit(f"error: {name}: {err}")
        all_regressions += [f"{name}:{m}" for m in
                            compare(name, baseline, current, args.threshold)]
        for (fname, metric), value in sorted(floors.items()):
            if fname != name:
                continue
            if metric not in current:
                sys.exit(f"error: --floor {fname}:{metric}: metric not in "
                         "current run")
            cur, higher_is_better = current[metric]
            ok = cur >= value if higher_is_better else cur <= value
            bound = "floor" if higher_is_better else "ceiling"
            print(f"   {metric}: {cur:.6g} vs absolute {bound} {value:.6g} "
                  f"{'ok' if ok else 'FAILED'}")
            if not ok:
                all_regressions.append(f"{name}:{metric}<{bound}>")

    if all_regressions:
        print(f"\n{len(all_regressions)} regression(s): "
              + ", ".join(all_regressions))
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
