// Periphery census: the paper's full measurement pipeline over the
// calibrated fifteen-block universe — discovery scan, addr6-style IID
// analysis, vendor identification (EUI-64 OUI + application banners) and
// the exposed-service survey, printed as a compact report.
//
//   $ ./periphery_census [window_bits]
#include <cstdio>
#include <cstdlib>
#include <set>

#include "analysis/pipeline.h"
#include "analysis/report.h"
#include "analysis/software_db.h"
#include "topology/paper_profiles.h"

using namespace xmap;

int main(int argc, char** argv) {
  const int window_bits = argc > 1 ? std::atoi(argv[1]) : 10;

  std::printf("== IPv6 periphery census (window 2^%d slots per block) ==\n\n",
              window_bits);

  sim::Network net{2021};
  topo::BuildConfig build_cfg;
  build_cfg.window_bits = window_bits;
  build_cfg.seed = 2021;
  auto internet = topo::build_internet(net, topo::paper::isp_specs(),
                                       topo::paper::vendor_catalog(),
                                       build_cfg);
  std::printf("Built %zu ISP blocks with %zu periphery devices.\n\n",
              internet.isps.size(), internet.total_devices());

  // --- Discovery ----------------------------------------------------------
  auto discovery = ana::run_discovery_scan(net, internet, {}, {});
  std::printf("Discovery: %llu probes -> %zu unique last hops (%zu aliased "
              "responders excluded), hit rate %.1f%%.\n\n",
              static_cast<unsigned long long>(discovery.stats.sent),
              discovery.last_hops.size(), discovery.aliased.size(),
              100.0 * discovery.stats.hit_rate());

  // --- IID analysis --------------------------------------------------------
  auto hist = ana::iid_histogram(discovery.last_hops);
  std::printf("Interface identifier classes (addr6 taxonomy):\n");
  for (int i = 0; i < net::kIidStyleCount; ++i) {
    const auto style = static_cast<net::IidStyle>(i);
    std::printf("  %-13s %6llu (%.1f%%)\n", net::iid_style_name(style),
                static_cast<unsigned long long>(hist.of(style)),
                ana::percent(hist.of(style), hist.total));
  }

  // --- Vendor identification ----------------------------------------------
  ana::Counter vendors;
  for (const auto& hop : discovery.last_hops) {
    if (auto vendor = ana::vendor_from_address(hop.address, internet.oui)) {
      vendors.add(*vendor);
    }
  }
  std::printf("\nHardware vendor identification (EUI-64 -> OUI): %llu "
              "devices identified.\n",
              static_cast<unsigned long long>(vendors.total()));
  for (const auto& [vendor, count] : vendors.top(8)) {
    std::printf("  %-16s %llu\n", vendor.c_str(),
                static_cast<unsigned long long>(count));
  }

  // --- Exposed services ----------------------------------------------------
  std::vector<net::Ipv6Address> targets;
  for (const auto& hop : discovery.last_hops) targets.push_back(hop.address);
  auto grabs = ana::grab_services(net, internet, targets, {});

  ana::Counter per_service;
  ana::Counter lagging_software;
  std::set<net::Ipv6Address> any_service;
  for (const auto& grab : grabs) {
    if (!grab.alive) continue;
    per_service.add(svc::service_name(grab.kind));
    any_service.insert(grab.target);
    if (grab.software) {
      const auto family = ana::classify_software(*grab.software);
      if (family.cve_count > 0) lagging_software.add(family.family);
    }
  }
  std::printf("\nUnintended exposed services: %zu devices (%.1f%% of "
              "peripheries) expose at least one service.\n",
              any_service.size(),
              ana::percent(any_service.size(), discovery.last_hops.size()));
  for (const auto& [service, count] : per_service.top(8)) {
    std::printf("  %-10s %llu\n", service.c_str(),
                static_cast<unsigned long long>(count));
  }

  std::printf("\nCVE-exposed software families in the field:\n");
  for (const auto& [family, count] : lagging_software.top(8)) {
    const auto fam = ana::classify_software(
        svc::SoftwareInfo{family.substr(0, family.rfind('-')),
                          family.substr(family.rfind('-') + 1)});
    std::printf("  %-22s %6llu devices\n", family.c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("\nSee bench/table0*_* binaries for the paper-style tables.\n");
  return 0;
}
