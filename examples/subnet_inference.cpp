// Subnet-boundary inference walkthrough (paper Section IV-A): find one
// periphery inside an ISP block, then flip address bits from the IID
// boundary towards the block boundary; the delegated prefix length is the
// first flip whose response no longer comes from the same device.
//
//   $ ./subnet_inference
#include <cstdio>

#include "analysis/pipeline.h"
#include "topology/paper_profiles.h"

using namespace xmap;

int main() {
  std::printf("== Delegated-prefix (subnet boundary) inference ==\n\n");

  sim::Network net{404};
  topo::BuildConfig build_cfg;
  build_cfg.window_bits = 10;
  build_cfg.seed = 404;
  auto internet = topo::build_internet(net, topo::paper::isp_specs(),
                                       topo::paper::vendor_catalog(),
                                       build_cfg);

  std::printf("%-30s %-12s %-12s %-10s %s\n", "ISP block", "truth", "inferred",
              "witnesses", "probes");
  int correct = 0;
  for (std::size_t i = 0; i < internet.isps.size(); ++i) {
    const auto& isp = internet.isps[i];
    const auto result =
        ana::infer_subnet_length(net, internet, static_cast<int>(i), {});
    const std::string label =
        isp.spec.country + " " + isp.spec.name + " (" + isp.spec.network + ")";
    if (result.ok) {
      const bool match = result.inferred_len == isp.spec.delegated_len;
      correct += match ? 1 : 0;
      std::printf("%-30s /%-11d /%-11d %-10d %llu%s\n", label.c_str(),
                  isp.spec.delegated_len, result.inferred_len,
                  result.witnesses,
                  static_cast<unsigned long long>(result.probes),
                  match ? "" : "   <-- MISMATCH");
    } else {
      std::printf("%-30s /%-11d (no witness found)\n", label.c_str(),
                  isp.spec.delegated_len);
    }
  }
  std::printf("\n%d/%zu blocks inferred correctly.\n", correct,
              internet.isps.size());
  std::printf(
      "\nHow it works: a probe to 2001:db8:0:1:<random-IID> draws an\n"
      "unreachable from the delegation's gateway; re-probing with bit 60,\n"
      "59, ... flipped keeps hitting the same gateway while the flipped\n"
      "address stays inside the delegation, and stops the moment it leaves\n"
      "— the boundary bit is the delegated prefix length.\n");
  return correct == static_cast<int>(internet.isps.size()) ? 0 : 1;
}
