// Quickstart: build a tiny simulated ISP, point XMap at its block, and
// discover the periphery devices through their ICMPv6 Destination
// Unreachable responses — the paper's core technique in ~80 lines.
//
//   $ ./quickstart
#include <cstdio>

#include "topology/devices.h"
#include "xmap/results.h"
#include "xmap/scanner.h"

using namespace xmap;

int main() {
  // --- 1. A miniature ISP: one edge router, three customers. -------------
  sim::Network net{/*seed=*/1};

  topo::Router::Config isp_cfg;
  isp_cfg.address = *net::Ipv6Address::parse("2001:db9::1");
  auto* isp = net.make_node<topo::Router>(isp_cfg);
  // Unallocated block space is null-routed at the edge.
  isp->table().add(topo::Route{*net::Ipv6Prefix::parse("2001:db9::/32"),
                               topo::RouteAction::kBlackhole, -1});

  struct Customer {
    const char* lan_slot;   // delegated /60
    const char* wan_slot;   // point-to-point /64 with the ISP
  };
  const Customer customers[] = {
      {"2001:db9:0:10::/60", "2001:db9:ffff:1::/64"},
      {"2001:db9:0:20::/60", "2001:db9:ffff:2::/64"},
      {"2001:db9:0:30::/60", "2001:db9:ffff:3::/64"},
  };
  for (const Customer& customer : customers) {
    const auto slot = *net::Ipv6Prefix::parse(customer.lan_slot);
    topo::CpeRouter::Config cpe_cfg;
    cpe_cfg.lan_prefix = slot;
    cpe_cfg.subnet_prefix = slot.nth_subprefix(64, net::Uint128{5});
    cpe_cfg.wan_prefix = *net::Ipv6Prefix::parse(customer.wan_slot);
    cpe_cfg.wan_address =
        cpe_cfg.wan_prefix.address_with_suffix(net::Uint128{0xabcd});
    auto* cpe = net.make_node<topo::CpeRouter>(cpe_cfg);
    const auto link = net.connect(isp->id(), cpe->id());
    isp->table().add_forward(slot, link.iface_a);
    isp->table().add_forward(cpe_cfg.wan_prefix, link.iface_a);
  }

  // --- 2. XMap: scan the /56-60 window of the block, one probe per /60. --
  scan::ScanConfig cfg;
  cfg.targets.push_back(*scan::TargetSpec::parse("2001:db9::/56-60"));
  cfg.source = *net::Ipv6Address::parse("2001:500::1");
  cfg.seed = 42;
  cfg.probes_per_sec = 1000;

  scan::IcmpEchoProbe module{64};
  auto* scanner = net.make_node<scan::SimChannelScanner>(cfg, module);
  const auto uplink = net.connect(scanner->id(), isp->id());
  scanner->set_iface(uplink.iface_a);
  isp->table().add_forward(*net::Ipv6Prefix::parse("2001:500::/48"),
                           uplink.iface_b);

  scan::ResultCollector results;
  scanner->on_response([&results](const scan::ProbeResponse& r, sim::SimTime) {
    results.add(r);
    std::printf("  %-13s from %-28s (probe was %s)\n",
                scan::response_kind_name(r.kind),
                r.responder.to_string().c_str(),
                r.probe_dst.to_string().c_str());
  });

  std::printf("Scanning 2001:db9::/56-60 (16 probes, one per /60 "
              "delegation)...\n");
  scanner->start();
  net.run();

  // --- 3. The periphery, exposed. -----------------------------------------
  std::printf("\nDiscovered %zu unique periphery device(s) with %llu "
              "probes:\n",
              results.last_hops().size(),
              static_cast<unsigned long long>(scanner->stats().sent));
  for (const auto& hop : results.last_hops()) {
    std::printf("  %s  (%s /64 as the probe)\n",
                hop.address.to_string().c_str(),
                hop.same_prefix64() ? "same" : "different");
  }
  std::printf("\nEach device cost exactly one probe to find — versus 2^64 "
              "per /64 by brute force.\n");
  return results.last_hops().size() == 3 ? 0 : 1;
}
