// Routing-loop audit: find loop-vulnerable home routers with the h / h+2
// Time-Exceeded scan, demonstrate the amplification attack against one of
// them in an isolated lab, and verify the RFC 7084 mitigation.
//
//   $ ./routing_loop_audit [window_bits]
#include <cstdio>
#include <cstdlib>

#include "analysis/pipeline.h"
#include "analysis/report.h"
#include "loopattack/attack_lab.h"
#include "topology/paper_profiles.h"

using namespace xmap;

int main(int argc, char** argv) {
  const int window_bits = argc > 1 ? std::atoi(argv[1]) : 10;

  std::printf("== IPv6 routing-loop audit ==\n\n");

  // --- 1. Scan the simulated universe for loops. ---------------------------
  sim::Network net{31337};
  topo::BuildConfig build_cfg;
  build_cfg.window_bits = window_bits;
  build_cfg.seed = 31337;
  auto internet = topo::build_internet(net, topo::paper::isp_specs(),
                                       topo::paper::vendor_catalog(),
                                       build_cfg);

  auto loops = ana::run_loop_scan(net, internet, {}, {});
  std::printf("Loop scan: %llu probes, %llu Time-Exceeded candidates, %zu "
              "confirmed looping devices (h / h+2 rule).\n\n",
              static_cast<unsigned long long>(loops.probes_sent),
              static_cast<unsigned long long>(loops.candidates),
              loops.confirmed.size());

  ana::Counter by_isp;
  for (const auto& loop : loops.confirmed) {
    if (const auto* geo = internet.geo.lookup(loop.address)) {
      by_isp.add(geo->as_name + " (AS" + std::to_string(geo->asn) + ")");
    }
  }
  std::printf("Confirmed loops by network:\n");
  for (const auto& [name, count] : by_isp.top(10)) {
    std::printf("  %-28s %llu\n", name.c_str(),
                static_cast<unsigned long long>(count));
  }

  // --- 2. Demonstrate the attack in an isolated lab. -----------------------
  std::printf("\n== Attack demonstration (isolated lab) ==\n");
  atk::AttackLab lab{atk::AttackLabConfig{}};

  const auto burst = lab.attack(/*hop_limit=*/255, /*packets=*/10);
  std::printf("  attacker: 10 crafted packets (hop limit 255) to a "
              "not-used delegated prefix\n");
  std::printf("  victim access link carried %llu packets / %llu bytes -> "
              "amplification %.0fx\n",
              static_cast<unsigned long long>(burst.access_link_packets),
              static_cast<unsigned long long>(burst.access_link_bytes),
              burst.amplification());

  const auto spoofed = lab.attack(255, 10, false, /*spoof_inside_lan=*/true);
  std::printf("  with spoofed in-prefix sources: %llu packets -> %.0fx\n",
              static_cast<unsigned long long>(spoofed.access_link_packets),
              spoofed.amplification());

  // --- 3. Mitigation. -------------------------------------------------------
  std::printf("\n== Mitigation (RFC 7084: unreachable route for undelegated "
              "space) ==\n");
  lab.patch_cpe();
  const auto after = lab.attack(255, 10);
  std::printf("  after patching the CPE: %llu packets on the access link, "
              "%llu Destination Unreachable replies -> attack dead.\n",
              static_cast<unsigned long long>(after.access_link_packets),
              static_cast<unsigned long long>(after.unreachable_received));
  return after.access_link_packets <= 20 ? 0 : 1;
}
